//! Fleet quickstart: expand a declarative (scenario × load × seed) grid
//! into shards, run it serially and then on all cores, verify the
//! traces are identical, and stream the parallel run straight into a
//! training dataset.
//!
//! This is the dataset-diversity story of the paper operationalized:
//! one spec describes four topology families at two load levels, and
//! the fleet turns it into a pre-training corpus at the speed of the
//! machine, not the speed of one core.
//!
//! Run: `cargo run --release --example fleet_sweep`

use ntt::fleet::{run_fleet_dataset, run_fleet_traces, FleetConfig, SweepSpec};
use ntt::sim::scenarios::{Scenario, ScenarioConfig};
use ntt::sim::SimTime;
use std::time::Instant;

fn main() {
    // 1. Declare the grid: 4 topology families x 2 load levels x 1 seed
    //    = 8 shards. Every shard gets a deterministically derived seed.
    let mut base = ScenarioConfig::tiny(42);
    base.duration = SimTime::from_secs(20);
    base.drain = SimTime::from_millis(500);
    let spec = SweepSpec::new(base)
        .scenarios(vec![
            Scenario::Pretrain,
            Scenario::Case1,
            Scenario::ParkingLot { hops: 5 },
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2,
            },
        ])
        .load_factors(vec![0.7, 1.0])
        .runs_per_cell(1);
    println!("grid: {} shards", spec.len());
    for shard in spec.expand() {
        println!(
            "  #{:<2} {:<14} load {:.1}  seed {:#018x}",
            shard.index,
            shard.scenario.label(),
            shard.load_factor,
            shard.cfg.seed
        );
    }

    // 2. Serial reference: the same shards, one at a time (what the
    //    deprecated `run_many` did, generalized to a grid).
    let t0 = Instant::now();
    let (serial_traces, serial_report) = run_fleet_traces(&spec, &FleetConfig::with_threads(1));
    let serial_wall = t0.elapsed();
    println!("\nserial   : {}", serial_report.summary());

    // 3. The fleet: same spec, every core.
    let t0 = Instant::now();
    let (fleet_traces, fleet_report) = run_fleet_traces(&spec, &FleetConfig::default());
    let fleet_wall = t0.elapsed();
    println!("parallel : {}", fleet_report.summary());
    println!(
        "speedup  : {:.2}x on {} threads",
        serial_wall.as_secs_f64() / fleet_wall.as_secs_f64().max(1e-9),
        fleet_report.threads
    );
    if fleet_report.threads == 1 {
        println!("           (single-core host: the fleet degrades to serial; speedup scales with cores)");
    }

    // 4. Thread count must be invisible in the data.
    assert_eq!(serial_traces.len(), fleet_traces.len());
    for (a, b) in serial_traces.iter().zip(fleet_traces.iter()) {
        assert_eq!(a.packets, b.packets, "parallelism must not change traces");
    }
    println!("determinism: serial and parallel traces are byte-identical");

    // 5. Streaming ingestion: shards fold into a compact dataset as
    //    they finish; raw traces never accumulate.
    let (data, report) = run_fleet_dataset(&spec, &FleetConfig::default());
    println!(
        "\nstreamed dataset: {} runs, {} packets, {} message anchors ({:.0}k events/s)",
        data.runs.len(),
        data.n_packets(),
        data.n_messages(),
        report.events_per_sec() / 1e3
    );
    let slowest = report
        .shards
        .iter()
        .max_by_key(|s| s.wall)
        .expect("non-empty fleet");
    println!(
        "slowest shard: #{} {} ({:.2}s, {} events)",
        slowest.index,
        slowest.scenario.label(),
        slowest.wall.as_secs_f64(),
        slowest.events
    );

    // 6. The sweep→training bridge: hand the streamed dataset straight
    //    to the Experiment pipeline (a short pre-training, to show the
    //    whole path: grid spec -> fleet -> windows -> trained model).
    use ntt::core::{Experiment, NttConfig, TrainConfig};
    let exp = Experiment::new(NttConfig {
        aggregation: ntt::core::Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        ..NttConfig::default()
    })
    .stride(16)
    .with_train(TrainConfig {
        epochs: 1,
        batch_size: 32,
        max_steps_per_epoch: Some(10),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain_on(data, spec.describe(), Some(report));
    println!(
        "\npretrained on the sweep: {} windows from 4 topology families, held-out MSE {:.4}",
        pre.meta("train_windows").unwrap(),
        pre.eval.unwrap().mse_norm
    );
}
