//! A task this repository has never heard of, defined entirely in this
//! example: predict the **95th-percentile delay of the window** from
//! the packet sequence. The head implements `ntt::nn::Head`, the
//! dataset implements `ntt::data::TaskDataset`, and the generic
//! pipeline trains and evaluates the pair — zero changes to any core
//! crate, ~40 lines of task-specific code.
//!
//! (The built-in drop-count task, `finetune_drop`, was added the same
//! way; this example proves the extension point works from outside.)
//!
//! Run: `cargo run --release --example custom_task`

use ntt::core::{Aggregation, Experiment, FinetuneOpts, NttConfig, TrainConfig, TrainMode};
use ntt::data::{DelayDataset, TaskDataset};
use ntt::fleet::SweepSpec;
use ntt::nn::{Activation, Head, Mlp, Module};
use ntt::sim::scenarios::{Scenario, ScenarioConfig};
use ntt::tensor::{Param, Tape, Tensor, Var};

// ---- The custom task: ~40 lines, no core crate touched. ------------

/// MLP over the mean-pooled encoded window -> one p95-delay value.
struct P95Head(Mlp);

impl P95Head {
    fn new(d_model: usize, seed: u64) -> Self {
        P95Head(Mlp::new(
            "p95_head",
            &[d_model, d_model, 1],
            Activation::Gelu,
            seed,
        ))
    }
}

impl Module for P95Head {
    fn params(&self) -> Vec<Param> {
        self.0.params()
    }
}

impl Head for P95Head {
    fn kind(&self) -> &'static str {
        "p95-delay"
    }
    fn d_model(&self) -> usize {
        self.0.in_features()
    }
    fn forward_head<'t>(&self, tape: &'t Tape, encoded: Var<'t>, _aux: Option<Var<'t>>) -> Var<'t> {
        self.0.forward(tape, encoded.mean_axis1())
    }
}

/// Delay windows with the target swapped for the window's p95 delay
/// (normalized with the delay channel's shared statistics).
struct P95Windows(DelayDataset);

impl P95Windows {
    fn p95(&self, i: usize) -> f32 {
        let mut delays: Vec<f32> = self.0.window_packets(i).iter().map(|p| p.delay).collect();
        delays.sort_by(f32::total_cmp);
        delays[(delays.len() - 1) * 95 / 100]
    }
}

impl TaskDataset for P95Windows {
    fn label(&self) -> &'static str {
        "p95-delay"
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn target_std(&self) -> f32 {
        self.0.delay_std()
    }
    fn batch_xy(&self, idx: &[usize]) -> (Tensor, Option<Tensor>, Tensor) {
        let (x, _) = self.0.batch(idx);
        let y: Vec<f32> = idx
            .iter()
            .map(|&i| {
                let raw = self.p95(i);
                (raw - self.0.norm.mean_of(ntt::data::CH_DELAY)) / self.0.delay_std()
            })
            .collect();
        (x, None, Tensor::from_vec(y, &[idx.len(), 1]))
    }
}

// ---- Everything below is the stock pipeline. ------------------------

fn main() {
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    });

    // Pre-train on the delay task as usual.
    let pre = exp.pretrain(&SweepSpec::single(
        Scenario::Pretrain,
        ScenarioConfig::tiny(61),
        1,
    ));
    println!(
        "pre-trained: {} windows, held-out delay MSE {:.4}",
        pre.meta("train_windows").unwrap(),
        pre.eval.unwrap().mse_norm
    );

    // Build the custom datasets over new traffic, with the *shared*
    // normalizer, and fine-tune the custom head decoder-only.
    let (data, _) = exp.sweep(&SweepSpec::single(
        Scenario::Case1,
        ScenarioConfig::tiny(62),
        1,
    ));
    let (train_delay_ds, test_delay_ds) = exp.delay_datasets(data, Some(pre.norm.clone()));
    let (train_ds, test_ds) = (P95Windows(train_delay_ds), P95Windows(test_delay_ds));

    let head = P95Head::new(16, 1);
    let (_model, report, eval) =
        pre.finetune_custom(&head, &train_ds, &test_ds, TrainMode::DecoderOnly);
    println!(
        "custom p95-delay task: {} steps, {:.1?}; test MSE {:.4} (normalized) = {:.3e} s^2",
        report.steps, report.wall, eval.mse_norm, eval.mse_raw
    );

    // The built-in third task rides the same machinery.
    let drop = pre.finetune_drop(
        &SweepSpec::single(Scenario::Case1, ScenarioConfig::tiny(63), 1),
        &FinetuneOpts::decoder_only(),
    );
    println!(
        "built-in drop-count task: test MSE {:.4} vs predict-the-mean {:.4} (raw counts^2)",
        drop.eval.mse_raw, drop.baselines[0].1
    );
    println!(
        "\na new task = one Head impl + one TaskDataset impl; the trainer, checkpoints, \
         and pipeline never changed"
    );
}
