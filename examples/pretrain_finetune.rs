//! The paper's core workflow (Fig. 1 bottom), through the `Experiment`
//! pipeline: pre-train a Network Traffic Transformer once, share it as
//! a **self-describing checkpoint**, then adapt it to a *new
//! environment* (unseen cross-traffic) with a small dataset by
//! fine-tuning only the decoder — and compare against training from
//! scratch on the same small dataset.
//!
//! The receiving site needs only the checkpoint file: `NTTCKPT2` embeds
//! the model config, the head descriptors, and the feature normalizer,
//! so `Pretrained::load` rebuilds everything with zero caller-side
//! setup.
//!
//! Run: `cargo run --release --example pretrain_finetune`

use ntt::core::{Aggregation, Experiment, FinetuneOpts, NttConfig, Pretrained, TrainConfig};
use ntt::fleet::SweepSpec;
use ntt::sim::scenarios::{Scenario, ScenarioConfig};

fn main() {
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-pkt windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(30),
        ..TrainConfig::default()
    });

    // ---- Phase 1: pre-train on the plain bottleneck environment ----
    let pre = exp.pretrain(&SweepSpec::single(
        Scenario::Pretrain,
        ScenarioConfig::tiny(1),
        2,
    ));
    let report = pre.report.as_ref().expect("pretrain reports");
    println!(
        "pre-training: {} windows, {} steps, {:.1?}; test MSE {:.4}",
        pre.meta("train_windows").unwrap_or("?"),
        report.steps,
        report.wall,
        pre.eval.expect("pretrain evaluates").mse_norm
    );

    // ---- Share the model (Fig. 1's 'download a pre-trained model'):
    //      one file carries weights, config, heads, normalizer ----
    let ckpt = std::env::temp_dir().join("ntt_example_pretrained.ckpt");
    pre.save(&ckpt).expect("save checkpoint");
    println!("checkpoint written to {}", ckpt.display());

    // ---- Phase 2: a new environment (cross-traffic) with little data.
    //      `load` needs nothing but the file. ----
    let shared = Pretrained::load(&ckpt).expect("load checkpoint");
    println!(
        "loaded: d_model {}, heads {:?}, pre-trained on {:?}",
        shared.model.cfg.d_model,
        shared.heads.iter().map(|h| h.kind()).collect::<Vec<_>>(),
        shared.meta("scenario_grid").unwrap_or("?"),
    );
    let ft_spec = SweepSpec::single(Scenario::Case1, ScenarioConfig::tiny(2), 2);
    let ft = shared.finetune(&ft_spec, &FinetuneOpts::decoder_only().fraction(0.10));
    println!(
        "fine-tuning dataset: {} windows (10% subsample)",
        ft.train_windows
    );

    // From scratch on the same 10% (its own seeds, its own scaler).
    let mut scratch_exp = exp;
    scratch_exp.model.seed ^= 7;
    let s = scratch_exp.scratch(&ft_spec, &FinetuneOpts::full().fraction(0.10));

    println!("\n=== unseen cross-traffic environment, delay MSE (normalized) ===");
    println!(
        "zero-shot pre-trained        : {:.4}",
        ft.zero_shot.expect("finetune measures zero-shot").mse_norm
    );
    println!(
        "fine-tuned decoder-only (10%) : {:.4}  [{} trainable params, {:.1?}]",
        ft.eval.mse_norm, ft.report.trainable_params, ft.report.wall
    );
    println!(
        "from scratch (10%)            : {:.4}  [{} trainable params, {:.1?}]",
        s.eval.mse_norm, s.report.trainable_params, s.report.wall
    );
    println!(
        "\npre-training {} fine-tuning here (paper's Table 1/2 finding at miniature scale)",
        if ft.eval.mse_norm <= s.eval.mse_norm {
            "beats"
        } else {
            "does not beat (tiny-scale noise!)"
        }
    );
    std::fs::remove_file(ckpt).ok();
}
