//! The paper's core workflow (Fig. 1 bottom): pre-train a Network
//! Traffic Transformer once, share it as a checkpoint, then adapt it to
//! a *new environment* (unseen cross-traffic) with a small dataset by
//! fine-tuning only the decoder — and compare against training from
//! scratch on the same small dataset.
//!
//! Run: `cargo run --release --example pretrain_finetune`

use ntt::core::{
    checkpoint, eval_delay, train_delay, Aggregation, DelayHead, Ntt, NttConfig, TrainConfig,
    TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::fleet::run_many_parallel;
use ntt::sim::scenarios::{Scenario, ScenarioConfig};

fn main() {
    let model_cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-pkt windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    };
    let ds_cfg = DatasetConfig {
        seq_len: model_cfg.seq_len(),
        stride: 8,
        test_fraction: 0.2,
    };
    let train_cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(30),
        ..TrainConfig::default()
    };

    // ---- Phase 1: pre-train on the plain bottleneck environment ----
    let pre_traces = run_many_parallel(Scenario::Pretrain, &ScenarioConfig::tiny(1), 2, 0);
    let (pre_train, pre_test) =
        DelayDataset::build(TraceData::from_traces(&pre_traces), ds_cfg, None);
    let model = Ntt::new(model_cfg);
    let head = DelayHead::new(model_cfg.d_model, 1);
    let rep = train_delay(&model, &head, &pre_train, &train_cfg, TrainMode::Full);
    let pre_ev = eval_delay(&model, &head, &pre_test, 64);
    println!(
        "pre-training: {} windows, {} steps, {:.1?}; test MSE {:.4}",
        pre_train.len(),
        rep.steps,
        rep.wall,
        pre_ev.mse_norm
    );

    // ---- Share the model: save + reload (Fig. 1's 'download a
    //      pre-trained model' step) ----
    let ckpt = std::env::temp_dir().join("ntt_example_pretrained.ckpt");
    checkpoint::save(&ckpt, &[&model, &head]).expect("save checkpoint");
    println!("checkpoint written to {}", ckpt.display());

    // ---- Phase 2: a new environment (cross-traffic) with little data ----
    let ft_traces = run_many_parallel(Scenario::Case1, &ScenarioConfig::tiny(2), 2, 0);
    let (ft_train_all, ft_test) = DelayDataset::build(
        TraceData::from_traces(&ft_traces),
        ds_cfg,
        Some(pre_train.norm.clone()),
    );
    let ft_small = ft_train_all.subsample(0.10, 0);
    println!(
        "fine-tuning dataset: {} windows ({} before subsampling to 10%)",
        ft_small.len(),
        ft_train_all.len()
    );

    // Zero-shot: the pre-trained model, untouched, on the new traffic.
    let zero_shot = eval_delay(&model, &head, &ft_test, 64);

    // Fine-tune the decoder only.
    let downloaded = Ntt::new(model_cfg);
    let downloaded_head = DelayHead::new(model_cfg.d_model, 99);
    checkpoint::load(&ckpt, &[&downloaded, &downloaded_head]).expect("load checkpoint");
    let ft_rep = train_delay(
        &downloaded,
        &downloaded_head,
        &ft_small,
        &train_cfg,
        TrainMode::DecoderOnly,
    );
    let ft_ev = eval_delay(&downloaded, &downloaded_head, &ft_test, 64);

    // From scratch on the same 10%.
    let scratch = Ntt::new(NttConfig {
        seed: 7,
        ..model_cfg
    });
    let scratch_head = DelayHead::new(model_cfg.d_model, 7);
    let (s_train_all, s_test) =
        DelayDataset::build(TraceData::from_traces(&ft_traces), ds_cfg, None);
    let s_small = s_train_all.subsample(0.10, 0);
    let s_rep = train_delay(
        &scratch,
        &scratch_head,
        &s_small,
        &train_cfg,
        TrainMode::Full,
    );
    let s_ev = eval_delay(&scratch, &scratch_head, &s_test, 64);

    println!("\n=== unseen cross-traffic environment, delay MSE (normalized) ===");
    println!("zero-shot pre-trained        : {:.4}", zero_shot.mse_norm);
    println!(
        "fine-tuned decoder-only (10%) : {:.4}  [{} trainable params, {:.1?}]",
        ft_ev.mse_norm, ft_rep.trainable_params, ft_rep.wall
    );
    println!(
        "from scratch (10%)            : {:.4}  [{} trainable params, {:.1?}]",
        s_ev.mse_norm, s_rep.trainable_params, s_rep.wall
    );
    println!(
        "\npre-training {} fine-tuning here (paper's Table 1/2 finding at miniature scale)",
        if ft_ev.mse_norm <= s_ev.mse_norm {
            "beats"
        } else {
            "does not beat (tiny-scale noise!)"
        }
    );
    std::fs::remove_file(ckpt).ok();
}
