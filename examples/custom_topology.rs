//! Using the simulator substrate directly: build a custom three-switch
//! topology, attach message senders and a lossy wireless-like edge link
//! (fault injection), run it, and inspect per-link and per-flow
//! statistics.
//!
//! This is the "collect a task-specific dataset" half of Fig. 1 — the
//! simulator is a reusable library, not just a fixture for the paper's
//! three scenarios.
//!
//! Run: `cargo run --release --example custom_topology`

use ntt::sim::{
    workload::MsgSizeDist, App, LinkConfig, SimTime, Simulator, TcpConfig, TcpFlow, TopologyBuilder,
};

fn main() {
    // Topology: two sender sites feed a core ring of three switches;
    // one receiver sits behind a lossy "wireless" last hop.
    let mut topo = TopologyBuilder::new();
    let sw = [
        topo.add_switch("core0"),
        topo.add_switch("core1"),
        topo.add_switch("core2"),
    ];
    let trunk = LinkConfig {
        rate_bps: 20_000_000,
        prop_delay: SimTime::from_millis(5),
        queue_capacity: 200,
        loss_prob: 0.0,
    };
    topo.connect(sw[0], sw[1], trunk);
    topo.connect(sw[1], sw[2], trunk);
    topo.connect(sw[0], sw[2], trunk); // ring: BFS picks shortest paths

    let access = LinkConfig::lan();
    let senders: Vec<_> = (0..4)
        .map(|i| {
            let h = topo.add_host(format!("sender{i}"));
            topo.connect(h, sw[i % 2], access);
            h
        })
        .collect();

    // The lossy last hop: 2% random loss, small buffer.
    let receiver = topo.add_host("mobile_receiver");
    let wireless = LinkConfig {
        rate_bps: 12_000_000,
        prop_delay: SimTime::from_millis(2),
        queue_capacity: 50,
        loss_prob: 0.02,
    };
    topo.connect(sw[2], receiver, wireless);

    let (nodes, links) = topo.build();

    // One TCP flow and one message app per sender.
    let mut flows = Vec::new();
    let mut apps = Vec::new();
    for (i, &h) in senders.iter().enumerate() {
        flows.push(TcpFlow::new(i, h, receiver, TcpConfig::default()));
        apps.push(App::message_source(
            i,
            MsgSizeDist::LogUniform {
                min: 2_000,
                max: 500_000,
            },
            2_000_000.0, // 2 Mbps offered each
            SimTime::from_secs(5),
        ));
    }

    let mut sim = Simulator::new(nodes, links, flows, apps, 42);
    for f in 0..senders.len() {
        sim.trace.record_flow(f);
    }
    sim.start_all_apps_jittered(SimTime::from_millis(300));
    sim.run_until(SimTime::from_secs(7));

    println!(
        "=== run summary ({} events) ===",
        sim.stats.events_processed
    );
    println!(
        "delivered {} packets, completed {} messages, mean delay {:.1} ms, p99 {:.1} ms",
        sim.trace.packets.len(),
        sim.trace.messages.len(),
        sim.trace.mean_delay_secs() * 1e3,
        sim.trace.delay_percentile_secs(99.0) * 1e3,
    );

    println!("\nper-link: transmitted / dropped(queue) / dropped(loss) / peak queue");
    for (i, l) in sim.links.iter().enumerate() {
        if l.stats.transmitted > 0 {
            println!(
                "  link{i:2} {:>2} -> {:<2} {:>8} / {:>4} / {:>4} / {:>4}",
                l.from,
                l.to,
                l.stats.transmitted,
                l.stats.dropped_overflow,
                l.stats.dropped_fault,
                l.stats.max_queue_len,
            );
        }
    }

    println!("\nper-flow: sent / retransmits / fast-rtx / timeouts / msgs done");
    for f in &sim.flows {
        println!(
            "  flow{} {:>7} / {:>4} / {:>3} / {:>3} / {:>4}",
            f.id,
            f.stats.packets_sent,
            f.stats.retransmits,
            f.stats.fast_retransmits,
            f.stats.timeouts,
            f.stats.msgs_completed,
        );
    }

    // The wireless hop forces retransmissions; TCP still delivers.
    let rtx: u64 = sim.flows.iter().map(|f| f.stats.retransmits).sum();
    println!(
        "\nthe 2% lossy hop caused {rtx} retransmissions — delays and losses like these are exactly \
         the dynamics the NTT learns from traces (each delivered retransmission is flagged in the \
         trace, which is what the drop-count task — `finetune_drop` — regresses per window)"
    );
}
