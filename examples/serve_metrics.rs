//! Watching a serving process through `ntt::obs`: pre-train a tiny
//! model, stream a fresh simulated scenario through an
//! `InferenceSession`, and print a live metrics line every N windows —
//! then dump the full registry as JSON and Prometheus text, the way a
//! `/metrics` endpoint or a textfile collector would expose it.
//!
//! Everything printed here comes from the process-global registry:
//! the engine's `serve.predict_ns` span, the session's packet and
//! prediction counters and window-lag gauge, and the trainer's own
//! `train.step_ns` spans left over from the pre-training phase.
//!
//! Run: `cargo run --release --example serve_metrics`
//! Kill switch: `NTT_OBS=off cargo run ...` (every line reads 0).

use ntt::core::{Aggregation, Experiment, NttConfig, TrainConfig};
use ntt::data::RunData;
use ntt::fleet::SweepSpec;
use ntt::serve::{InferenceEngine, InferenceSession, SessionConfig};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use std::sync::Arc;

fn main() {
    // ---- Pre-train a small model (instrumented: train.* metrics) ----
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 },
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(4)
    .with_train(TrainConfig {
        epochs: 2,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(30),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain(&SweepSpec::single(
        Scenario::Pretrain,
        ScenarioConfig::tiny(1),
        2,
    ));
    {
        let snap = ntt::obs::snapshot();
        let steps = snap.counter("train.steps").unwrap_or(0);
        let step_ns = snap.histogram("train.step_ns");
        println!(
            "pre-training: {steps} steps, step p50 {:.1} ms, grad norm {:.3}",
            step_ns.map_or(f64::NAN, |h| h.p50() / 1e6),
            snap.gauge("train.grad_norm").unwrap_or(f64::NAN),
        );
    }

    // ---- Serve a fresh scenario, printing metrics as it streams ----
    let engine = Arc::new(InferenceEngine::from_pretrained(pre));
    let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(42));
    let stream = RunData::from_trace(&trace);
    let mut session = InferenceSession::new(Arc::clone(&engine), SessionConfig { stride: 8 });

    const REPORT_EVERY: u64 = 25;
    const MAX_WINDOWS: u64 = 100;
    println!("\nstreaming {} packets:", stream.pkts.len());
    for &pkt in &stream.pkts {
        let before = session.predictions_made();
        session.push(pkt);
        let served = session.predictions_made();
        if served > before && served.is_multiple_of(REPORT_EVERY) {
            // One compact line per N windows, straight off the registry.
            let snap = ntt::obs::snapshot();
            let predict = snap.histogram("serve.predict_ns");
            println!(
                "  {served:>4} windows | packets {:>6} | predict p50 {:>7.2} ms p99 {:>7.2} ms | lag {}",
                snap.counter("serve.session.packets").unwrap_or(0),
                predict.map_or(f64::NAN, |h| h.p50() / 1e6),
                predict.map_or(f64::NAN, |h| h.p99() / 1e6),
                snap.gauge("serve.session.window_lag").unwrap_or(f64::NAN),
            );
        }
        if served >= MAX_WINDOWS {
            break;
        }
    }
    println!(
        "served {} windows over {} packets",
        engine.windows_served(),
        session.packets_seen()
    );

    // ---- Full exposition, both formats ----
    let snap = ntt::obs::snapshot();
    println!("\n=== JSON snapshot ===\n{}", snap.to_json());
    println!("=== Prometheus exposition ===\n{}", snap.to_prometheus());
}
