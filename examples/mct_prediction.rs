//! Task transfer (§4, second task): reuse a delay-pre-trained NTT trunk
//! to predict **message completion times** — a flow-level quantity the
//! model never saw during pre-training — and compare against the
//! paper's naive baselines (last-observed and EWMA).
//!
//! Run: `cargo run --release --example mct_prediction`

use ntt::core::baselines::{mct_ewma_mse, mct_last_observed_mse, EWMA_ALPHA};
use ntt::core::{
    eval_mct, train_delay, train_mct, Aggregation, DelayHead, MctHead, Ntt, NttConfig, TrainConfig,
    TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, MctDataset, TraceData};
use ntt::fleet::run_many_parallel;
use ntt::sim::scenarios::{Scenario, ScenarioConfig};
use std::sync::Arc;

fn main() {
    let model_cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 },
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    };
    let ds_cfg = DatasetConfig {
        seq_len: model_cfg.seq_len(),
        stride: 8,
        test_fraction: 0.2,
    };
    let train_cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(30),
        ..TrainConfig::default()
    };

    // Pre-train the trunk on delay prediction.
    let traces = run_many_parallel(Scenario::Case1, &ScenarioConfig::tiny(5), 2, 0);
    let data = TraceData::from_traces(&traces);
    let (d_train, _) = DelayDataset::build(Arc::clone(&data), ds_cfg, None);
    let model = Ntt::new(model_cfg);
    let delay_head = DelayHead::new(model_cfg.d_model, 0);
    train_delay(&model, &delay_head, &d_train, &train_cfg, TrainMode::Full);
    println!(
        "trunk pre-trained on masked delay prediction ({} windows)",
        d_train.len()
    );

    // Swap the decoder: an MCT head taking (encoded sequence, message size).
    let (m_train, m_test) = MctDataset::build(data, ds_cfg, d_train.norm.clone());
    println!(
        "MCT dataset: {} train / {} test anchored messages",
        m_train.len(),
        m_test.len()
    );
    let mct_head = MctHead::new(model_cfg.d_model, 3);
    train_mct(
        &model,
        &mct_head,
        &m_train,
        &train_cfg,
        TrainMode::DecoderOnly,
    );
    let ev = eval_mct(&model, &mct_head, &m_test, 64);

    let lo = mct_last_observed_mse(&m_test);
    let ew = mct_ewma_mse(&m_test, EWMA_ALPHA);
    println!("\n=== MCT prediction, MSE on ln(seconds) scale ===");
    println!(
        "NTT (delay-pre-trained trunk + new head): {:.4}",
        ev.mse_raw
    );
    println!("last-observed baseline                  : {lo:.4}");
    println!("EWMA baseline (a={EWMA_ALPHA})             : {ew:.4}");
    println!(
        "\nflow-level structure {} packet-level history (paper: NTT 65 vs baselines 2189/1147, x1e-3)",
        if ev.mse_raw < lo && ev.mse_raw < ew { "captured from" } else { "not yet captured from (tiny scale)" }
    );
}
