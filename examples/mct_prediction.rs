//! Task transfer (§4, second task): reuse a delay-pre-trained NTT trunk
//! to predict **message completion times** — a flow-level quantity the
//! model never saw during pre-training — and compare against the
//! paper's naive baselines (last-observed and EWMA), which the pipeline
//! computes alongside every fine-tuning.
//!
//! Run: `cargo run --release --example mct_prediction`

use ntt::core::{Aggregation, Experiment, FinetuneOpts, NttConfig, TrainConfig};
use ntt::fleet::SweepSpec;
use ntt::sim::scenarios::{Scenario, ScenarioConfig};

fn main() {
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 },
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(30),
        ..TrainConfig::default()
    });

    // Pre-train the trunk on delay prediction, keep the simulated data
    // around: the MCT fine-tuning anchors messages in the same traces.
    let (data, fleet) = exp.sweep(&SweepSpec::single(
        Scenario::Case1,
        ScenarioConfig::tiny(5),
        2,
    ));
    println!("[fleet] {}", fleet.summary());
    let pre = exp.pretrain_on(data.clone(), "case1 x2".into(), None);
    println!(
        "trunk pre-trained on masked delay prediction ({} windows)",
        pre.meta("train_windows").unwrap()
    );

    // Swap the decoder: an MCT head taking (encoded sequence, message
    // size). `finetune_mct` builds the anchored dataset with the shared
    // normalizer, trains decoder-only, and evaluates vs baselines.
    let ft = pre.finetune_mct_on(data, &FinetuneOpts::decoder_only());
    println!(
        "MCT dataset: {} train anchored messages; {} eval anchors",
        ft.train_windows, ft.eval.n
    );

    println!("\n=== MCT prediction, MSE on ln(seconds) scale ===");
    println!(
        "NTT (delay-pre-trained trunk + new head): {:.4}",
        ft.eval.mse_raw
    );
    let mut beats_all = true;
    for (name, mse) in &ft.baselines {
        println!("{name:<40}: {mse:.4}");
        beats_all &= ft.eval.mse_raw < *mse;
    }
    println!(
        "\nflow-level structure {} packet-level history (paper: NTT 65 vs baselines 2189/1147, x1e-3)",
        if beats_all {
            "captured from"
        } else {
            "not yet captured from (tiny scale)"
        }
    );
}
