//! Live serving, end to end: pre-train a small NTT, ship it as a
//! checkpoint, load it into the serving registry, and stream a *fresh*
//! simulated scenario through the grad-free engine — packets in,
//! per-window delay predictions out, compared against ground truth and
//! the last-observed naive baseline as they stream past.
//!
//! This is the paper's Fig. 1 lower path at serving time: the receiving
//! site needs the checkpoint file alone. The serving stack never builds
//! a dataset — the session featurizes the live packet stream through
//! the same code path training used, with the predicted packet's delay
//! masked exactly as in pre-training.
//!
//! Run: `cargo run --release --example live_inference`

use ntt::core::{Aggregation, Experiment, NttConfig, TrainConfig};
use ntt::fleet::SweepSpec;
use ntt::serve::{live, LiveOptions, ModelRegistry};
use ntt::sim::scenarios::{Scenario, ScenarioConfig};
use std::sync::Arc;

fn main() {
    // ---- Train a small model and ship it as a checkpoint ----
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-pkt windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(4)
    .with_train(TrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(60),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain(&SweepSpec::single(
        Scenario::Pretrain,
        ScenarioConfig::tiny(1),
        3,
    ));
    println!(
        "pre-trained: {} steps, held-out MSE {:.4} (normalized)",
        pre.report.as_ref().unwrap().steps,
        pre.eval.unwrap().mse_norm
    );
    let ckpt = std::env::temp_dir().join("ntt_live_inference.ckpt");
    pre.save(&ckpt).expect("save checkpoint");

    // ---- The serving site: checkpoint file -> registry -> engine ----
    let registry = ModelRegistry::new();
    let engine = registry
        .load("pretrain", &ckpt)
        .expect("load checkpoint into the registry");
    println!(
        "serving engine: {}-packet windows, heads {:?}, d_model {}",
        engine.seq_len(),
        engine.head_kinds(),
        engine.cfg().d_model
    );

    // ---- Stream a fresh scenario through the engine, live ----
    // An unseen seed: this traffic never existed at training time.
    let report = live::stream_scenario(
        Arc::clone(&engine),
        Scenario::Pretrain,
        &ScenarioConfig::tiny(42),
        &LiveOptions {
            stride: 16,
            max_predictions: Some(200),
        },
    );

    println!("\n  time (s)   predicted (ms)   actual (ms)");
    for p in report.predictions.iter().take(10) {
        println!(
            "  {:>8.3}   {:>14.3}   {:>11.3}",
            p.t_secs,
            p.predicted_secs * 1e3,
            p.actual_secs * 1e3
        );
    }
    if report.predictions.len() > 10 {
        println!("  ... ({} more)", report.predictions.len() - 10);
    }
    println!("\nlive: {}", report.summary());
    // At this example's seconds-scale training budget the last-observed
    // baseline usually still wins (it is very strong on smooth queueing
    // delay); the table1 binary runs the full comparison at real scale.
    let vs = report.baseline_mse_secs2 / report.mse_secs2.max(1e-30);
    println!(
        "model vs last-observed baseline: {:.2}x {} MSE",
        if vs >= 1.0 { vs } else { 1.0 / vs },
        if vs >= 1.0 { "lower" } else { "higher" }
    );
    println!("engine served {} windows total", engine.windows_served());

    // ---- Final metrics snapshot: what this process did, from the ----
    // ---- global registry (see `ntt::obs` / examples/serve_metrics) ----
    let snap = ntt::obs::snapshot();
    let ms = |h: Option<&ntt::obs::HistogramSnapshot>, q: f64| {
        h.map_or(f64::NAN, |h| h.quantile(q) / 1e6)
    };
    let predict = snap.histogram("serve.predict_ns");
    let step = snap.histogram("train.step_ns");
    println!("\n=== final metrics snapshot ===");
    println!(
        "train:  {} steps, step p50 {:.1} ms p99 {:.1} ms, last grad norm {:.3}",
        snap.counter("train.steps").unwrap_or(0),
        ms(step, 0.5),
        ms(step, 0.99),
        snap.gauge("train.grad_norm").unwrap_or(f64::NAN),
    );
    println!(
        "serve:  {} windows, predict p50 {:.2} ms p99 {:.2} ms, {} session packets",
        snap.counter("serve.windows_served").unwrap_or(0),
        ms(predict, 0.5),
        ms(predict, 0.99),
        snap.counter("serve.session.packets").unwrap_or(0),
    );
    println!(
        "fleet:  {} shards, shard p50 {:.1} ms; tensor: {} gemm calls",
        snap.counter("fleet.shards_run").unwrap_or(0),
        ms(snap.histogram("fleet.shard_ns"), 0.5),
        snap.counter("tensor.gemm_calls").unwrap_or(0),
    );
    std::fs::remove_file(ckpt).ok();
}
