//! Network serving, end to end: pre-train a small NTT, ship it as a
//! checkpoint, load it into a registry, put a `NetServer` in front on
//! an ephemeral TCP port — then stream a *fresh* simulated scenario
//! through a `NetClient`, windows out over the wire as `NTTWIRE1`
//! frames and per-packet delay predictions back.
//!
//! This is the paper's deployment story with the transport made real:
//! the serving site holds the checkpoint; any operator process that
//! can open a TCP connection gets predictions, with typed protocol
//! errors (and the registry's multi-model routing) instead of linking
//! the model in-process. The windows cross the wire through the exact
//! featurization path training used, and the predictions that come
//! back are byte-identical to calling the engine directly.
//!
//! Run: `cargo run --release --example serve_tcp`

use ntt::core::{Aggregation, Experiment, NttConfig, TrainConfig};
use ntt::data::{featurize_window, RunData, NUM_FEATURES};
use ntt::fleet::SweepSpec;
use ntt::net::{NetClient, NetConfig, NetServer};
use ntt::serve::ModelRegistry;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // ---- Train a small model and ship it as a checkpoint ----
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-pkt windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(4)
    .with_train(TrainConfig {
        epochs: 2,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(40),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain(&SweepSpec::single(
        Scenario::Pretrain,
        ScenarioConfig::tiny(1),
        2,
    ));
    println!(
        "pre-trained: {} steps, held-out MSE {:.4} (normalized)",
        pre.report.as_ref().unwrap().steps,
        pre.eval.unwrap().mse_norm
    );
    let ckpt = std::env::temp_dir().join("ntt_serve_tcp.ckpt");
    pre.save(&ckpt).expect("save checkpoint");

    // ---- The serving site: checkpoint -> registry -> TCP server ----
    let registry = Arc::new(ModelRegistry::new());
    let engine = registry
        .load("pretrain", &ckpt)
        .expect("load checkpoint into the registry");
    let server = NetServer::bind_tcp(
        "127.0.0.1:0", // ephemeral port: the OS picks, we print it
        Arc::clone(&registry),
        NetConfig::default(),
    )
    .expect("bind TCP server");
    let addr = server.tcp_addr().expect("bound address");
    println!(
        "serving {:?} on tcp://{addr} ({}-packet windows, heads {:?})",
        registry.names(),
        engine.seq_len(),
        engine.head_kinds()
    );

    // ---- The operator site: stream a fresh scenario over the wire ----
    // An unseen seed: this traffic never existed at training time. The
    // client featurizes sliding windows through the same path training
    // used (most recent delay masked — that is the value predicted).
    let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(42));
    let pkts = RunData::from_trace(&trace).pkts;
    let seq = engine.seq_len();
    let stride = 16usize;
    let mut client = NetClient::connect_tcp(addr).expect("connect");
    println!("\n  time (s)   predicted (ms)   actual (ms)");
    let (mut shown, mut sent, mut se) = (0usize, 0usize, 0.0f64);
    let mut end = seq;
    while end <= pkts.len() && sent < 40 {
        let window = featurize_window(
            &pkts[end - seq..end],
            engine.norm(),
            engine.cfg().features,
            true, // mask the delay being predicted, as in pre-training
        );
        let z = client
            .predict(
                "pretrain",
                "delay",
                &window,
                None,
                Some(Duration::from_secs(2)),
            )
            .expect("wire prediction");
        let predicted = engine.denorm_delay(z);
        let actual = pkts[end - 1].delay;
        se += f64::from(predicted - actual) * f64::from(predicted - actual);
        sent += 1;
        if shown < 10 {
            println!(
                "  {:>8.3}   {:>14.3}   {:>11.3}",
                pkts[end - 1].t,
                predicted * 1e3,
                actual * 1e3
            );
            shown += 1;
        }
        end += stride;
    }
    println!(
        "\n{sent} windows served over TCP, live MSE {:.6e} s^2",
        se / sent as f64
    );

    // ---- The wire adds zero numeric surface: spot-check one window --
    let window = featurize_window(&pkts[0..seq], engine.norm(), engine.cfg().features, true);
    let over_wire = client
        .predict("pretrain", "delay", &window, None, None)
        .expect("spot-check prediction");
    let direct = engine
        .predict(
            "delay",
            &ntt::tensor::Tensor::from_vec(window, &[1, seq, NUM_FEATURES]),
            None,
        )
        .item();
    assert_eq!(
        over_wire.to_bits(),
        direct.to_bits(),
        "wire prediction diverged from direct engine call"
    );
    println!("wire prediction is byte-identical to the in-process engine ✓");

    // Typed protocol errors, not hangs: an unknown model answers with a
    // stable error code naming what IS registered.
    let err = client
        .predict("nope", "delay", &[0.0; 4], None, None)
        .expect_err("unknown model must fail typed");
    println!("unknown model answers typed: {err}");
    drop(server); // graceful: drains pools, joins threads, frees the port
    let _ = std::fs::remove_file(&ckpt);
}
