//! §5 "Collaborative pre-training": two organizations with *private*
//! traces each pre-train an NTT locally, then share only model
//! parameters, which are combined by federated averaging — no packet
//! ever leaves its owner. The combined model is then fine-tuned by a
//! third party that has very little data of its own.
//!
//! Run: `cargo run --release --example collaborative_pretraining`

use ntt::core::federated::weighted_average_params;
use ntt::core::{
    eval_delay, train_delay, Aggregation, DelayHead, Ntt, NttConfig, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::nn::Module;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

fn main() {
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // 64-pkt windows
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 1,
        ..NttConfig::default()
    };
    let ds_cfg = DatasetConfig {
        seq_len: 64,
        stride: 8,
        test_fraction: 0.2,
    };
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    };

    // Two organizations observe *different* networks (different seeds
    // here; in the vision, different real deployments).
    let org_a_trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(201));
    let org_b_trace = run(Scenario::Case1, &ScenarioConfig::tiny(202));
    println!(
        "org A: {} private packets | org B: {} private packets",
        org_a_trace.packets.len(),
        org_b_trace.packets.len()
    );

    // Each trains locally. The same architecture + seed means the sites
    // start from the same initialization (a standard FedAvg assumption).
    let (ds_a, test_a) = DelayDataset::build(TraceData::from_traces(&[org_a_trace]), ds_cfg, None);
    let (ds_b, test_b) = DelayDataset::build(TraceData::from_traces(&[org_b_trace]), ds_cfg, None);
    let model_a = Ntt::new(cfg);
    let head_a = DelayHead::new(16, 1);
    let model_b = Ntt::new(cfg);
    let head_b = DelayHead::new(16, 1);
    train_delay(&model_a, &head_a, &ds_a, &tc, TrainMode::Full);
    train_delay(&model_b, &head_b, &ds_b, &tc, TrainMode::Full);
    println!(
        "local models: A on-site MSE {:.4}, B on-site MSE {:.4}",
        eval_delay(&model_a, &head_a, &test_a, 32).mse_norm,
        eval_delay(&model_b, &head_b, &test_b, 32).mse_norm,
    );
    // Cross-site *without* sharing: each model on the other's network.
    let a_on_b = eval_delay(&model_a, &head_a, &test_b, 32).mse_norm;
    let b_on_a = eval_delay(&model_b, &head_b, &test_a, 32).mse_norm;
    println!("cross-site (no sharing): A->B {a_on_b:.4}, B->A {b_on_a:.4}");

    // Share parameters only; weight by local dataset size.
    let sizes = [ds_a.len() as f64, ds_b.len() as f64];
    weighted_average_params(&[&model_a as &dyn Module, &model_b], &sizes);
    weighted_average_params(&[&head_a as &dyn Module, &head_b], &sizes);
    println!(
        "federated model: on A {:.4}, on B {:.4} (one model, no data shared)",
        eval_delay(&model_a, &head_a, &test_a, 32).mse_norm,
        eval_delay(&model_a, &head_a, &test_b, 32).mse_norm,
    );

    // A third party with a small dataset fine-tunes the shared model.
    let third = run(Scenario::Case1, &ScenarioConfig::tiny(203));
    let (ds_c, test_c) = DelayDataset::build(
        TraceData::from_traces(&[third]),
        ds_cfg,
        Some(ds_a.norm.clone()),
    );
    let small = ds_c.subsample(0.10, 0);
    train_delay(&model_a, &head_a, &small, &tc, TrainMode::DecoderOnly);
    println!(
        "third party after decoder-only fine-tuning on {} windows: MSE {:.4}",
        small.len(),
        eval_delay(&model_a, &head_a, &test_c, 32).mse_norm,
    );
}
