//! §5 "Collaborative pre-training": two organizations with *private*
//! traces each pre-train an NTT locally, then share only model
//! parameters, which are combined by federated averaging — no packet
//! ever leaves its owner. The combined model is then fine-tuned by a
//! third party that has very little data of its own.
//!
//! Run: `cargo run --release --example collaborative_pretraining`

use ntt::core::federated::weighted_average_params;
use ntt::core::{Aggregation, Experiment, FinetuneOpts, NttConfig, TrainConfig};
use ntt::data::TraceData;
use ntt::nn::Module;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

fn main() {
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // 64-pkt windows
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 1,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    });

    // Two organizations observe *different* networks (different seeds
    // here; in the vision, different real deployments).
    let org_a_trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(201));
    let org_b_trace = run(Scenario::Case1, &ScenarioConfig::tiny(202));
    println!(
        "org A: {} private packets | org B: {} private packets",
        org_a_trace.packets.len(),
        org_b_trace.packets.len()
    );

    // Each trains locally through the same pipeline. The same
    // architecture + seed means the sites start from the same
    // initialization (a standard FedAvg assumption).
    let data_a = TraceData::from_traces(&[org_a_trace]);
    let data_b = TraceData::from_traces(&[org_b_trace]);
    let pre_a = exp.pretrain_on(data_a.clone(), "org A: pretrain".into(), None);
    let pre_b = exp.pretrain_on(data_b.clone(), "org B: case1".into(), None);
    println!(
        "local models: A on-site MSE {:.4}, B on-site MSE {:.4}",
        pre_a.eval.unwrap().mse_norm,
        pre_b.eval.unwrap().mse_norm,
    );
    // Cross-site *without* sharing: each model on the other's network.
    println!(
        "cross-site (no sharing): A->B {:.4}, B->A {:.4}",
        pre_a.eval_delay_on(data_b.clone()).mse_norm,
        pre_b.eval_delay_on(data_a.clone()).mse_norm,
    );

    // Share parameters only; weight by local dataset size.
    let windows = |p: &ntt::core::Pretrained| {
        p.meta("train_windows")
            .and_then(|w| w.parse::<f64>().ok())
            .unwrap_or(1.0)
    };
    let sizes = [windows(&pre_a), windows(&pre_b)];
    weighted_average_params(&[&pre_a.model as &dyn Module, &pre_b.model], &sizes);
    weighted_average_params(
        &[
            pre_a.head("delay").unwrap() as &dyn Module,
            pre_b.head("delay").unwrap(),
        ],
        &sizes,
    );
    println!(
        "federated model: on A {:.4}, on B {:.4} (one model, no data shared)",
        pre_a.eval_delay_on(data_a).mse_norm,
        pre_a.eval_delay_on(data_b).mse_norm,
    );

    // A third party with a small dataset fine-tunes the shared model
    // (pre_a now holds the federated average).
    let third = run(Scenario::Case1, &ScenarioConfig::tiny(203));
    let ft = pre_a.finetune_on(
        TraceData::from_traces(&[third]),
        &FinetuneOpts::decoder_only().fraction(0.10),
    );
    println!(
        "third party after decoder-only fine-tuning on {} windows: MSE {:.4}",
        ft.train_windows, ft.eval.mse_norm,
    );
}
