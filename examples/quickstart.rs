//! Quickstart: simulate a congested network, train a small Network
//! Traffic Transformer to predict packet delays through the
//! `Experiment` pipeline, and inspect the realized Fig. 3 stages.
//!
//! Run: `cargo run --release --example quickstart`

use ntt::core::{Aggregation, Experiment, NttConfig, TrainConfig};
use ntt::data::{TraceData, NUM_FEATURES};
use ntt::nn::Module;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::tensor::Tape;

fn main() {
    // 1. Generate a packet trace: 6 senders share a 4 Mbps bottleneck
    //    (a scaled-down Fig. 4 setup). Fully deterministic in the seed.
    let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(7));
    println!(
        "simulated {} delivered packets, {} completed messages, {} drops",
        trace.packets.len(),
        trace.messages.len(),
        trace.drops
    );

    // 2. Declare the experiment: the model config implies the window
    //    length (112 packets here); the pipeline derives everything
    //    else — dataset windows, normalization, seeds.
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-packet windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    });

    // 3. Train + evaluate in one call (sweep → windows → model → loop).
    let data = TraceData::from_traces(&[trace]);
    let pre = exp.pretrain_on(data.clone(), "quickstart: pretrain x1".into(), None);
    let report = pre.report.as_ref().unwrap();
    println!(
        "windows: {} train; model: {} parameters (trunk) + {} (delay head)",
        pre.meta("train_windows").unwrap(),
        pre.model.num_params(),
        pre.head("delay").unwrap().num_params(),
    );
    println!(
        "training: loss per epoch {:?} ({} steps, {:.1?})",
        report
            .epoch_losses
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>(),
        report.steps,
        report.wall
    );
    let ev = pre.eval.unwrap();
    println!(
        "held-out delay MSE: {:.4} (normalized) = {:.3e} s^2 (raw), over {} windows",
        ev.mse_norm, ev.mse_raw, ev.n
    );

    // 4. Walk one batch through the Fig. 3 stages by hand — the
    //    pipeline is sugar over these calls, not a wall around them.
    let (_, test) = exp.delay_datasets(data, Some(pre.norm.clone()));
    let head = pre.head("delay").unwrap();
    {
        let tape = Tape::new();
        let (x, _) = test.batch(&[0, 1]);
        let (b, t) = (x.shape()[0], x.shape()[1]);
        let encoded = pre.model.forward(&tape, tape.input(x));
        let enc_shape = encoded.shape();
        let pred = head.forward_head(&tape, encoded, None);
        println!(
            "stages: input [B={b}, T={t}, F={NUM_FEATURES}] -> encoder output {:?} -> prediction {:?}",
            enc_shape,
            pred.shape(),
        );
    }

    // 5. Predict a single window and compare against the truth.
    let (x, _) = test.batch(&[0]);
    let tape = Tape::new();
    let pred = head.forward_head(&tape, pre.model.forward(&tape, tape.input(x)), None);
    let pred_secs = test.denorm_delay(pred.value().item());
    println!(
        "sample prediction: {:.2} ms vs actual {:.2} ms",
        pred_secs * 1e3,
        test.target_raw(0) * 1e3
    );
}
