//! Quickstart: simulate a congested network, train a small Network
//! Traffic Transformer to predict packet delays, and inspect the
//! realized Fig. 3 pipeline stage by stage.
//!
//! Run: `cargo run --release --example quickstart`

use ntt::core::{
    eval_delay, train_delay, Aggregation, DelayHead, Ntt, NttConfig, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData, NUM_FEATURES};
use ntt::nn::Module;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::tensor::Tape;

fn main() {
    // 1. Generate a packet trace: 6 senders share a 4 Mbps bottleneck
    //    (a scaled-down Fig. 4 setup). Fully deterministic in the seed.
    let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(7));
    println!(
        "simulated {} delivered packets, {} completed messages, {} drops",
        trace.packets.len(),
        trace.messages.len(),
        trace.drops
    );

    // 2. Slice the trace into training windows: each sample is the
    //    sequence of the 112 most recent packets; the target is the
    //    masked delay of the newest one.
    let model_cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 2 }, // 112-packet windows
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    };
    let data = TraceData::from_traces(&[trace]);
    let ds_cfg = DatasetConfig {
        seq_len: model_cfg.seq_len(),
        stride: 8,
        test_fraction: 0.2,
    };
    let (train, test) = DelayDataset::build(data, ds_cfg, None);
    println!("windows: {} train / {} test", train.len(), test.len());

    // 3. Build the NTT and walk one batch through the Fig. 3 stages.
    let model = Ntt::new(model_cfg);
    let head = DelayHead::new(model_cfg.d_model, 0);
    println!(
        "model: {} parameters (trunk) + {} (delay head)",
        model.num_params(),
        head.num_params()
    );
    {
        let tape = Tape::new();
        let (x, _) = train.batch(&[0, 1]);
        let (b, t) = (x.shape()[0], x.shape()[1]);
        let encoded = model.forward(&tape, tape.input(x));
        let enc_shape = encoded.shape();
        let pred = head.forward(&tape, encoded);
        println!(
            "stages: input [B={b}, T={t}, F={NUM_FEATURES}] -> encoder output {:?} -> prediction {:?}",
            enc_shape,
            pred.shape(),
        );
    }

    // 4. Train briefly and evaluate.
    let t_cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    };
    let report = train_delay(&model, &head, &train, &t_cfg, TrainMode::Full);
    println!(
        "training: loss per epoch {:?} ({} steps, {:.1?})",
        report
            .epoch_losses
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>(),
        report.steps,
        report.wall
    );
    let ev = eval_delay(&model, &head, &test, 64);
    println!(
        "held-out delay MSE: {:.4} (normalized) = {:.3e} s^2 (raw), over {} windows",
        ev.mse_norm, ev.mse_raw, ev.n
    );

    // 5. Predict a single window and compare against the truth.
    let (x, _) = test.batch(&[0]);
    let tape = Tape::new();
    let pred = head.forward(&tape, model.forward(&tape, tape.input(x)));
    let pred_secs = test.denorm_delay(pred.value().item());
    println!(
        "sample prediction: {:.2} ms vs actual {:.2} ms",
        pred_secs * 1e3,
        test.target_raw(0) * 1e3
    );
}
