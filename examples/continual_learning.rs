//! §5 "Continual learning": the Internet drifts — when is a fine-tuned
//! model outdated, and how cheaply can it be refreshed?
//!
//! Three environment phases with growing cross-traffic. The deployed
//! checkpoint (pre-trained in phase 0) degrades as the environment
//! drifts; each phase, a cheap decoder-only refresh on a small slice of
//! fresh data restores it — without ever touching the pre-trained
//! trunk. The fine-tuning's built-in zero-shot measurement *is* the
//! staleness number.
//!
//! Run: `cargo run --release --example continual_learning`

use ntt::core::{Aggregation, Experiment, FinetuneOpts, NttConfig, TrainConfig};
use ntt::data::TraceData;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::sim::SimTime;

fn phase_cfg(cross_rate_bps: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        cross_rate_bps,
        duration: SimTime::from_secs(4),
        ..ScenarioConfig::tiny(seed)
    }
}

fn main() {
    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        ..NttConfig::default()
    })
    .stride(8)
    .test_fraction(0.3)
    .with_train(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    });

    // Environment drift: cross-traffic grows phase by phase.
    let phases = [0.5e6, 1.5e6, 3.0e6];

    // Train the deployed model in phase 0 (it keeps its scaler for
    // every later phase — a deployed pipeline does not re-fit).
    let t0 = run(Scenario::Case1, &phase_cfg(phases[0], 301));
    let pre = exp.pretrain_on(
        TraceData::from_traces(&[t0]),
        "continual phase 0".into(),
        None,
    );
    println!(
        "phase 0 ({} Mbps cross): trained, on-phase MSE {:.4}",
        phases[0] / 1e6,
        pre.eval.unwrap().mse_norm
    );

    // Drift through later phases: the refresh's zero-shot measurement
    // is the stale error; its eval is the refreshed error.
    for (i, &rate) in phases.iter().enumerate().skip(1) {
        let trace = run(Scenario::Case1, &phase_cfg(rate, 301 + i as u64));
        let refresh = pre.finetune_on(
            TraceData::from_traces(&[trace]),
            &FinetuneOpts::decoder_only().fraction(0.2).seed(i as u64),
        );
        println!(
            "phase {i} ({} Mbps cross): stale MSE {:.4} -> refreshed {:.4} \
             ({} windows, {} params updated, {:.1?})",
            rate / 1e6,
            refresh.zero_shot.unwrap().mse_norm,
            refresh.eval.mse_norm,
            refresh.train_windows,
            refresh.report.trainable_params,
            refresh.report.wall
        );
    }

    println!(
        "\nthe trunk was pre-trained once and never re-trained; only the small decoder tracked the drift \
         (the paper's §5 'when should an NTT be re-trained?' made concrete)"
    );
}
