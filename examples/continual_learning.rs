//! §5 "Continual learning": the Internet drifts — when is a fine-tuned
//! model outdated, and how cheaply can it be refreshed?
//!
//! Three environment phases with growing cross-traffic. A model
//! fine-tuned in phase 0 degrades as the environment drifts; a cheap
//! decoder-only refresh on a small slice of fresh data restores it —
//! without touching the pre-trained trunk.
//!
//! Run: `cargo run --release --example continual_learning`

use ntt::core::{
    eval_delay, train_delay, Aggregation, DelayHead, Ntt, NttConfig, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::sim::SimTime;

fn phase_cfg(cross_rate_bps: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        cross_rate_bps,
        duration: SimTime::from_secs(4),
        ..ScenarioConfig::tiny(seed)
    }
}

fn main() {
    let model_cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        ..NttConfig::default()
    };
    let ds_cfg = DatasetConfig {
        seq_len: 64,
        stride: 8,
        test_fraction: 0.3,
    };
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(25),
        ..TrainConfig::default()
    };

    // Environment drift: cross-traffic grows phase by phase.
    let phases = [0.5e6, 1.5e6, 3.0e6];
    let model = Ntt::new(model_cfg);
    let head = DelayHead::new(16, 0);

    // Train in phase 0.
    let t0 = run(Scenario::Case1, &phase_cfg(phases[0], 301));
    let (train0, test0) = DelayDataset::build(TraceData::from_traces(&[t0]), ds_cfg, None);
    train_delay(&model, &head, &train0, &tc, TrainMode::Full);
    println!(
        "phase 0 ({} Mbps cross): trained, on-phase MSE {:.4}",
        phases[0] / 1e6,
        eval_delay(&model, &head, &test0, 32).mse_norm
    );

    // Drift through later phases: evaluate stale, refresh, re-evaluate.
    for (i, &rate) in phases.iter().enumerate().skip(1) {
        let trace = run(Scenario::Case1, &phase_cfg(rate, 301 + i as u64));
        let (train_i, test_i) = DelayDataset::build(
            TraceData::from_traces(&[trace]),
            ds_cfg,
            Some(train0.norm.clone()), // deployed pipeline keeps its scaler
        );
        let stale = eval_delay(&model, &head, &test_i, 32).mse_norm;
        // Cheap refresh: decoder-only on 20% of the fresh windows.
        let slice = train_i.subsample(0.2, i as u64);
        let rep = train_delay(&model, &head, &slice, &tc, TrainMode::DecoderOnly);
        let refreshed = eval_delay(&model, &head, &test_i, 32).mse_norm;
        println!(
            "phase {i} ({} Mbps cross): stale MSE {:.4} -> refreshed {:.4} \
             ({} windows, {} params updated, {:.1?})",
            rate / 1e6,
            stale,
            refreshed,
            slice.len(),
            rep.trainable_params,
            rep.wall
        );
    }

    println!(
        "\nthe trunk was pre-trained once and never re-trained; only the small decoder tracked the drift \
         (the paper's §5 'when should an NTT be re-trained?' made concrete)"
    );
}
