//! Observability contracts at the workspace level: deterministic
//! metrics are bit-stable across thread counts, and flipping the kill
//! switch can never change a numeric result.

use ntt::core::{
    train_delay, Aggregation, DelayHead, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

/// Deterministic slice of the registry around one training run:
/// logical-event counters and computed-value gauges (never wall-clock).
#[derive(Debug, PartialEq)]
struct TrainDeltas {
    steps: u64,
    /// (count, sum) of the microbatch fan-out histogram — shard counts
    /// are a pure function of batch size and `microbatch`.
    fanout: (u64, u64),
    /// Last pre-clip gradient norm, bit-exact.
    grad_norm_bits: u64,
    workers_seen: f64,
}

fn counter(name: &str) -> u64 {
    ntt::obs::snapshot().counter(name).unwrap_or(0)
}

fn fanout_hist() -> (u64, u64) {
    ntt::obs::snapshot()
        .histogram("train.fanout_shards")
        .map_or((0, 0), |h| (h.count, h.sum))
}

fn train_once(threads: usize) -> (Vec<f64>, TrainDeltas) {
    let steps0 = counter("train.steps");
    let fanout0 = fanout_hist();

    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(5))];
    let (train, _) = DelayDataset::build(
        TraceData::from_traces(&traces),
        DatasetConfig {
            seq_len: 64,
            stride: 8,
            test_fraction: 0.2,
        },
        None,
    );
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        dropout: 0.1,
        seed: 13,
        ..NttConfig::default()
    };
    let model = Ntt::new(cfg);
    let head = DelayHead::new(16, 13);
    let report = train_delay(
        &model,
        &head,
        &train,
        &TrainConfig {
            epochs: 1,
            batch_size: 16,
            max_steps_per_epoch: Some(6),
            par: ParStrategy::with_threads(threads),
            ..TrainConfig::default()
        },
        TrainMode::Full,
    );

    let steps1 = counter("train.steps");
    let fanout1 = fanout_hist();
    let snap = ntt::obs::snapshot();
    let deltas = TrainDeltas {
        steps: steps1 - steps0,
        fanout: (fanout1.0 - fanout0.0, fanout1.1 - fanout0.1),
        grad_norm_bits: snap.gauge("train.grad_norm").unwrap_or(f64::NAN).to_bits(),
        workers_seen: snap.gauge("train.fanout_workers").unwrap_or(f64::NAN),
    };
    (report.epoch_losses, deltas)
}

/// One test body (not several) because the phases toggle the
/// process-global kill switch and must not interleave.
#[test]
fn deterministic_metrics_are_thread_count_invariant_and_inert() {
    ntt::obs::set_enabled(true);

    // --- Bit-stability: NTT_THREADS-style 1 vs 4 worker runs ---
    let (losses_1, deltas_1) = train_once(1);
    let (losses_4, deltas_4) = train_once(4);
    assert_eq!(losses_1, losses_4, "training itself must be invariant");
    assert_eq!(deltas_1.steps, 6, "6 capped steps → 6 counter bumps");
    // Same steps, same shard decomposition, same final grad norm —
    // only the worker gauge is allowed to differ.
    assert_eq!(deltas_1.steps, deltas_4.steps);
    assert_eq!(deltas_1.fanout, deltas_4.fanout);
    assert_eq!(
        deltas_1.grad_norm_bits, deltas_4.grad_norm_bits,
        "grad-norm gauge must be bit-stable across thread counts"
    );
    assert_eq!(deltas_1.workers_seen, 1.0);
    assert!(deltas_4.workers_seen > 1.0, "4-thread run used >1 worker");

    // --- Inertness: the kill switch silences metrics, not numerics ---
    ntt::obs::set_enabled(false);
    let steps_before = counter("train.steps");
    let (losses_off, _) = train_once(1);
    assert_eq!(
        losses_off, losses_1,
        "disabling observability must not change a loss"
    );
    assert_eq!(
        counter("train.steps"),
        steps_before,
        "disabled counters must not move"
    );
    ntt::obs::set_enabled(true);

    // --- Export round-trip over real training metrics ---
    let snap = ntt::obs::snapshot();
    let json = snap.to_json();
    assert!(json.contains("\"train.steps\""));
    assert!(json.contains("\"train.fanout_shards\""));
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE train_steps counter"));
    assert!(prom.contains("train_step_ns{quantile=\"0.5\"}"));
}
