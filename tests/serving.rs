//! Execution-mode correctness: the grad-free inference path must be a
//! *mode* of the same engine, not a second implementation. Inference
//! forwards are bit-identical to recording-tape forwards (dropout
//! disabled), for every head, at every worker count — and the
//! evaluation loops, now grad-free, reproduce exactly the values the
//! recording-tape implementation produced.

use ntt::core::{
    evaluate, Aggregation, DelayHead, DropHead, HeadTask, MctHead, Ntt, NttConfig, ParStrategy,
    Task,
};
use ntt::data::{BatchIter, DatasetConfig, DelayDataset, TraceData, NUM_FEATURES};
use ntt::nn::Head;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::tensor::{Tape, Tensor};

fn tiny_model(dropout: f32) -> Ntt {
    Ntt::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        dropout,
        seed: 23,
        ..NttConfig::default()
    })
}

#[test]
fn inference_forward_is_bit_identical_for_all_heads() {
    // Dropout present in the config but disabled (eval mode): the
    // inference tape must reproduce the recording tape bit for bit —
    // the acceptance gate for replacing evaluation's execution path.
    let ntt = tiny_model(0.2);
    ntt.set_training(false);
    let heads: Vec<Box<dyn Head>> = vec![
        Box::new(DelayHead::new(16, 1)),
        Box::new(MctHead::new(16, 2)),
        Box::new(DropHead::new(16, 3)),
    ];
    let x = Tensor::randn(&[3, ntt.cfg.seq_len(), NUM_FEATURES], 9);
    let aux = Tensor::randn(&[3, 1], 10);
    for head in &heads {
        let run_on = |tape: &Tape| {
            let enc = ntt.forward(tape, tape.input(x.clone()));
            let aux = head.needs_aux().then(|| tape.input(aux.clone()));
            head.forward_head(tape, enc, aux).value()
        };
        let recorded = run_on(&Tape::with_seed(4));
        let inferred = run_on(&Tape::inference_with_seed(4));
        assert_eq!(
            recorded.data().len(),
            inferred.data().len(),
            "{}: shape diverged",
            head.kind()
        );
        for (a, b) in recorded.data().iter().zip(inferred.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: inference forward diverged from recording forward",
                head.kind()
            );
        }
    }
}

fn tiny_dataset(seq_len: usize) -> (DelayDataset, DelayDataset) {
    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(31))];
    let data = TraceData::from_traces(&traces);
    let cfg = DatasetConfig {
        seq_len,
        stride: 8,
        test_fraction: 0.2,
    };
    DelayDataset::build(data, cfg, None)
}

#[test]
fn grad_free_evaluate_reproduces_the_recording_tape_values() {
    // Pre-PR, `evaluate` ran every batch on a recording tape (building
    // the whole backward graph it never used). Recompute that reference
    // by hand — same batch partitioning, same reduction order, recording
    // tapes — and require the grad-free evaluate to match to the bit,
    // sequentially and fanned out over 4 workers.
    let ntt = tiny_model(0.1);
    let head = DelayHead::new(16, 5);
    let (train, test) = tiny_dataset(ntt.cfg.seq_len());
    let ds = if test.is_empty() { train } else { test };
    let task = HeadTask::new(&head, &ds);
    let batch_size = 16;

    ntt.set_training(false);
    let (mut se, mut n) = (0.0f64, 0usize);
    for batch in BatchIter::new(task.len(), batch_size, 0, false) {
        let tape = Tape::new(); // the old evaluation path: full recording
        let mse = task.batch_loss(&tape, &ntt, &batch);
        se += mse.value().item() as f64 * batch.len() as f64;
        n += batch.len();
    }
    let reference = se / n as f64;

    for threads in [1usize, 4] {
        let report = evaluate(&ntt, &task, batch_size, &ParStrategy::with_threads(threads));
        assert_eq!(
            report.mse_norm.to_bits(),
            reference.to_bits(),
            "grad-free evaluate diverged at {threads} workers"
        );
        assert_eq!(report.n, ds.len());
    }
}

#[test]
fn serving_engine_agrees_with_evaluate() {
    // End-to-end cross-check between the two consumers of the grad-free
    // path: `ntt-serve` batched prediction and the trainer's evaluate
    // must see the same model outputs for the same windows.
    use ntt::serve::InferenceEngine;
    let ntt = tiny_model(0.0);
    let head = DelayHead::new(16, 7);
    let (train, _) = tiny_dataset(ntt.cfg.seq_len());
    let idx: Vec<usize> = (0..train.len().min(8)).collect();
    let (x, y) = train.batch(&idx);

    // Reference squared error through a recording tape.
    let tape = Tape::new();
    let pred_ref = head
        .forward_head(&tape, ntt.forward(&tape, tape.input(x.clone())), None)
        .value();

    let engine = InferenceEngine::from_parts(
        ntt,
        vec![Box::new(head) as Box<dyn Head>],
        train.norm.clone(),
    );
    let served = engine.predict("delay", &x, None);
    assert_eq!(served.shape(), &[idx.len(), 1]);
    for (a, b) in served.data().iter().zip(pred_ref.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(y.shape(), &[idx.len(), 1]);
}
