//! Execution-mode correctness: the grad-free inference path must be a
//! *mode* of the same engine, not a second implementation. Inference
//! tapes route attention through the fused streaming-softmax tile, so
//! inference forwards agree with recording-tape forwards to within
//! epsilon (the online softmax reorders the IEEE reduction; bitwise
//! cross-mode equality is explicitly not claimed) while staying fully
//! deterministic *within* the mode: bit-identical across runs, seeds,
//! worker counts, and batch compositions. The evaluation loops and the
//! serving engine must both reproduce a hand-wired inference tape to
//! the bit.

use ntt::core::{
    evaluate, Aggregation, DelayHead, DropHead, HeadTask, MctHead, Ntt, NttConfig, ParStrategy,
    Task,
};
use ntt::data::{BatchIter, DatasetConfig, DelayDataset, TraceData, NUM_FEATURES};
use ntt::nn::Head;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt::tensor::{Tape, Tensor};

fn tiny_model(dropout: f32) -> Ntt {
    Ntt::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        dropout,
        seed: 23,
        ..NttConfig::default()
    })
}

#[test]
fn inference_forward_is_deterministic_and_close_to_recording() {
    // Dropout present in the config but disabled (eval mode). The
    // inference tape runs fused attention, so it agrees with the
    // recording tape to within epsilon — and must reproduce *itself*
    // bit for bit regardless of tape seed, since nothing stochastic
    // runs in eval mode.
    let ntt = tiny_model(0.2);
    ntt.set_training(false);
    let heads: Vec<Box<dyn Head>> = vec![
        Box::new(DelayHead::new(16, 1)),
        Box::new(MctHead::new(16, 2)),
        Box::new(DropHead::new(16, 3)),
    ];
    let x = Tensor::randn(&[3, ntt.cfg.seq_len(), NUM_FEATURES], 9);
    let aux = Tensor::randn(&[3, 1], 10);
    for head in &heads {
        let run_on = |tape: &Tape| {
            let enc = ntt.forward(tape, tape.input(x.clone()));
            let aux = head.needs_aux().then(|| tape.input(aux.clone()));
            head.forward_head(tape, enc, aux).value()
        };
        let recorded = run_on(&Tape::with_seed(4));
        let inferred = run_on(&Tape::inference_with_seed(4));
        assert_eq!(
            recorded.shape(),
            inferred.shape(),
            "{}: shape diverged",
            head.kind()
        );
        assert!(
            inferred.allclose(&recorded, 1e-4),
            "{}: inference forward drifted from recording forward",
            head.kind()
        );
        let replay = run_on(&Tape::inference_with_seed(77));
        for (a, b) in inferred.data().iter().zip(replay.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: inference forward is not reproducible",
                head.kind()
            );
        }
    }
}

fn tiny_dataset(seq_len: usize) -> (DelayDataset, DelayDataset) {
    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(31))];
    let data = TraceData::from_traces(&traces);
    let cfg = DatasetConfig {
        seq_len,
        stride: 8,
        test_fraction: 0.2,
    };
    DelayDataset::build(data, cfg, None)
}

#[test]
fn grad_free_evaluate_is_reproducible_and_close_to_recording() {
    // Recompute `evaluate`'s result by hand — same batch partitioning,
    // same reduction order — on hand-wired inference tapes, and require
    // the grad-free evaluate to match to the bit, sequentially and
    // fanned out over 4 workers. A recording-tape replay of the same
    // loop (classic attention chain) must land within epsilon.
    let ntt = tiny_model(0.1);
    let head = DelayHead::new(16, 5);
    let (train, test) = tiny_dataset(ntt.cfg.seq_len());
    let ds = if test.is_empty() { train } else { test };
    let task = HeadTask::new(&head, &ds);
    let batch_size = 16;

    ntt.set_training(false);
    let loop_mse = |mk_tape: fn() -> Tape| {
        let (mut se, mut n) = (0.0f64, 0usize);
        for batch in BatchIter::new(task.len(), batch_size, 0, false) {
            let tape = mk_tape();
            let mse = task.batch_loss(&tape, &ntt, &batch);
            se += mse.value().item() as f64 * batch.len() as f64;
            n += batch.len();
        }
        se / n as f64
    };
    let reference = loop_mse(Tape::inference);
    let classic = loop_mse(Tape::new);
    assert!(
        (reference - classic).abs() <= 1e-4 * classic.abs().max(1.0),
        "fused evaluate drifted from the classic chain: {reference} vs {classic}"
    );

    for threads in [1usize, 4] {
        let report = evaluate(&ntt, &task, batch_size, &ParStrategy::with_threads(threads));
        assert_eq!(
            report.mse_norm.to_bits(),
            reference.to_bits(),
            "grad-free evaluate diverged at {threads} workers"
        );
        assert_eq!(report.n, ds.len());
    }
}

#[test]
fn serving_engine_agrees_with_evaluate() {
    // End-to-end cross-check between the two consumers of the grad-free
    // path: `ntt-serve` batched prediction and the trainer's evaluate
    // must see the same model outputs for the same windows.
    use ntt::serve::InferenceEngine;
    let ntt = tiny_model(0.0);
    let head = DelayHead::new(16, 7);
    let (train, _) = tiny_dataset(ntt.cfg.seq_len());
    let idx: Vec<usize> = (0..train.len().min(8)).collect();
    let (x, y) = train.batch(&idx);

    // Bit-exact reference through a hand-wired inference tape (the
    // same fused-attention path evaluate and the engine both run) and
    // an epsilon reference through a recording tape's classic chain.
    let infer = Tape::inference();
    let pred_ref = head
        .forward_head(&infer, ntt.forward(&infer, infer.input(x.clone())), None)
        .value();
    let rec = Tape::new();
    let pred_classic = head
        .forward_head(&rec, ntt.forward(&rec, rec.input(x.clone())), None)
        .value();

    let engine = InferenceEngine::from_parts(
        ntt,
        vec![Box::new(head) as Box<dyn Head>],
        train.norm.clone(),
    );
    let served = engine.predict("delay", &x, None);
    assert_eq!(served.shape(), &[idx.len(), 1]);
    for (a, b) in served.data().iter().zip(pred_ref.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(served.allclose(&pred_classic, 1e-4));
    assert_eq!(y.shape(), &[idx.len(), 1]);
}
