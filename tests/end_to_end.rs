//! Cross-crate integration tests: simulator → dataset → model →
//! training → evaluation, exercising the public API exactly as the
//! examples and the paper's workflow do.

use ntt::core::{
    eval_delay, eval_mct, train_delay, train_mct, Aggregation, DelayHead, MctHead, Ntt, NttConfig,
    TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, FeatureMask, MctDataset, TraceData};
use ntt::fleet::run_many_parallel;
use ntt::nn::Module;
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
use std::sync::Arc;

fn model_cfg() -> NttConfig {
    NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // 64-pkt windows
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 5,
        ..NttConfig::default()
    }
}

fn ds_cfg() -> DatasetConfig {
    DatasetConfig {
        seq_len: 64,
        stride: 8,
        test_fraction: 0.2,
    }
}

fn quick_train() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 2e-3,
        max_steps_per_epoch: Some(15),
        ..TrainConfig::default()
    }
}

#[test]
fn sim_to_training_pipeline_learns() {
    let traces = run_many_parallel(Scenario::Pretrain, &ScenarioConfig::tiny(100), 2, 0);
    let (train, test) = DelayDataset::build(TraceData::from_traces(&traces), ds_cfg(), None);
    assert!(train.len() > 100 && test.len() > 10);

    let model = Ntt::new(model_cfg());
    let head = DelayHead::new(16, 0);
    let before = eval_delay(&model, &head, &test, 32);
    let report = train_delay(&model, &head, &train, &quick_train(), TrainMode::Full);
    let after = eval_delay(&model, &head, &test, 32);
    assert!(
        after.mse_norm < before.mse_norm,
        "training must improve held-out MSE: {} -> {}",
        before.mse_norm,
        after.mse_norm
    );
    assert!(report.final_loss() < report.epoch_losses[0]);
}

#[test]
fn task_transfer_delay_trunk_to_mct_head() {
    let traces = run_many_parallel(Scenario::Case1, &ScenarioConfig::tiny(101), 2, 0);
    let data = TraceData::from_traces(&traces);
    let (d_train, _) = DelayDataset::build(Arc::clone(&data), ds_cfg(), None);
    let model = Ntt::new(model_cfg());
    let d_head = DelayHead::new(16, 1);
    train_delay(&model, &d_head, &d_train, &quick_train(), TrainMode::Full);

    // Swap the decoder for the new task, freeze the trunk.
    let (m_train, m_test) = MctDataset::build(data, ds_cfg(), d_train.norm.clone());
    assert!(
        m_train.len() > 20,
        "need MCT anchors, got {}",
        m_train.len()
    );
    let m_head = MctHead::new(16, 2);
    let trunk_before: Vec<_> = model.params().iter().map(|p| p.value()).collect();
    train_mct(
        &model,
        &m_head,
        &m_train,
        &quick_train(),
        TrainMode::DecoderOnly,
    );
    for (p, b) in model.params().iter().zip(trunk_before) {
        assert_eq!(p.value(), b, "frozen trunk moved: {}", p.name());
    }
    let ev = eval_mct(&model, &m_head, &m_test, 32);
    assert!(ev.mse_norm.is_finite());
}

#[test]
fn feature_ablation_without_delay_cannot_predict_delay() {
    // The paper's strongest ablation: without delay information the
    // model "can logically not produce any sensible prediction".
    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(102))];
    let data = TraceData::from_traces(&traces);
    let (train_full, test_full) = DelayDataset::build(Arc::clone(&data), ds_cfg(), None);
    let (train_blind, test_blind) = (
        train_full.with_mask(FeatureMask::without_delay()),
        test_full.with_mask(FeatureMask::without_delay()),
    );

    let full = Ntt::new(model_cfg());
    let full_head = DelayHead::new(16, 3);
    train_delay(
        &full,
        &full_head,
        &train_full,
        &quick_train(),
        TrainMode::Full,
    );
    let ev_full = eval_delay(&full, &full_head, &test_full, 32);

    let blind = Ntt::new(NttConfig {
        seed: 6,
        ..model_cfg()
    });
    let blind_head = DelayHead::new(16, 4);
    train_delay(
        &blind,
        &blind_head,
        &train_blind,
        &quick_train(),
        TrainMode::Full,
    );
    let ev_blind = eval_delay(&blind, &blind_head, &test_blind, 32);

    assert!(
        ev_blind.mse_norm > ev_full.mse_norm,
        "delay-blind model must be worse: {} vs {}",
        ev_blind.mse_norm,
        ev_full.mse_norm
    );
}

#[test]
fn all_three_aggregation_variants_train() {
    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(103))];
    let data = TraceData::from_traces(&traces);
    for agg in [
        Aggregation::MultiScale { block: 1 },
        Aggregation::Fixed { block: 1 },
        Aggregation::None,
    ] {
        let cfg = NttConfig {
            aggregation: agg,
            ..model_cfg()
        };
        let (train, test) = DelayDataset::build(
            Arc::clone(&data),
            DatasetConfig {
                seq_len: cfg.seq_len(),
                ..ds_cfg()
            },
            None,
        );
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 7);
        let rep = train_delay(&model, &head, &train, &quick_train(), TrainMode::Full);
        assert!(rep.final_loss().is_finite(), "agg {agg:?} diverged");
        let ev = eval_delay(&model, &head, &test, 32);
        assert!(ev.mse_norm.is_finite(), "agg {agg:?} eval broken");
    }
}

#[test]
fn experiment_covers_all_three_tasks_end_to_end() {
    // One pipeline object, three task heads: delay (pre-training),
    // MCT (new task), drop-count (telemetry) — all through the same
    // generic engine, sharing one normalizer.
    use ntt::core::{Experiment, FinetuneOpts};

    let traces = run_many_parallel(Scenario::Case1, &ScenarioConfig::tiny(105), 2, 0);
    let data = TraceData::from_traces(&traces);
    let exp = Experiment::new(model_cfg())
        .stride(8)
        .with_train(quick_train());
    let pre = exp.pretrain_on(Arc::clone(&data), "e2e case1 x2".into(), None);
    assert!(pre.eval.unwrap().mse_norm.is_finite());

    let mct = pre.finetune_mct_on(Arc::clone(&data), &FinetuneOpts::decoder_only());
    assert_eq!(mct.task, "mct");
    assert!(mct.eval.mse_norm.is_finite());
    assert_eq!(
        mct.baselines.len(),
        2,
        "MCT ships with both naive baselines"
    );

    // Drop-count fine-tuning must leave the shared trunk untouched
    // (decoder-only on a weight clone).
    let trunk_before: Vec<_> = pre.model.params().iter().map(|p| p.value()).collect();
    let spec = ntt::fleet::SweepSpec::single(Scenario::Case1, ScenarioConfig::tiny(106), 1);
    let drop = pre.finetune_drop(&spec, &FinetuneOpts::decoder_only());
    assert_eq!(drop.task, "drop");
    assert_eq!(drop.head.kind(), "drop");
    assert!(drop.eval.mse_norm.is_finite());
    for (p, b) in pre.model.params().iter().zip(trunk_before) {
        assert_eq!(p.value(), b, "shared trunk moved: {}", p.name());
    }
}

#[test]
fn case2_receiver_feature_matters() {
    // On the larger topology, receivers sit at different depths; the
    // receiver-ID feature must carry measurable signal (the paper's
    // "no addressing" in-text result).
    let traces = run_many_parallel(Scenario::Case2, &ScenarioConfig::tiny(104), 2, 0);
    let data = TraceData::from_traces(&traces);
    let (train, _) = DelayDataset::build(Arc::clone(&data), ds_cfg(), None);
    // Raw windows contain at least two distinct receiver groups.
    let mut groups = std::collections::HashSet::new();
    for i in 0..train.len().min(200) {
        for p in train.window_packets(i) {
            groups.insert(p.receiver as u32);
        }
    }
    assert!(
        groups.len() >= 2,
        "case 2 must mix receivers, saw {groups:?}"
    );
}
