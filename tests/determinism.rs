//! Reproducibility guarantees: everything in this repository is a pure
//! function of its seeds.

use ntt::core::{
    train_delay, Aggregation, DelayHead, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

#[test]
fn simulation_is_bit_reproducible() {
    let a = run(Scenario::Case1, &ScenarioConfig::tiny(9));
    let b = run(Scenario::Case1, &ScenarioConfig::tiny(9));
    assert_eq!(a.packets.len(), b.packets.len());
    assert_eq!(a.events, b.events);
    for (x, y) in a.packets.iter().zip(b.packets.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.messages.iter().zip(b.messages.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let a = run(Scenario::Pretrain, &ScenarioConfig::tiny(1));
    let b = run(Scenario::Pretrain, &ScenarioConfig::tiny(2));
    assert_ne!(
        (a.packets.len(), a.events),
        (b.packets.len(), b.events),
        "distinct seeds should differ"
    );
}

#[test]
fn fleet_grid_is_thread_count_invariant() {
    use ntt::fleet::{run_fleet_traces, FleetConfig, SweepSpec};
    use ntt::sim::SimTime;
    let mut base = ScenarioConfig::tiny(17);
    base.duration = SimTime::from_millis(600);
    let spec = SweepSpec::new(base)
        .scenarios(vec![Scenario::Pretrain, Scenario::Case2])
        .runs_per_cell(2);
    let (a, _) = run_fleet_traces(&spec, &FleetConfig::with_threads(1));
    let (b, _) = run_fleet_traces(&spec, &FleetConfig::with_threads(3));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.packets, y.packets);
        assert_eq!(x.messages, y.messages);
    }
}

#[test]
fn training_is_reproducible_end_to_end() {
    let run_once = || {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(3))];
        let (train, _) = DelayDataset::build(
            TraceData::from_traces(&traces),
            DatasetConfig {
                seq_len: 64,
                stride: 16,
                test_fraction: 0.2,
            },
            None,
        );
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 11,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 11);
        let report = train_delay(
            &model,
            &head,
            &train,
            &TrainConfig {
                epochs: 1,
                batch_size: 16,
                max_steps_per_epoch: Some(10),
                ..TrainConfig::default()
            },
            TrainMode::Full,
        );
        report.epoch_losses
    };
    assert_eq!(
        run_once(),
        run_once(),
        "identical seeds must give identical losses"
    );
}

#[test]
fn model_init_is_seed_deterministic() {
    use ntt::nn::Module;
    let cfg = NttConfig {
        aggregation: Aggregation::None,
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 21,
        ..NttConfig::default()
    };
    let a = Ntt::new(cfg);
    let b = Ntt::new(cfg);
    for (pa, pb) in a.params().iter().zip(b.params().iter()) {
        assert_eq!(pa.value(), pb.value(), "param {}", pa.name());
    }
    let c = Ntt::new(NttConfig { seed: 22, ..cfg });
    assert!(
        a.params()
            .iter()
            .zip(c.params().iter())
            .any(|(x, y)| x.value() != y.value()),
        "different seeds must differ"
    );
}

#[test]
fn training_is_thread_count_invariant() {
    // The data-parallel trainer's contract, mirroring
    // `fleet_determinism`: 1 worker vs 4 workers must produce
    // bit-identical epoch losses, grad-norm traces, and final
    // parameter bytes. Dropout is on, so the per-(step, shard) tape
    // seeding is exercised too.
    use ntt::nn::Module;
    let run_with = |threads: usize| {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(5))];
        let (train, _) = DelayDataset::build(
            TraceData::from_traces(&traces),
            DatasetConfig {
                seq_len: 64,
                stride: 8,
                test_fraction: 0.2,
            },
            None,
        );
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            dropout: 0.1,
            seed: 13,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 13);
        let report = train_delay(
            &model,
            &head,
            &train,
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                max_steps_per_epoch: Some(6),
                par: ParStrategy::with_threads(threads),
                ..TrainConfig::default()
            },
            TrainMode::Full,
        );
        let param_bits: Vec<Vec<u32>> = model
            .params()
            .iter()
            .chain(head.params().iter())
            .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (report.epoch_losses, report.grad_norms, param_bits)
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.0, parallel.0, "epoch losses diverged");
    assert_eq!(serial.1, parallel.1, "grad-norm traces diverged");
    assert_eq!(serial.2, parallel.2, "final parameter bytes diverged");
}
