//! Reproducibility guarantees: everything in this repository is a pure
//! function of its seeds.

use ntt::core::{
    train_delay, Aggregation, DelayHead, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

#[test]
fn experiment_pipeline_reproduces_manual_workflow_bit_exactly() {
    // The API redesign is behavior-preserving: a seeded pretrain →
    // share → fine-tune run through `Experiment` must produce the SAME
    // bits — epoch losses, gradient norms, final parameters, eval MSE —
    // as the hand-wired free-function workflow it replaced.
    use ntt::core::{eval_delay, Experiment, FinetuneOpts};
    use ntt::fleet::{run_many_parallel, SweepSpec};
    use ntt::nn::Module;
    use ntt::sim::SimTime;

    let model_cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        dropout: 0.1, // exercise the stochastic path too
        seed: 41,
        ..NttConfig::default()
    };
    let ds_cfg = DatasetConfig {
        seq_len: 64,
        stride: 8,
        test_fraction: 0.2,
    };
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 2e-3,
        max_steps_per_epoch: Some(6),
        ..TrainConfig::default()
    };
    let mut pre_scen = ScenarioConfig::tiny(71);
    pre_scen.duration = SimTime::from_millis(1500);
    let mut ft_scen = ScenarioConfig::tiny(72);
    ft_scen.duration = SimTime::from_millis(1500);

    // ---- Manual path: the pre-redesign boilerplate, spelled out ----
    let traces = run_many_parallel(Scenario::Pretrain, &pre_scen, 2, 0);
    let (m_train, m_test) = DelayDataset::build(TraceData::from_traces(&traces), ds_cfg, None);
    let model = Ntt::new(model_cfg);
    let head = DelayHead::new(model_cfg.d_model, model_cfg.seed);
    let manual_pre = train_delay(&model, &head, &m_train, &train_cfg, TrainMode::Full);
    let manual_pre_eval = eval_delay(&model, &head, &m_test, 64);

    let ft_traces = run_many_parallel(Scenario::Case1, &ft_scen, 2, 0);
    let (ft_all, ft_test) = DelayDataset::build(
        TraceData::from_traces(&ft_traces),
        ds_cfg,
        Some(m_train.norm.clone()),
    );
    let ft_small = ft_all.subsample(0.5, 0);
    let manual_ft = train_delay(&model, &head, &ft_small, &train_cfg, TrainMode::DecoderOnly);
    let manual_ft_eval = eval_delay(&model, &head, &ft_test, 64);

    // ---- Pipeline path: the same seeds through Experiment ----
    let exp = Experiment::new(model_cfg).stride(8).with_train(train_cfg);
    let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, pre_scen, 2));
    let pre_report = pre.report.as_ref().unwrap();
    assert_eq!(
        pre_report.epoch_losses, manual_pre.epoch_losses,
        "pre-training losses diverged from the manual workflow"
    );
    assert_eq!(pre_report.grad_norms, manual_pre.grad_norms);
    assert_eq!(pre.eval.unwrap().mse_norm, manual_pre_eval.mse_norm);

    let ft = pre.finetune(
        &SweepSpec::single(Scenario::Case1, ft_scen, 2),
        &FinetuneOpts::decoder_only().fraction(0.5).seed(0),
    );
    assert_eq!(
        ft.report.epoch_losses, manual_ft.epoch_losses,
        "fine-tuning losses diverged from the manual workflow"
    );
    assert_eq!(ft.report.grad_norms, manual_ft.grad_norms);
    assert_eq!(ft.eval.mse_norm, manual_ft_eval.mse_norm);

    // Final parameters byte-for-byte: trunk and head.
    for (a, b) in model
        .params()
        .iter()
        .chain(head.params().iter())
        .zip(ft.model.params().iter().chain(ft.head.params().iter()))
    {
        let (av, bv) = (a.value(), b.value());
        assert_eq!(av.shape(), bv.shape());
        for (x, y) in av.data().iter().zip(bv.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "param {} diverged", a.name());
        }
    }
}

#[test]
fn experiment_checkpoint_roundtrip_preserves_every_bit() {
    // Sharing through NTTCKPT2 must be invisible: the loaded model
    // fine-tunes to the same bits as the in-memory one.
    use ntt::core::{Experiment, FinetuneOpts, Pretrained};
    use ntt::fleet::SweepSpec;
    use ntt::sim::SimTime;

    let mut scen = ScenarioConfig::tiny(81);
    scen.duration = SimTime::from_millis(1200);
    let mut ft_scen = ScenarioConfig::tiny(82);
    ft_scen.duration = SimTime::from_millis(1200);

    let exp = Experiment::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 51,
        ..NttConfig::default()
    })
    .stride(8)
    .with_train(TrainConfig {
        epochs: 1,
        batch_size: 16,
        max_steps_per_epoch: Some(5),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, scen, 1));
    let path = std::env::temp_dir().join(format!("ntt_det_ckpt_{}.ckpt", std::process::id()));
    pre.save(&path).unwrap();
    let mut shared = Pretrained::load(&path).unwrap();
    // Model, heads, normalizer, and window geometry travel in the file;
    // the training-loop parameters are the fine-tuning site's own
    // choice — make the same choice on both sides.
    shared.exp.train = pre.exp.train;

    let spec = SweepSpec::single(Scenario::Case1, ft_scen, 1);
    let opts = FinetuneOpts::decoder_only();
    let direct = pre.finetune(&spec, &opts);
    let via_file = shared.finetune(&spec, &opts);
    assert_eq!(direct.report.epoch_losses, via_file.report.epoch_losses);
    assert_eq!(direct.eval.mse_norm, via_file.eval.mse_norm);
    assert_eq!(
        direct.zero_shot.unwrap().mse_norm,
        via_file.zero_shot.unwrap().mse_norm
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn simulation_is_bit_reproducible() {
    let a = run(Scenario::Case1, &ScenarioConfig::tiny(9));
    let b = run(Scenario::Case1, &ScenarioConfig::tiny(9));
    assert_eq!(a.packets.len(), b.packets.len());
    assert_eq!(a.events, b.events);
    for (x, y) in a.packets.iter().zip(b.packets.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.messages.iter().zip(b.messages.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let a = run(Scenario::Pretrain, &ScenarioConfig::tiny(1));
    let b = run(Scenario::Pretrain, &ScenarioConfig::tiny(2));
    assert_ne!(
        (a.packets.len(), a.events),
        (b.packets.len(), b.events),
        "distinct seeds should differ"
    );
}

#[test]
fn fleet_grid_is_thread_count_invariant() {
    use ntt::fleet::{run_fleet_traces, FleetConfig, SweepSpec};
    use ntt::sim::SimTime;
    let mut base = ScenarioConfig::tiny(17);
    base.duration = SimTime::from_millis(600);
    let spec = SweepSpec::new(base)
        .scenarios(vec![Scenario::Pretrain, Scenario::Case2])
        .runs_per_cell(2);
    let (a, _) = run_fleet_traces(&spec, &FleetConfig::with_threads(1));
    let (b, _) = run_fleet_traces(&spec, &FleetConfig::with_threads(3));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.packets, y.packets);
        assert_eq!(x.messages, y.messages);
    }
}

#[test]
fn training_is_reproducible_end_to_end() {
    let run_once = || {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(3))];
        let (train, _) = DelayDataset::build(
            TraceData::from_traces(&traces),
            DatasetConfig {
                seq_len: 64,
                stride: 16,
                test_fraction: 0.2,
            },
            None,
        );
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 11,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 11);
        let report = train_delay(
            &model,
            &head,
            &train,
            &TrainConfig {
                epochs: 1,
                batch_size: 16,
                max_steps_per_epoch: Some(10),
                ..TrainConfig::default()
            },
            TrainMode::Full,
        );
        report.epoch_losses
    };
    assert_eq!(
        run_once(),
        run_once(),
        "identical seeds must give identical losses"
    );
}

#[test]
fn model_init_is_seed_deterministic() {
    use ntt::nn::Module;
    let cfg = NttConfig {
        aggregation: Aggregation::None,
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 21,
        ..NttConfig::default()
    };
    let a = Ntt::new(cfg);
    let b = Ntt::new(cfg);
    for (pa, pb) in a.params().iter().zip(b.params().iter()) {
        assert_eq!(pa.value(), pb.value(), "param {}", pa.name());
    }
    let c = Ntt::new(NttConfig { seed: 22, ..cfg });
    assert!(
        a.params()
            .iter()
            .zip(c.params().iter())
            .any(|(x, y)| x.value() != y.value()),
        "different seeds must differ"
    );
}

#[test]
fn training_is_thread_count_invariant() {
    // The data-parallel trainer's contract, mirroring
    // `fleet_determinism`: 1 worker vs 4 workers must produce
    // bit-identical epoch losses, grad-norm traces, and final
    // parameter bytes. Dropout is on, so the per-(step, shard) tape
    // seeding is exercised too.
    use ntt::nn::Module;
    let run_with = |threads: usize| {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(5))];
        let (train, _) = DelayDataset::build(
            TraceData::from_traces(&traces),
            DatasetConfig {
                seq_len: 64,
                stride: 8,
                test_fraction: 0.2,
            },
            None,
        );
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            dropout: 0.1,
            seed: 13,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 13);
        let report = train_delay(
            &model,
            &head,
            &train,
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                max_steps_per_epoch: Some(6),
                par: ParStrategy::with_threads(threads),
                ..TrainConfig::default()
            },
            TrainMode::Full,
        );
        let param_bits: Vec<Vec<u32>> = model
            .params()
            .iter()
            .chain(head.params().iter())
            .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (report.epoch_losses, report.grad_norms, param_bits)
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.0, parallel.0, "epoch losses diverged");
    assert_eq!(serial.1, parallel.1, "grad-norm traces diverged");
    assert_eq!(serial.2, parallel.2, "final parameter bytes diverged");
}
