//! The Fig. 1 sharing story: a pre-trained model survives a checkpoint
//! round-trip bit-for-bit and behaves identically afterwards — the
//! prerequisite for "share pre-trained models instead of data".

use ntt::core::{
    checkpoint, eval_delay, train_delay, Aggregation, DelayHead, Ntt, NttConfig, TrainConfig,
    TrainMode,
};
use ntt::data::{DatasetConfig, DelayDataset, TraceData};
use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};

fn cfg() -> NttConfig {
    NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 },
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 31,
        ..NttConfig::default()
    }
}

#[test]
fn shared_checkpoint_reproduces_evaluation_exactly() {
    let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(55))];
    let (train, test) = DelayDataset::build(
        TraceData::from_traces(&traces),
        DatasetConfig {
            seq_len: 64,
            stride: 8,
            test_fraction: 0.2,
        },
        None,
    );
    let model = Ntt::new(cfg());
    let head = DelayHead::new(16, 31);
    train_delay(
        &model,
        &head,
        &train,
        &TrainConfig {
            epochs: 1,
            batch_size: 16,
            max_steps_per_epoch: Some(10),
            ..TrainConfig::default()
        },
        TrainMode::Full,
    );
    let before = eval_delay(&model, &head, &test, 32);

    let path = std::env::temp_dir().join(format!("ntt_share_{}.ckpt", std::process::id()));
    checkpoint::save(&path, &[&model, &head]).unwrap();

    // "Download" into a freshly initialized model at another site.
    let downloaded = Ntt::new(NttConfig { seed: 99, ..cfg() });
    let downloaded_head = DelayHead::new(16, 99);
    checkpoint::load(&path, &[&downloaded, &downloaded_head]).unwrap();
    let after = eval_delay(&downloaded, &downloaded_head, &test, 32);
    assert_eq!(before.mse_norm, after.mse_norm, "bit-exact behaviour");
    std::fs::remove_file(path).ok();
}

#[test]
fn self_describing_checkpoint_shares_without_any_receiver_setup() {
    // The v2 sharing story: the receiver has the FILE and nothing else —
    // no NttConfig, no pre-built heads, no normalizer — and still gets a
    // bit-identical evaluation.
    use ntt::core::{Checkpoint, Experiment, TrainConfig};
    use ntt::data::TraceData;

    let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(56));
    let data = TraceData::from_traces(&[trace]);
    let exp = Experiment::new(cfg()).stride(8).with_train(TrainConfig {
        epochs: 1,
        batch_size: 16,
        max_steps_per_epoch: Some(10),
        ..TrainConfig::default()
    });
    let pre = exp.pretrain_on(data.clone(), "sharing test".into(), None);
    let before = pre.eval_delay_on(data.clone());

    let path = std::env::temp_dir().join(format!("ntt_share_v2_{}.ckpt", std::process::id()));
    pre.save(&path).unwrap();

    // Receiver side: file → runnable (Ntt, heads, norm, provenance).
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.model.cfg.d_model, cfg().d_model);
    assert_eq!(loaded.heads.len(), 1);
    assert!(loaded.norm.is_some(), "normalizer travels with the model");
    assert!(loaded.provenance.iter().any(|(k, _)| k == "scenario_grid"));
    let shared = ntt::core::Pretrained::load(&path).unwrap();
    let after = shared.eval_delay_on(data);
    assert_eq!(before.mse_norm, after.mse_norm, "bit-exact behaviour");
    std::fs::remove_file(path).ok();
}

#[test]
fn checkpoint_rejects_architecture_mismatch() {
    let model = Ntt::new(cfg());
    let path = std::env::temp_dir().join(format!("ntt_arch_{}.ckpt", std::process::id()));
    checkpoint::save(&path, &[&model]).unwrap();
    // A different width cannot absorb the checkpoint.
    let wrong = Ntt::new(NttConfig {
        d_model: 32,
        d_ff: 64,
        ..cfg()
    });
    assert!(checkpoint::load(&path, &[&wrong]).is_err());
    std::fs::remove_file(path).ok();
}
