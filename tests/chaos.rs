//! Chaos-plane integration: seeded fault schedules drive the stack's
//! recovery paths — fleet shard retry, checkpoint last-good retention,
//! batcher respawn/shedding — and every run replays from its seed.
//!
//! Chaos state is process-global, so every test here installs its plan
//! through `chaos::scoped`, which serializes chaos users within this
//! binary and uninstalls on drop. These tests live in their own
//! integration binary (never alongside chaos-free tests) so an
//! installed plan can't leak faults into unrelated suites.

use ntt::chaos::{self, ChaosPlan, FaultKind, Rule};
use ntt::core::{Aggregation, Checkpoint, DelayHead, Ntt, NttConfig};
use ntt::data::{Normalizer, NUM_FEATURES};
use ntt::fleet::{run_fleet_traces, FleetConfig, SweepSpec};
use ntt::nn::Head;
use ntt::serve::{BatchConfig, Batcher, InferenceEngine, ModelRegistry, ServeError, Ticket};
use ntt::sim::scenarios::{Scenario, ScenarioConfig};
use ntt::sim::SimTime;
use ntt::tensor::Tensor;
use std::sync::Arc;

fn tiny_model(seed: u64) -> Ntt {
    Ntt::new(NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed,
        ..NttConfig::default()
    })
}

fn tiny_engine(seed: u64) -> Arc<InferenceEngine> {
    Arc::new(InferenceEngine::from_parts(
        tiny_model(seed),
        vec![Box::new(DelayHead::new(16, 1)) as Box<dyn Head>],
        Normalizer::identity(NUM_FEATURES),
    ))
}

#[test]
fn fleet_shard_retries_replay_and_produce_byte_identical_traces() {
    // A seeded `fleet.shard.attempt` failure plan makes shard attempts
    // fail on a schedule keyed by (shard index, attempt) — thread-count
    // invariant by construction. Retried shards must be byte-identical
    // to the no-chaos baseline (the simulator is a pure function of the
    // shard config), and the fault trace must replay exactly at any
    // worker count.
    let mut base = ScenarioConfig::tiny(17);
    base.duration = SimTime::from_millis(500);
    base.drain = SimTime::from_millis(200);
    let spec = SweepSpec::new(base)
        .scenarios(vec![Scenario::Pretrain, Scenario::Case1])
        .runs_per_cell(3);

    // Baseline: no chaos installed.
    let (clean, _) = run_fleet_traces(&spec, &FleetConfig::with_threads(2));

    let chaos_run = |threads: usize| {
        // Seed 1 chosen (the schedule is a pure function of the seed,
        // so this is checkable offline): 4 attempts fail across the 6
        // shards and every shard recovers within the retry budget.
        let guard = chaos::scoped(
            ChaosPlan::new(1).rule(Rule::new("fleet.shard.attempt", FaultKind::Fail).rate(1, 2)),
        );
        let cfg = FleetConfig {
            threads,
            max_retries: 8, // ample budget: 1/2^9 per-shard wipeout odds
        };
        let (traces, report) = run_fleet_traces(&spec, &cfg);
        let injected = chaos::report().injected_total();
        (traces, report, injected, guard.finish())
    };
    let (t1, r1, inj1, trace1) = chaos_run(1);
    let (t4, r4, inj4, trace4) = chaos_run(4);
    assert_eq!(r1.shards.len(), 6);
    assert_eq!(r4.shards.len(), 6);

    // The schedule actually fired, identically, at both worker counts.
    assert!(inj1 > 0, "a 1-in-2 failure rate over 6 shards must fire");
    assert_eq!(inj1, inj4, "injection count is seed-pure");
    assert!(!trace1.is_empty());
    assert_eq!(trace1, trace4, "fault trace replays across thread counts");

    // And the data plane never noticed: retried shards are identical to
    // the clean run, shard for shard, byte for byte.
    for ((a, b), c) in t1.iter().zip(&t4).zip(&clean) {
        assert_eq!(a.packets, c.packets, "retry changed a shard's packets");
        assert_eq!(a.messages, c.messages);
        assert_eq!(b.packets, c.packets);
        assert_eq!(b.messages, c.messages);
    }
}

#[test]
fn checkpoint_read_chaos_is_caught_and_the_registry_keeps_last_good() {
    // Corruption and truncation injected at the `core.checkpoint.read`
    // site must be caught by the checkpoint's own validation (checksum,
    // length framing) and surface as typed io::Errors — and a registry
    // hot-swap that hits one keeps serving the last good engine.
    let model = tiny_model(23);
    let head = DelayHead::new(16, 1);
    let path = std::env::temp_dir().join(format!("ntt_chaos_ckpt_{}.ckpt", std::process::id()));
    Checkpoint::capture(
        &model,
        &[&head],
        Some(Normalizer::identity(NUM_FEATURES)),
        vec![],
    )
    .expect("capture")
    .save(&path)
    .expect("save");

    let reg = ModelRegistry::new();
    let live = reg.load("m", &path).expect("clean load");

    for kind in [FaultKind::Corrupt, FaultKind::Truncate] {
        let guard = chaos::scoped(ChaosPlan::new(99).rule(Rule::new("core.checkpoint.read", kind)));
        let err = match reg.load("m", &path) {
            Err(e) => e,
            Ok(_) => panic!("{} damage must not load", kind.label()),
        };
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "{}: damage is a typed parse failure, not a crash",
            kind.label()
        );
        let still = reg.get("m").expect("name stays registered");
        assert!(
            Arc::ptr_eq(&still, &live),
            "{}: failed hot-swap must keep the last good engine",
            kind.label()
        );
        let trace = guard.finish();
        assert_eq!(trace.len(), 1, "exactly one injection");
        assert_eq!(trace[0].site, "core.checkpoint.read");
        assert_eq!(trace[0].kind, kind.label());
    }

    // Chaos gone: the same file loads cleanly again.
    let swapped = reg.load("m", &path).expect("recovery load");
    assert!(!Arc::ptr_eq(&swapped, &live));
    std::fs::remove_file(path).ok();
}

/// Drive `n` requests through a batcher under a seeded panic/stall
/// plan. Returns `(ok, died, restarts, panic_events, full_trace)` plus
/// the per-request outcomes for output verification.
fn soak(
    engine: &Arc<InferenceEngine>,
    windows: &[Vec<f32>],
    workers: usize,
    seed: u64,
) -> (Vec<Option<f32>>, u64, Vec<ntt::chaos::ChaosEvent>) {
    let guard = chaos::scoped(
        ChaosPlan::new(seed)
            // ~1 in 16 batch claims crashes the worker mid-batch.
            .rule(Rule::new("serve.worker.panic", FaultKind::Panic).rate(1, 16))
            // ~1 in 8 claims stalls 1ms before serving (slow consumer).
            .rule(Rule::new("serve.worker.stall", FaultKind::Delay { millis: 1 }).rate(1, 8))
            // ~1 in 32 forward passes runs slow (contended model).
            .rule(Rule::new("serve.predict.delay", FaultKind::Delay { millis: 1 }).rate(1, 32)),
    );
    let batcher = Batcher::new(
        Arc::clone(engine),
        BatchConfig {
            // One request per claim: every request hits the panic/stall
            // sites exactly once, so the hit count — and therefore the
            // fired schedule — is identical at every worker count.
            max_batch: 1,
            workers,
            head: "delay",
            queue_cap: 0, // unbounded: this soak measures crash recovery
            max_restarts: 1_000,
            deadline: None,
            gather: None,
        },
    );
    let tickets: Vec<Ticket> = windows
        .iter()
        .map(|w| batcher.submit(w.clone(), None).expect("admission"))
        .collect();
    let outcomes: Vec<Option<f32>> = tickets
        .into_iter()
        .map(|t| match t.wait() {
            Ok(v) => Some(v),
            Err(ServeError::WorkerDied) => None,
            Err(e) => panic!("soak saw an unexpected error: {e}"),
        })
        .collect();
    // A dying worker fails its ticket (channel drop during unwind)
    // *before* its supervisor bumps the restart counter, so give the
    // final respawn a moment to land before reading stats.
    let died = outcomes.iter().filter(|o| o.is_none()).count();
    let t0 = std::time::Instant::now();
    while (batcher.stats().restarts as usize) < died && t0.elapsed().as_secs() < 10 {
        std::thread::yield_now();
    }
    let stats = batcher.stats();
    assert!(batcher.is_healthy(), "budget was ample; no terminal poison");
    let served = outcomes.iter().flatten().count();
    assert_eq!(stats.windows as usize, served, "stats track the survivors");
    drop(batcher);
    (outcomes, stats.restarts, guard.finish())
}

#[test]
fn serve_soak_recovers_from_periodic_worker_panics_with_full_accounting() {
    // The headline robustness claim: >=500 concurrent requests against
    // a pool whose workers are crashed and stalled on a seeded
    // schedule. No caller hangs (the test completing is the proof),
    // every request resolves exactly once (completed + failed ==
    // submitted), workers respawn (restart counter > 0), survivors get
    // bit-exact answers, and the fault trace + survivor outputs replay
    // identically at 1 and 4 workers.
    const N: usize = 600;
    let engine = tiny_engine(31);
    let row = engine.seq_len() * NUM_FEATURES;
    let all = Tensor::randn(&[N, engine.seq_len(), NUM_FEATURES], 7);
    let windows: Vec<Vec<f32>> = (0..N)
        .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
        .collect();
    // Serial reference for survivor verification.
    let expect: Vec<f32> = windows
        .iter()
        .map(|w| {
            let x = Tensor::from_vec(w.clone(), &[1, engine.seq_len(), NUM_FEATURES]);
            engine.predict("delay", &x, None).item()
        })
        .collect();

    let (out1, restarts1, trace1) = soak(&engine, &windows, 1, 2026);
    let (out4, restarts4, trace4) = soak(&engine, &windows, 4, 2026);

    for (outcomes, restarts, trace) in [(&out1, restarts1, &trace1), (&out4, restarts4, &trace4)] {
        let served = outcomes.iter().flatten().count();
        let died = outcomes.len() - served;
        // Full accounting: every submission resolved exactly once.
        assert_eq!(served + died, N);
        assert!(died > 0, "a 1/16 panic rate over {N} claims must fire");
        assert!(served > N / 2, "most requests survive");
        // Each injected panic killed one worker and one respawn healed
        // it; the restart counter is the panic count exactly.
        let panics = trace.iter().filter(|e| e.kind == "panic").count();
        assert_eq!(restarts as usize, panics, "one respawn per panic");
        assert_eq!(died, panics, "max_batch=1: one ticket dies per panic");
        // Survivors got the right answer, to the bit.
        for (i, v) in outcomes.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(
                    v.to_bits(),
                    expect[i].to_bits(),
                    "survivor {i} got a wrong answer under chaos"
                );
            }
        }
    }

    // Same seed, same schedule: the sorted fault trace is identical at
    // 1 and 4 workers (hit counts are fixed at one per request), and
    // with it the injected-fault totals.
    assert!(!trace1.is_empty());
    assert_eq!(trace1, trace4, "fault trace replays across worker counts");
    assert_eq!(restarts1, restarts4);
}

#[test]
fn soak_sheds_load_with_typed_errors_under_a_bounded_queue() {
    // Overload half of the soak story: a stalled pool with a bounded
    // queue sheds with `Overloaded` instead of queueing unboundedly,
    // and everything it *did* accept still resolves.
    let engine = tiny_engine(37);
    let row = engine.seq_len() * NUM_FEATURES;
    let guard = chaos::scoped(ChaosPlan::new(5).rule(
        // Every claim stalls: the queue can only back up.
        Rule::new("serve.worker.stall", FaultKind::Delay { millis: 5 }).rate(1, 1),
    ));
    let batcher = Batcher::new(
        Arc::clone(&engine),
        BatchConfig {
            max_batch: 1,
            workers: 1,
            head: "delay",
            queue_cap: 8,
            max_restarts: 0,
            deadline: None,
            gather: None,
        },
    );
    let mut accepted: Vec<Ticket> = Vec::new();
    let mut shed = 0usize;
    for i in 0..200usize {
        match batcher.submit(windows_row(&engine, row, i), None) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { cap }) => {
                assert_eq!(cap, 8);
                shed += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(shed > 0, "200 submits against an 8-deep stalled queue shed");
    assert_eq!(batcher.stats().shed as usize, shed);
    // Every accepted ticket still resolves (no worker faults here).
    for t in accepted {
        assert!(t.wait().expect("accepted requests are served").is_finite());
    }
    drop(batcher);
    drop(guard);
}

fn windows_row(engine: &InferenceEngine, row: usize, i: usize) -> Vec<f32> {
    let _ = engine;
    vec![(i % 7) as f32 * 0.125; row]
}
