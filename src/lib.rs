//! # ntt — Network Traffic Transformer
//!
//! Facade crate for the Rust reproduction of *"A New Hope for Network
//! Model Generalization"* (HotNets '22): re-exports every workspace
//! crate under one roof so examples, tests, and downstream users need a
//! single dependency.
//!
//! * [`tensor`] — dense f32 tensors + tape autodiff (PyTorch substitute)
//! * [`nn`] — layers, attention, transformer encoder, optimizers
//! * [`sim`] — deterministic packet-level network simulator (ns-3 substitute)
//! * [`data`] — traces → training windows (features, splits, normalization)
//! * [`core`] — the NTT model, the task-generic trainer, baselines,
//!   self-describing checkpoints (`NTTCKPT2`), federated averaging, and
//!   the `Experiment` pipeline (sweep → pretrain → share → fine-tune in
//!   a few calls)
//! * [`fleet`] — parallel scenario-fleet engine: declarative sweep
//!   grids over (scenario × topology × load × seed), a work-stealing
//!   executor, and streaming trace ingestion
//! * [`serve`] — batched model serving: checkpoint registry, grad-free
//!   inference engine, streaming sessions, micro-batching request
//!   coalescing, and a live sim → features → predictions loop
//! * [`net`] — the wire-protocol serving tier: `NTTWIRE1` length-
//!   prefixed binary framing over TCP/unix sockets, multi-model
//!   routing through the registry into per-model batcher pools, stable
//!   protocol error codes for every serving failure, and SLO-adaptive
//!   max-batch control holding a p99 target
//! * [`obs`] — zero-overhead observability: process-global counters,
//!   gauges, log-scale latency histograms, RAII span timers, and
//!   JSON/Prometheus snapshot export (`NTT_OBS=off` kill switch)
//! * [`chaos`] — deterministic fault injection: seed-driven schedules
//!   of worker panics, injected latency, read corruption, and queue
//!   stalls (`NTT_CHAOS` spec, off by default), driving the serving
//!   stack's self-healing paths with replayable failures
//!
//! ```
//! use ntt::sim::scenarios::{run, Scenario, ScenarioConfig};
//! use ntt::data::{DatasetConfig, DelayDataset, TraceData};
//!
//! // Simulate the paper's Fig. 4 setup (miniaturized) and build the
//! // pre-training task in four lines.
//! let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(0));
//! let data = TraceData::from_traces(&[trace]);
//! let cfg = DatasetConfig { seq_len: 64, stride: 16, test_fraction: 0.2 };
//! let (train, _test) = DelayDataset::build(data, cfg, None);
//! assert!(train.len() > 0);
//! ```

pub use ntt_chaos as chaos;
pub use ntt_core as core;
pub use ntt_data as data;
pub use ntt_fleet as fleet;
pub use ntt_net as net;
pub use ntt_nn as nn;
pub use ntt_obs as obs;
pub use ntt_serve as serve;
pub use ntt_sim as sim;
pub use ntt_tensor as tensor;
