//! The closed loop: simulator → featurization → serving engine.
//!
//! [`stream_scenario`] runs a deterministic simulator scenario and
//! replays its receiver-side packet stream through an
//! [`InferenceSession`], exactly as a live deployment would consume a
//! packet tap: no datasets, no batching of the future into the past —
//! each prediction sees only the packets that had arrived by then. The
//! report pairs every prediction with its ground truth and with the
//! last-observed-delay naive baseline, so "is the served model better
//! than trivial?" is answered in the same breath.

use crate::engine::InferenceEngine;
use crate::session::{DelayPrediction, InferenceSession, SessionConfig};
use ntt_data::RunData;
use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
use std::sync::Arc;

/// Live-replay knobs.
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Predict every `stride`-th packet once warm.
    pub stride: usize,
    /// Stop after this many predictions (None = the whole stream).
    pub max_predictions: Option<usize>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            stride: 1,
            max_predictions: None,
        }
    }
}

/// Outcome of one live replay.
pub struct LiveReport {
    /// Every prediction made, in stream order.
    pub predictions: Vec<DelayPrediction>,
    /// Packets fed to the session (including warmup).
    pub packets: usize,
    /// Mean squared error of the model, in seconds². `NaN` when no
    /// prediction was made (stream shorter than the model's window) —
    /// a zero here would read as a perfect model.
    pub mse_secs2: f64,
    /// Mean squared error of predicting the previous packet's delay
    /// (the last-observed naive baseline), in seconds². `NaN` when no
    /// prediction was made.
    pub baseline_mse_secs2: f64,
}

impl LiveReport {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} predictions over {} packets: model MSE {:.3e} s² vs last-observed {:.3e} s²",
            self.predictions.len(),
            self.packets,
            self.mse_secs2,
            self.baseline_mse_secs2
        )
    }
}

/// Replay an already-simulated run through a fresh session.
pub fn replay(engine: Arc<InferenceEngine>, run: &RunData, opts: &LiveOptions) -> LiveReport {
    let mut session = InferenceSession::new(
        engine,
        SessionConfig {
            stride: opts.stride,
        },
    );
    let mut predictions = Vec::new();
    let mut packets = 0usize;
    let mut se = 0.0f64;
    let mut base_se = 0.0f64;
    let mut prev_delay: Option<f32> = None;
    let budget = opts.max_predictions.unwrap_or(usize::MAX);
    for &pkt in &run.pkts {
        packets += 1;
        let before = prev_delay;
        prev_delay = Some(pkt.delay);
        if let Some(p) = session.push(pkt) {
            let d = (p.predicted_secs - p.actual_secs) as f64;
            se += d * d;
            // The baseline sees the same information: every delay up to
            // but excluding the packet being predicted.
            let b = (before.unwrap_or(0.0) - p.actual_secs) as f64;
            base_se += b * b;
            predictions.push(p);
            if predictions.len() >= budget {
                break;
            }
        }
    }
    let (mse_secs2, baseline_mse_secs2) = if predictions.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let n = predictions.len() as f64;
        (se / n, base_se / n)
    };
    LiveReport {
        predictions,
        packets,
        mse_secs2,
        baseline_mse_secs2,
    }
}

/// Simulate `scenario` and serve its packet stream end to end:
/// sim → [`ntt_data`] featurization → grad-free engine → predictions.
pub fn stream_scenario(
    engine: Arc<InferenceEngine>,
    scenario: Scenario,
    cfg: &ScenarioConfig,
    opts: &LiveOptions,
) -> LiveReport {
    let trace = run(scenario, cfg);
    replay(engine, &RunData::from_trace(&trace), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;

    #[test]
    fn live_loop_closes_sim_to_prediction() {
        let eng = Arc::new(tiny_engine(0.0));
        let report = stream_scenario(
            Arc::clone(&eng),
            Scenario::Pretrain,
            &ScenarioConfig::tiny(3),
            &LiveOptions {
                stride: 4,
                max_predictions: Some(25),
            },
        );
        assert_eq!(report.predictions.len(), 25);
        assert!(report.packets > eng.seq_len());
        assert!(report.mse_secs2.is_finite() && report.mse_secs2 > 0.0);
        assert!(report.baseline_mse_secs2 > 0.0);
        assert!(report.summary().contains("25 predictions"));
        // Stream order and ground truth plumbed through.
        for w in report.predictions.windows(2) {
            assert!(w[0].t_secs <= w[1].t_secs, "predictions out of order");
        }
    }

    #[test]
    fn empty_streams_report_nan_not_perfection() {
        let eng = Arc::new(tiny_engine(0.0));
        // Too few packets to ever warm the window.
        let data = RunData {
            pkts: crate::test_util::synth_packets(eng.seq_len() / 2, 5),
            anchors: vec![],
        };
        let report = replay(Arc::clone(&eng), &data, &LiveOptions::default());
        assert!(report.predictions.is_empty());
        assert!(report.mse_secs2.is_nan(), "no data must not read as MSE 0");
        assert!(report.baseline_mse_secs2.is_nan());
    }

    #[test]
    fn replay_is_deterministic() {
        let eng = Arc::new(tiny_engine(0.0));
        let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(4));
        let data = RunData::from_trace(&trace);
        let opts = LiveOptions {
            stride: 8,
            max_predictions: Some(10),
        };
        let a = replay(Arc::clone(&eng), &data, &opts);
        let b = replay(Arc::clone(&eng), &data, &opts);
        assert_eq!(a.predictions.len(), b.predictions.len());
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(x.predicted_norm.to_bits(), y.predicted_norm.to_bits());
        }
    }
}
