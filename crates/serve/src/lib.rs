//! # ntt-serve
//!
//! Batched model serving for the Network Traffic Transformer: the layer
//! an operator actually touches once a model exists. Load an `NTTCKPT2`
//! checkpoint, stream windows of packet features at it, read
//! predictions — at hardware speed, with none of training's autodiff
//! cost.
//!
//! * [`InferenceEngine`] — one loaded model (trunk + heads +
//!   normalizer) executing on grad-free inference tapes
//!   ([`ntt_tensor::Tape::inference`]): identical kernels to training,
//!   bit-identical outputs, no backward graph, arena-recycled memory.
//!   Weights live once; `Arc` clones share them across threads.
//! * [`ModelRegistry`] — named engines for multi-model processes.
//! * [`InferenceSession`] — single-stream serving: push packets, get
//!   windowed delay predictions featurized by the *same* code path the
//!   training datasets use.
//! * [`Batcher`] — micro-batching: concurrent requests coalesce (FIFO,
//!   arrival order) into one `[B, T, F]` forward pass and fan back out
//!   over per-request channels. Row-wise kernels make coalescing
//!   answer-preserving: every window's prediction is bit-identical at
//!   any batch size.
//! * [`live`] — the closed loop: simulator scenario → featurization →
//!   engine, for end-to-end serving validation.
//!
//! ```
//! use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
//! use ntt_data::{Normalizer, NUM_FEATURES};
//! use ntt_serve::{BatchConfig, Batcher, InferenceEngine, ModelRegistry};
//! use ntt_tensor::Tensor;
//! use std::sync::Arc;
//!
//! // Any trained model serves; here, a fresh tiny one.
//! let cfg = NttConfig {
//!     aggregation: Aggregation::MultiScale { block: 1 },
//!     d_model: 16, n_heads: 2, n_layers: 1, d_ff: 32,
//!     ..NttConfig::default()
//! };
//! let engine = InferenceEngine::from_parts(
//!     Ntt::new(cfg),
//!     vec![Box::new(DelayHead::new(16, 0))],
//!     Normalizer::identity(NUM_FEATURES),
//! );
//! let registry = ModelRegistry::new();
//! let engine = registry.insert("pretrain", engine);
//!
//! // Direct batched prediction...
//! let x = Tensor::randn(&[8, cfg.seq_len(), NUM_FEATURES], 1);
//! let y = engine.predict("delay", &x, None);
//! assert_eq!(y.shape(), &[8, 1]);
//!
//! // ...or micro-batched request coalescing. Client-reachable failures
//! // (bad window length, aux mismatch, dead pool) surface as typed
//! // `ServeError`s, never as server panics.
//! let batcher = Batcher::new(Arc::clone(&engine), BatchConfig::default());
//! let row = cfg.seq_len() * NUM_FEATURES;
//! let tickets: Vec<_> = (0..8)
//!     .map(|i| {
//!         batcher
//!             .submit(x.data()[i * row..(i + 1) * row].to_vec(), None)
//!             .expect("well-formed request")
//!     })
//!     .collect();
//! for (i, t) in tickets.into_iter().enumerate() {
//!     assert_eq!(t.wait().unwrap().to_bits(), y.data()[i].to_bits());
//! }
//! ```

mod batcher;
mod engine;
mod error;
pub mod live;
mod registry;
mod session;

pub use batcher::{BatchConfig, Batcher, BatcherMetrics, BatcherStats, Ticket};
pub use engine::InferenceEngine;
pub use error::ServeError;
pub use live::{LiveOptions, LiveReport};
pub use registry::ModelRegistry;
pub use session::{DelayPrediction, InferenceSession, SessionConfig};

#[cfg(test)]
pub(crate) mod test_util {
    use crate::engine::InferenceEngine;
    use ntt_core::{Aggregation, Checkpoint, DelayHead, DropHead, MctHead, Ntt, NttConfig};
    use ntt_data::{Normalizer, PacketView, NUM_FEATURES};
    use ntt_nn::Head;
    use ntt_tensor::splitmix64;
    use std::path::Path;

    pub fn tiny_cfg(dropout: f32) -> NttConfig {
        NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            dropout,
            seed: 11,
            ..NttConfig::default()
        }
    }

    /// A small engine with all three heads and identity normalization.
    pub fn tiny_engine(dropout: f32) -> InferenceEngine {
        let cfg = tiny_cfg(dropout);
        let heads: Vec<Box<dyn Head>> = vec![
            Box::new(DelayHead::new(cfg.d_model, 1)),
            Box::new(MctHead::new(cfg.d_model, 2)),
            Box::new(DropHead::new(cfg.d_model, 3)),
        ];
        InferenceEngine::from_parts(Ntt::new(cfg), heads, Normalizer::identity(NUM_FEATURES))
    }

    /// Deterministic synthetic packet stream (monotone arrival times).
    pub fn synth_packets(n: usize, seed: u64) -> Vec<PacketView> {
        let mut state = seed ^ 0x5eed_5eed;
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                let r = splitmix64(&mut state);
                t += 1e-4 + (r & 0xff) as f64 * 1e-6;
                PacketView {
                    t,
                    size: 200.0 + ((r >> 8) & 0x3ff) as f32,
                    receiver: ((r >> 20) & 0x3) as f32,
                    delay: 0.01 + ((r >> 24) & 0xffff) as f32 * 1e-7,
                    retransmit: false,
                }
            })
            .collect()
    }

    /// Write the engine's model/heads/norm as an `NTTCKPT2` file.
    pub fn save_engine_checkpoint(engine: &InferenceEngine, path: impl AsRef<Path>) {
        let heads: Vec<&dyn Head> = engine.heads().iter().map(|h| h.as_ref()).collect();
        Checkpoint::capture(
            engine.model(),
            &heads,
            Some(engine.norm().clone()),
            vec![("origin".into(), "ntt-serve test".into())],
        )
        .expect("capture checkpoint")
        .save(path)
        .expect("save checkpoint");
    }
}
