//! Micro-batching request coalescing: many concurrent single-window
//! requests, few large forward passes.
//!
//! The mTCP/event-loop lesson from the serving literature applies
//! directly to model inference: per-request fixed costs (tape setup,
//! weight staging, kernel launch overhead) dominate at batch size 1,
//! and a GEMM over 16 stacked windows costs far less than 16 GEMMs over
//! one. The [`Batcher`] owns a FIFO queue and a small worker pool; each
//! worker drains up to `max_batch` requests **from the queue front in
//! arrival order**, stacks them into one `[B, T, F]` forward pass, and
//! routes each row of the result back over the submitting request's own
//! channel.
//!
//! Coalescing never changes an answer: every kernel in the forward path
//! is row-wise, so window `i`'s prediction is bit-identical whether it
//! ran alone or inside any batch (asserted by the engine's tests and
//! the batcher proptest). Batch *composition* depends on timing; the
//! routing does not — a response always answers exactly the request
//! that asked, and a ticket's `wait` blocks until that answer exists.

use crate::engine::InferenceEngine;
use crate::error::ServeError;
use ntt_data::NUM_FEATURES;
use ntt_obs::{Histogram, HistogramSnapshot};
use ntt_tensor::{kernels, Tensor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch one forward pass coalesces.
    pub max_batch: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Head kind every request runs through (one batcher serves one
    /// task; run several batchers over one engine for several tasks).
    pub head: &'static str,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            workers: 1,
            head: "delay",
        }
    }
}

struct Request {
    window: Vec<f32>,
    aux: Option<f32>,
    tx: mpsc::Sender<f32>,
    /// Submission time for the queue-wait histogram; `None` while the
    /// observability kill switch is off (no clock read on submit).
    enqueued: Option<Instant>,
}

struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
    /// Set when a worker thread panicked. A poisoned batcher rejects
    /// new submissions and has dropped every pending request (so their
    /// tickets resolve to an error instead of blocking forever).
    poisoned: bool,
}

struct Shared {
    engine: Arc<InferenceEngine>,
    cfg: BatchConfig,
    queue: Mutex<Queue>,
    ready: Condvar,
    batches_run: AtomicU64,
    windows_run: AtomicU64,
    largest_batch: AtomicUsize,
    /// Per-batcher latency accounting (also double-recorded into the
    /// global registry as `serve.queue_wait_ns` / `serve.service_ns` /
    /// `serve.batch_size`).
    queue_wait: Histogram,
    service: Histogram,
    batch_size: Histogram,
    /// Final stats + metrics captured by the poison path. Once a worker
    /// panics the live counters stop moving, and this freeze guarantees
    /// `stats()`/`metrics()` keep exposing the last pre-panic view for
    /// post-mortems instead of whatever a half-dead pool reports.
    frozen: Mutex<Option<(BatcherStats, BatcherMetrics)>>,
}

impl Shared {
    fn live_stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.batches_run.load(Ordering::Relaxed),
            windows: self.windows_run.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
        }
    }

    fn live_metrics(&self) -> BatcherMetrics {
        BatcherMetrics {
            queue_wait_ns: self.queue_wait.snapshot(),
            service_ns: self.service.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// Handle to one in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<f32>,
}

impl Ticket {
    /// Block until the prediction for this request exists (normalized
    /// model output). Returns [`ServeError::WorkerDied`] if the batcher
    /// lost its worker mid-request — the batcher drains its queue on
    /// shutdown, so a dropped sender means a worker panic, which must
    /// surface to the caller instead of hanging or crashing the server.
    pub fn wait(self) -> Result<f32, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerDied)
    }
}

/// Aggregate batching statistics.
#[derive(Debug, Clone, Copy)]
pub struct BatcherStats {
    pub batches: u64,
    pub windows: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
}

/// Latency and batch-shape distributions for one batcher, as histogram
/// snapshots (p50/p90/p99 via [`HistogramSnapshot::quantile`]). Empty
/// while the `NTT_OBS` kill switch is off.
#[derive(Debug, Clone, Default)]
pub struct BatcherMetrics {
    /// Nanoseconds from `submit` to a worker claiming the request.
    pub queue_wait_ns: HistogramSnapshot,
    /// Nanoseconds a worker spent stacking, predicting, and routing one
    /// batch.
    pub service_ns: HistogramSnapshot,
    /// Coalesced batch sizes (windows per forward pass).
    pub batch_size: HistogramSnapshot,
}

/// Micro-batching front end over one engine + one head.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the worker pool. The engine must carry `cfg.head`.
    pub fn new(engine: Arc<InferenceEngine>, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(
            engine.head(cfg.head).is_some(),
            "engine has no {:?} head (loaded: {:?})",
            cfg.head,
            engine.head_kinds()
        );
        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
                poisoned: false,
            }),
            ready: Condvar::new(),
            batches_run: AtomicU64::new(0),
            windows_run: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
            batch_size: Histogram::new(),
            frozen: Mutex::new(None),
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Batcher { shared, workers }
    }

    /// Submit one featurized window (`seq_len * NUM_FEATURES` values,
    /// with an aux scalar when the head needs one, e.g. the MCT head's
    /// normalized log message size). Returns immediately; the returned
    /// [`Ticket`] resolves to the prediction. Malformed requests and a
    /// dead/shutting-down pool are client-reachable conditions, so they
    /// come back as [`ServeError`]s instead of panicking the server.
    pub fn submit(&self, window: Vec<f32>, aux: Option<f32>) -> Result<Ticket, ServeError> {
        let want = self.shared.engine.seq_len() * NUM_FEATURES;
        if window.len() != want {
            return Err(ServeError::WindowLength {
                got: window.len(),
                want,
            });
        }
        let needs_aux = self
            .shared
            .engine
            .head(self.shared.cfg.head)
            // PANIC-OK: Batcher::new asserts the head exists and the
            // engine's head set is immutable afterwards.
            .expect("checked at construction")
            .needs_aux();
        if needs_aux != aux.is_some() {
            return Err(ServeError::AuxMismatch {
                head: self.shared.cfg.head,
                needs_aux,
            });
        }
        let (tx, rx) = mpsc::channel();
        let enqueued = ntt_obs::enabled().then(Instant::now);
        {
            // Lock poisoning is tracked by our own `poisoned` flag (the
            // queue holds plain data, always consistent), so recover the
            // guard rather than double-panic.
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.poisoned {
                return Err(ServeError::Poisoned);
            }
            q.pending.push_back(Request {
                window,
                aux,
                tx,
                enqueued,
            });
        }
        self.shared.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// False once a worker thread has panicked: the batcher rejects
    /// further submissions (and has already failed every pending
    /// ticket) rather than accepting requests nobody will answer.
    pub fn is_healthy(&self) -> bool {
        !self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poisoned
    }

    /// Batching statistics so far. After a worker panic this returns
    /// the frozen pre-panic view, so the numbers a post-mortem reads
    /// are the final ones.
    pub fn stats(&self) -> BatcherStats {
        let frozen = self.shared.frozen.lock().unwrap_or_else(|e| e.into_inner());
        match &*frozen {
            Some((stats, _)) => *stats,
            None => self.shared.live_stats(),
        }
    }

    /// Queue-wait, service-time, and batch-size distributions for this
    /// batcher (its own histograms, not the process-global ones —
    /// several batchers never mix). Frozen at the last pre-panic view
    /// once a worker has panicked.
    pub fn metrics(&self) -> BatcherMetrics {
        let frozen = self.shared.frozen.lock().unwrap_or_else(|e| e.into_inner());
        match &*frozen {
            Some((_, metrics)) => metrics.clone(),
            None => self.shared.live_metrics(),
        }
    }
}

impl Drop for Batcher {
    /// Graceful shutdown: workers drain every pending request before
    /// exiting, so already-issued tickets still resolve.
    fn drop(&mut self) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Marks the batcher poisoned if its worker unwinds: pending requests
/// are dropped (their tickets resolve to an error immediately) and
/// `submit` starts rejecting, instead of the queue silently accepting
/// requests no thread will ever answer.
struct PoisonOnPanic<'a>(&'a Shared);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Freeze the final stats and metrics first: once the pool
            // is poisoned the live view stops being meaningful, and a
            // post-mortem needs the numbers as they stood at the crash.
            {
                let snapshot = (self.0.live_stats(), self.0.live_metrics());
                let mut frozen = self.0.frozen.lock().unwrap_or_else(|e| e.into_inner());
                frozen.get_or_insert(snapshot);
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.poisoned = true;
            q.pending.clear(); // drops each request's sender -> wait() errors
            self.0.ready.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let _poison = PoisonOnPanic(shared);
    loop {
        // Claim an arrival-order run from the queue front.
        let batch: Vec<Request> = {
            // Lock/condvar poisoning maps to our own `poisoned` flag;
            // recovering the guard here keeps the drain loop alive so
            // shutdown still resolves outstanding tickets.
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.shutdown || q.poisoned {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            let n = q.pending.len().min(shared.cfg.max_batch);
            q.pending.drain(..n).collect()
        };

        // Queue wait: submit -> claim, one clock read for the batch.
        if ntt_obs::enabled() {
            let now = Instant::now();
            for r in &batch {
                if let Some(t0) = r.enqueued {
                    let ns = now.duration_since(t0).as_nanos().min(u64::MAX as u128) as u64;
                    shared.queue_wait.record_always(ns);
                    ntt_obs::histogram!("serve.queue_wait_ns").record_always(ns);
                }
            }
        }
        let service_t0 = ntt_obs::enabled().then(Instant::now);

        let b = batch.len();
        let seq = shared.engine.seq_len();
        let mut x = Vec::with_capacity(b * seq * NUM_FEATURES);
        for r in &batch {
            x.extend_from_slice(&r.window);
        }
        let x = Tensor::from_vec(x, &[b, seq, NUM_FEATURES]);
        let aux = batch[0].aux.is_some().then(|| {
            Tensor::from_vec(
                batch
                    .iter()
                    // PANIC-OK: submit rejects aux mismatches for this
                    // head, so a batch is all-aux or all-none.
                    .map(|r| r.aux.expect("checked on submit"))
                    .collect(),
                &[b, 1],
            )
        });
        // With several workers the machine is divided between batches;
        // suppress the GEMM kernels' internal row threading so they do
        // not oversubscribe it (same discipline as the trainer).
        let out = if shared.cfg.workers > 1 {
            kernels::with_sequential(|| shared.engine.predict(shared.cfg.head, &x, aux.as_ref()))
        } else {
            shared.engine.predict(shared.cfg.head, &x, aux.as_ref())
        };

        shared.batches_run.fetch_add(1, Ordering::Relaxed);
        shared.windows_run.fetch_add(b as u64, Ordering::Relaxed);
        shared.largest_batch.fetch_max(b, Ordering::Relaxed);
        shared.batch_size.record(b as u64);
        ntt_obs::histogram!("serve.batch_size").record(b as u64);
        // Service time = stack + forward pass, recorded *before* the
        // responses go out so a caller who has seen every ticket
        // resolve also sees every service sample.
        if let Some(t0) = service_t0 {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            shared.service.record_always(ns);
            ntt_obs::histogram!("serve.service_ns").record_always(ns);
        }
        for (r, &z) in batch.iter().zip(out.data()) {
            // A dropped ticket (caller gave up) is not an error.
            let _ = r.tx.send(z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;

    fn windows(engine: &InferenceEngine, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let row = engine.seq_len() * NUM_FEATURES;
        let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed);
        (0..n)
            .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
            .collect()
    }

    #[test]
    fn responses_match_serial_reference_in_arrival_order() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 13, 3);
        // Serial reference: each window alone.
        let expect: Vec<f32> = ws
            .iter()
            .map(|w| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                eng.predict("delay", &x, None).item()
            })
            .collect();
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 2,
                head: "delay",
            },
        );
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| batcher.submit(w.clone(), None).unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().unwrap().to_bits(), e.to_bits());
        }
        let stats = batcher.stats();
        assert_eq!(stats.windows, 13);
        assert!(stats.batches >= 4, "13 windows over max_batch 4");
        assert!(stats.largest_batch <= 4);
    }

    #[test]
    fn pending_tickets_resolve_through_shutdown() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 6, 4);
        let tickets: Vec<Ticket> = {
            let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
            ws.iter()
                .map(|w| batcher.submit(w.clone(), None).unwrap())
                .collect()
            // Batcher drops here; its queue must drain first.
        };
        for t in tickets {
            assert!(t.wait().unwrap().is_finite());
        }
    }

    #[test]
    fn aux_rides_along_for_mct_requests() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 5, 5);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 3,
                workers: 1,
                head: "mct",
            },
        );
        let expect: Vec<f32> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                let aux = Tensor::from_vec(vec![i as f32 * 0.1], &[1, 1]);
                eng.predict("mct", &x, Some(&aux)).item()
            })
            .collect();
        let tickets: Vec<Ticket> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| batcher.submit(w.clone(), Some(i as f32 * 0.1)).unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().unwrap().to_bits(), e.to_bits());
        }
    }

    #[test]
    fn panicking_worker_poisons_instead_of_hanging() {
        use ntt_nn::{Head, Module};
        use ntt_tensor::{Param, Var};

        /// A head that panics on every forward — stands in for any
        /// unexpected engine panic mid-batch.
        struct BoomHead;
        impl Module for BoomHead {
            fn params(&self) -> Vec<Param> {
                Vec::new()
            }
        }
        impl Head for BoomHead {
            fn kind(&self) -> &'static str {
                "boom"
            }
            fn d_model(&self) -> usize {
                16
            }
            fn forward_head<'t>(
                &self,
                _tape: &'t ntt_tensor::Tape,
                _encoded: Var<'t>,
                _aux: Option<Var<'t>>,
            ) -> Var<'t> {
                panic!("injected head failure");
            }
        }

        let cfg = crate::test_util::tiny_cfg(0.0);
        let eng = Arc::new(InferenceEngine::from_parts(
            ntt_core::Ntt::new(cfg),
            vec![Box::new(BoomHead)],
            ntt_data::Normalizer::identity(NUM_FEATURES),
        ));
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "boom",
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        let ticket = batcher.submit(vec![0.0; row], None).unwrap();
        // The in-flight ticket must resolve to an error, not hang...
        assert_eq!(
            ticket.wait(),
            Err(ServeError::WorkerDied),
            "ticket of a panicked batch must fail, not block"
        );
        // ...the batcher must report itself dead (the request's sender
        // drops during unwind slightly before the poison guard runs,
        // so give the dying worker a moment)...
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        // ...and further submissions must be rejected loudly.
        assert_eq!(
            batcher.submit(vec![0.0; row], None).err(),
            Some(ServeError::Poisoned)
        );
    }

    #[test]
    fn queue_and_service_histograms_track_requests() {
        ntt_obs::set_enabled(true);
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 9, 6);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "delay",
            },
        );
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| batcher.submit(w.clone(), None).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let m = batcher.metrics();
        // Every request waited in the queue once; every batch was
        // serviced and sized once.
        assert_eq!(m.queue_wait_ns.count, 9);
        assert_eq!(m.service_ns.count, batcher.stats().batches);
        assert_eq!(m.batch_size.count, batcher.stats().batches);
        assert_eq!(m.batch_size.sum, 9, "batch sizes must sum to the windows");
        assert!(
            m.service_ns.quantile(1.0) > 0.0,
            "a forward pass takes time"
        );
    }

    #[test]
    fn poison_freezes_final_stats_and_metrics() {
        use ntt_core::DelayHead;
        use ntt_nn::{Head, Module};
        use ntt_tensor::{Param, Var};
        use std::sync::atomic::AtomicUsize;

        /// Delegates to a real delay head for the first `ok` batches,
        /// then panics — a mid-service failure after useful work.
        struct FlakyHead {
            inner: DelayHead,
            calls: AtomicUsize,
            ok: usize,
        }
        impl Module for FlakyHead {
            fn params(&self) -> Vec<Param> {
                self.inner.params()
            }
        }
        impl Head for FlakyHead {
            fn kind(&self) -> &'static str {
                "flaky"
            }
            fn d_model(&self) -> usize {
                self.inner.d_model()
            }
            fn forward_head<'t>(
                &self,
                tape: &'t ntt_tensor::Tape,
                encoded: Var<'t>,
                aux: Option<Var<'t>>,
            ) -> Var<'t> {
                if self.calls.fetch_add(1, Ordering::SeqCst) >= self.ok {
                    panic!("injected head failure");
                }
                self.inner.forward_head(tape, encoded, aux)
            }
        }

        ntt_obs::set_enabled(true);
        let cfg = crate::test_util::tiny_cfg(0.0);
        let head = FlakyHead {
            inner: DelayHead::new(cfg.d_model, 1),
            calls: AtomicUsize::new(0),
            ok: 1,
        };
        let eng = Arc::new(InferenceEngine::from_parts(
            ntt_core::Ntt::new(cfg),
            vec![Box::new(head)],
            ntt_data::Normalizer::identity(NUM_FEATURES),
        ));
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "flaky",
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        // First request succeeds and is counted.
        assert!(batcher
            .submit(vec![0.0; row], None)
            .unwrap()
            .wait()
            .unwrap()
            .is_finite());
        // Second request kills the worker.
        let doomed = batcher.submit(vec![0.1; row], None).unwrap();
        assert_eq!(doomed.wait(), Err(ServeError::WorkerDied));
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        // The pre-panic numbers survive the poison: one successful
        // batch of one window, with its latency samples intact.
        let stats = batcher.stats();
        assert_eq!(stats.batches, 1, "final stats must be frozen, not reset");
        assert_eq!(stats.windows, 1);
        let m = batcher.metrics();
        assert_eq!(m.batch_size.count, 1);
        assert_eq!(m.batch_size.sum, 1);
        assert_eq!(m.service_ns.count, 1);
        // Both waiting requests were claimed before the crash point.
        assert_eq!(m.queue_wait_ns.count, 2);
    }

    #[test]
    fn malformed_requests_return_typed_errors() {
        let eng = Arc::new(tiny_engine(0.0));
        let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
        let row = eng.seq_len() * NUM_FEATURES;
        assert_eq!(
            batcher.submit(vec![0.0; row], Some(1.0)).err(),
            Some(ServeError::AuxMismatch {
                head: "delay",
                needs_aux: false
            })
        );
        assert_eq!(
            batcher.submit(vec![0.0; 3], None).err(),
            Some(ServeError::WindowLength { got: 3, want: row })
        );
    }
}
