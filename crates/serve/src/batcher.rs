//! Micro-batching request coalescing: many concurrent single-window
//! requests, few large forward passes.
//!
//! The mTCP/event-loop lesson from the serving literature applies
//! directly to model inference: per-request fixed costs (tape setup,
//! weight staging, kernel launch overhead) dominate at batch size 1,
//! and a GEMM over 16 stacked windows costs far less than 16 GEMMs over
//! one. The [`Batcher`] owns a FIFO queue and a small worker pool; each
//! worker drains up to `max_batch` requests **from the queue front in
//! arrival order**, stacks them into one `[B, T, F]` forward pass, and
//! routes each row of the result back over the submitting request's own
//! channel.
//!
//! Coalescing never changes an answer: every kernel in the forward path
//! is row-wise, so window `i`'s prediction is bit-identical whether it
//! ran alone or inside any batch (asserted by the engine's tests and
//! the batcher proptest). Batch *composition* depends on timing; the
//! routing does not — a response always answers exactly the request
//! that asked, and a ticket's `wait` blocks until that answer exists.

use crate::engine::InferenceEngine;
use ntt_data::NUM_FEATURES;
use ntt_tensor::{kernels, Tensor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch one forward pass coalesces.
    pub max_batch: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Head kind every request runs through (one batcher serves one
    /// task; run several batchers over one engine for several tasks).
    pub head: &'static str,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            workers: 1,
            head: "delay",
        }
    }
}

struct Request {
    window: Vec<f32>,
    aux: Option<f32>,
    tx: mpsc::Sender<f32>,
}

struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
    /// Set when a worker thread panicked. A poisoned batcher rejects
    /// new submissions and has dropped every pending request (so their
    /// tickets resolve to an error instead of blocking forever).
    poisoned: bool,
}

struct Shared {
    engine: Arc<InferenceEngine>,
    cfg: BatchConfig,
    queue: Mutex<Queue>,
    ready: Condvar,
    batches_run: AtomicU64,
    windows_run: AtomicU64,
    largest_batch: AtomicUsize,
}

/// Handle to one in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<f32>,
}

impl Ticket {
    /// Block until the prediction for this request exists (normalized
    /// model output). Panics if the batcher was dropped mid-request —
    /// the batcher drains its queue on shutdown, so that indicates a
    /// worker panic, which must not be swallowed.
    pub fn wait(self) -> f32 {
        self.rx
            .recv()
            .expect("batcher worker died before answering")
    }
}

/// Aggregate batching statistics.
#[derive(Debug, Clone, Copy)]
pub struct BatcherStats {
    pub batches: u64,
    pub windows: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
}

/// Micro-batching front end over one engine + one head.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the worker pool. The engine must carry `cfg.head`.
    pub fn new(engine: Arc<InferenceEngine>, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(
            engine.head(cfg.head).is_some(),
            "engine has no {:?} head (loaded: {:?})",
            cfg.head,
            engine.head_kinds()
        );
        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
                poisoned: false,
            }),
            ready: Condvar::new(),
            batches_run: AtomicU64::new(0),
            windows_run: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Batcher { shared, workers }
    }

    /// Submit one featurized window (`seq_len * NUM_FEATURES` values,
    /// with an aux scalar when the head needs one, e.g. the MCT head's
    /// normalized log message size). Returns immediately; the returned
    /// [`Ticket`] resolves to the prediction.
    pub fn submit(&self, window: Vec<f32>, aux: Option<f32>) -> Ticket {
        assert_eq!(
            window.len(),
            self.shared.engine.seq_len() * NUM_FEATURES,
            "window has the wrong length"
        );
        let needs_aux = self
            .shared
            .engine
            .head(self.shared.cfg.head)
            .expect("checked at construction")
            .needs_aux();
        assert_eq!(
            needs_aux,
            aux.is_some(),
            "{:?} head aux-input mismatch",
            self.shared.cfg.head
        );
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap();
            assert!(!q.shutdown, "submit after shutdown");
            assert!(
                !q.poisoned,
                "batcher is dead: a worker thread panicked (a hang would hide the bug)"
            );
            q.pending.push_back(Request { window, aux, tx });
        }
        self.shared.ready.notify_one();
        Ticket { rx }
    }

    /// False once a worker thread has panicked: the batcher rejects
    /// further submissions (and has already failed every pending
    /// ticket) rather than accepting requests nobody will answer.
    pub fn is_healthy(&self) -> bool {
        !self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poisoned
    }

    /// Batching statistics so far.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.shared.batches_run.load(Ordering::Relaxed),
            windows: self.shared.windows_run.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Batcher {
    /// Graceful shutdown: workers drain every pending request before
    /// exiting, so already-issued tickets still resolve.
    fn drop(&mut self) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Marks the batcher poisoned if its worker unwinds: pending requests
/// are dropped (their tickets resolve to an error immediately) and
/// `submit` starts rejecting, instead of the queue silently accepting
/// requests no thread will ever answer.
struct PoisonOnPanic<'a>(&'a Shared);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.poisoned = true;
            q.pending.clear(); // drops each request's sender -> wait() errors
            self.0.ready.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let _poison = PoisonOnPanic(shared);
    loop {
        // Claim an arrival-order run from the queue front.
        let batch: Vec<Request> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.shutdown || q.poisoned {
                    return;
                }
                q = shared.ready.wait(q).unwrap();
            }
            let n = q.pending.len().min(shared.cfg.max_batch);
            q.pending.drain(..n).collect()
        };

        let b = batch.len();
        let seq = shared.engine.seq_len();
        let mut x = Vec::with_capacity(b * seq * NUM_FEATURES);
        for r in &batch {
            x.extend_from_slice(&r.window);
        }
        let x = Tensor::from_vec(x, &[b, seq, NUM_FEATURES]);
        let aux = batch[0].aux.is_some().then(|| {
            Tensor::from_vec(
                batch
                    .iter()
                    .map(|r| r.aux.expect("checked on submit"))
                    .collect(),
                &[b, 1],
            )
        });
        // With several workers the machine is divided between batches;
        // suppress the GEMM kernels' internal row threading so they do
        // not oversubscribe it (same discipline as the trainer).
        let out = if shared.cfg.workers > 1 {
            kernels::with_sequential(|| shared.engine.predict(shared.cfg.head, &x, aux.as_ref()))
        } else {
            shared.engine.predict(shared.cfg.head, &x, aux.as_ref())
        };

        shared.batches_run.fetch_add(1, Ordering::Relaxed);
        shared.windows_run.fetch_add(b as u64, Ordering::Relaxed);
        shared.largest_batch.fetch_max(b, Ordering::Relaxed);
        for (r, &z) in batch.iter().zip(out.data()) {
            // A dropped ticket (caller gave up) is not an error.
            let _ = r.tx.send(z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;

    fn windows(engine: &InferenceEngine, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let row = engine.seq_len() * NUM_FEATURES;
        let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed);
        (0..n)
            .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
            .collect()
    }

    #[test]
    fn responses_match_serial_reference_in_arrival_order() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 13, 3);
        // Serial reference: each window alone.
        let expect: Vec<f32> = ws
            .iter()
            .map(|w| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                eng.predict("delay", &x, None).item()
            })
            .collect();
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 2,
                head: "delay",
            },
        );
        let tickets: Vec<Ticket> = ws.iter().map(|w| batcher.submit(w.clone(), None)).collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().to_bits(), e.to_bits());
        }
        let stats = batcher.stats();
        assert_eq!(stats.windows, 13);
        assert!(stats.batches >= 4, "13 windows over max_batch 4");
        assert!(stats.largest_batch <= 4);
    }

    #[test]
    fn pending_tickets_resolve_through_shutdown() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 6, 4);
        let tickets: Vec<Ticket> = {
            let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
            ws.iter().map(|w| batcher.submit(w.clone(), None)).collect()
            // Batcher drops here; its queue must drain first.
        };
        for t in tickets {
            assert!(t.wait().is_finite());
        }
    }

    #[test]
    fn aux_rides_along_for_mct_requests() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 5, 5);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 3,
                workers: 1,
                head: "mct",
            },
        );
        let expect: Vec<f32> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                let aux = Tensor::from_vec(vec![i as f32 * 0.1], &[1, 1]);
                eng.predict("mct", &x, Some(&aux)).item()
            })
            .collect();
        let tickets: Vec<Ticket> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| batcher.submit(w.clone(), Some(i as f32 * 0.1)))
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().to_bits(), e.to_bits());
        }
    }

    #[test]
    fn panicking_worker_poisons_instead_of_hanging() {
        use ntt_nn::{Head, Module};
        use ntt_tensor::{Param, Var};

        /// A head that panics on every forward — stands in for any
        /// unexpected engine panic mid-batch.
        struct BoomHead;
        impl Module for BoomHead {
            fn params(&self) -> Vec<Param> {
                Vec::new()
            }
        }
        impl Head for BoomHead {
            fn kind(&self) -> &'static str {
                "boom"
            }
            fn d_model(&self) -> usize {
                16
            }
            fn forward_head<'t>(
                &self,
                _tape: &'t ntt_tensor::Tape,
                _encoded: Var<'t>,
                _aux: Option<Var<'t>>,
            ) -> Var<'t> {
                panic!("injected head failure");
            }
        }

        let cfg = crate::test_util::tiny_cfg(0.0);
        let eng = Arc::new(InferenceEngine::from_parts(
            ntt_core::Ntt::new(cfg),
            vec![Box::new(BoomHead)],
            ntt_data::Normalizer::identity(NUM_FEATURES),
        ));
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "boom",
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        let ticket = batcher.submit(vec![0.0; row], None);
        // The in-flight ticket must resolve to an error, not hang...
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait())).is_err(),
            "ticket of a panicked batch must fail, not block"
        );
        // ...the batcher must report itself dead (the request's sender
        // drops during unwind slightly before the poison guard runs,
        // so give the dying worker a moment)...
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        // ...and further submissions must be rejected loudly.
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher.submit(vec![0.0; row], None)
        }))
        .is_err());
    }

    #[test]
    #[should_panic(expected = "aux-input mismatch")]
    fn delay_requests_reject_aux() {
        let eng = Arc::new(tiny_engine(0.0));
        let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
        let row = eng.seq_len() * NUM_FEATURES;
        batcher.submit(vec![0.0; row], Some(1.0));
    }
}
