//! Micro-batching request coalescing: many concurrent single-window
//! requests, few large forward passes — self-healing and overload-safe.
//!
//! The mTCP/event-loop lesson from the serving literature applies
//! directly to model inference: per-request fixed costs (tape setup,
//! weight staging, kernel launch overhead) dominate at batch size 1,
//! and a GEMM over 16 stacked windows costs far less than 16 GEMMs over
//! one. The [`Batcher`] owns a FIFO queue and a small worker pool; each
//! worker drains up to `max_batch` requests **from the queue front in
//! arrival order**, stacks them into one `[B, T, F]` forward pass, and
//! routes each row of the result back over the submitting request's own
//! channel.
//!
//! Coalescing never changes an answer: every kernel in the forward path
//! is row-wise, so window `i`'s prediction is bit-identical whether it
//! ran alone or inside any batch (asserted by the engine's tests and
//! the batcher proptest). Batch *composition* depends on timing; the
//! routing does not — a response always answers exactly the request
//! that asked, and a ticket's `wait` blocks until that answer exists.
//!
//! # Failure behavior
//!
//! A serving pool must outlive its failures, so the batcher never has a
//! state where a caller hangs:
//!
//! * **Worker panic → supervised respawn.** A panicking worker's
//!   in-flight tickets fail fast with [`ServeError::WorkerDied`] (their
//!   response channels drop during unwind), a replacement worker is
//!   spawned before the dying thread finishes unwinding, and
//!   [`BatcherStats::restarts`] / the `serve.worker_restarts` counter
//!   record the event. Queued requests survive and are served by the
//!   replacement. Only when the restart budget
//!   ([`BatchConfig::max_restarts`]) is exhausted does the batcher
//!   poison terminally: pending tickets resolve to
//!   [`ServeError::Poisoned`], `submit` rejects, and `stats()` /
//!   `metrics()` freeze at their pre-poison values for the post-mortem.
//! * **Overload → bounded queue + shedding.** The admission queue holds
//!   at most [`BatchConfig::queue_cap`] requests; beyond that, `submit`
//!   sheds with [`ServeError::Overloaded`] instead of queuing
//!   unboundedly (`serve.shed_total`, `serve.queue_depth`).
//! * **Slow service → deadlines.** A request carrying a deadline that
//!   expires before a worker claims it resolves to
//!   [`ServeError::DeadlineExceeded`] rather than occupying a batch
//!   slot (`serve.deadline_exceeded`).
//! * **Shutdown → drain.** [`Batcher::shutdown`] (and drop) stops
//!   admission with [`ServeError::ShuttingDown`] but drains every
//!   already-accepted request, so a ticket in hand always resolves.
//!
//! Fault injection for all of these paths rides on `ntt_chaos` sites
//! (`serve.worker.panic`, `serve.worker.stall`): a seeded plan makes
//! workers crash or stall on a replayable schedule, which is how the
//! chaos soak suite drives thousands of requests through real
//! panic/respawn/shed cycles deterministically.

use crate::engine::InferenceEngine;
use crate::error::ServeError;
use ntt_data::NUM_FEATURES;
use ntt_obs::{Histogram, HistogramSnapshot};
use ntt_tensor::{kernels, Tensor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch one forward pass coalesces.
    pub max_batch: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Head kind every request runs through (one batcher serves one
    /// task; run several batchers over one engine for several tasks).
    pub head: &'static str,
    /// Admission-queue bound: `submit` sheds with
    /// [`ServeError::Overloaded`] once this many requests are waiting
    /// (`0` = unbounded, the pre-robustness behavior).
    pub queue_cap: usize,
    /// Worker respawns tolerated before the batcher poisons terminally.
    /// `0` makes the first panic fatal (the old poison-on-panic
    /// behavior).
    pub max_restarts: usize,
    /// Default per-request deadline applied by [`Batcher::submit`]
    /// (`None` = requests wait indefinitely). Per-request override:
    /// [`Batcher::submit_with_deadline`].
    pub deadline: Option<Duration>,
    /// How long a worker holds a freshly woken claim open for further
    /// arrivals while the batch is below the live `max_batch` limit
    /// (`None` = claim immediately, the pre-adaptive behavior). A
    /// gather window trades a bounded per-request latency add for
    /// fuller coalesced batches; pairing it with
    /// [`Batcher::set_max_batch`] lets an SLO controller shrink the
    /// limit at low load so the wait collapses to zero.
    pub gather: Option<Duration>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            workers: 1,
            head: "delay",
            queue_cap: 1024,
            max_restarts: 64,
            deadline: None,
            gather: None,
        }
    }
}

struct Request {
    window: Vec<f32>,
    aux: Option<f32>,
    tx: mpsc::Sender<Result<f32, ServeError>>,
    /// Submission time for the queue-wait histogram; `None` while the
    /// observability kill switch is off (no clock read on submit).
    enqueued: Option<Instant>,
    /// Absolute expiry; a worker claiming the request after this point
    /// answers `DeadlineExceeded` instead of serving it.
    deadline: Option<Instant>,
}

struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
    /// Set when the restart budget is exhausted (or a respawn failed).
    /// A poisoned batcher rejects new submissions and has resolved
    /// every pending request with an error.
    poisoned: bool,
}

struct Shared {
    engine: Arc<InferenceEngine>,
    cfg: BatchConfig,
    /// Live coalescing limit. Starts at `cfg.max_batch`; an SLO
    /// controller (e.g. `ntt-net`'s adaptive batching) may retune it at
    /// runtime through [`Batcher::set_max_batch`], so workers read this
    /// per claim instead of the frozen config value.
    max_batch: AtomicUsize,
    queue: Mutex<Queue>,
    ready: Condvar,
    /// Worker join handles — grows when a supervisor respawns a worker,
    /// drained by `Batcher::drop`. Lock order: `queue` before
    /// `handles`, everywhere.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Workers currently running their loop (respawns keep it stable;
    /// it only sinks when a worker exits without replacement).
    live_workers: AtomicUsize,
    batches_run: AtomicU64,
    windows_run: AtomicU64,
    largest_batch: AtomicUsize,
    /// Workers respawned after a panic (`serve.worker_restarts`).
    restarts: AtomicU64,
    /// Requests shed at admission (`serve.shed_total`).
    shed: AtomicU64,
    /// Requests expired before service (`serve.deadline_exceeded`).
    expired: AtomicU64,
    /// Per-batcher latency accounting (also double-recorded into the
    /// global registry as `serve.queue_wait_ns` / `serve.service_ns` /
    /// `serve.batch_size`).
    queue_wait: Histogram,
    service: Histogram,
    batch_size: Histogram,
    /// Final stats + metrics captured by the terminal poison path. Once
    /// the restart budget is exhausted the live counters stop moving,
    /// and this freeze guarantees `stats()`/`metrics()` keep exposing
    /// the last pre-poison view for post-mortems instead of whatever a
    /// half-dead pool reports.
    frozen: Mutex<Option<(BatcherStats, BatcherMetrics)>>,
}

impl Shared {
    fn live_stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.batches_run.load(Ordering::Relaxed),
            windows: self.windows_run.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.expired.load(Ordering::Relaxed),
        }
    }

    fn live_metrics(&self) -> BatcherMetrics {
        BatcherMetrics {
            queue_wait_ns: self.queue_wait.snapshot(),
            service_ns: self.service.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }

    /// Terminal failure: freeze the post-mortem view, mark the pool
    /// dead, and resolve every pending ticket with `Poisoned`. Caller
    /// holds the queue lock.
    fn poison(&self, q: &mut Queue) {
        {
            let snapshot = (self.live_stats(), self.live_metrics());
            let mut frozen = self.frozen.lock().unwrap_or_else(|e| e.into_inner());
            frozen.get_or_insert(snapshot);
        }
        q.poisoned = true;
        for r in q.pending.drain(..) {
            let _ = r.tx.send(Err(ServeError::Poisoned));
        }
        ntt_obs::gauge!("serve.queue_depth").set(0.0);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<f32, ServeError>>,
}

impl Ticket {
    /// Block until this request resolves: the prediction (normalized
    /// model output), or a typed error — [`ServeError::WorkerDied`] if
    /// the serving worker panicked mid-batch (the response channel
    /// dropped during unwind, and a respawned worker cannot recover a
    /// batch that died with its thread), [`ServeError::DeadlineExceeded`]
    /// if the request expired in the queue, [`ServeError::Poisoned`] if
    /// the pool died terminally while the request waited. A ticket
    /// never hangs: every accepted request is either served, expired,
    /// or failed by the worker/pool teardown paths.
    pub fn wait(self) -> Result<f32, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerDied)?
    }
}

/// Aggregate batching statistics.
#[derive(Debug, Clone, Copy)]
pub struct BatcherStats {
    pub batches: u64,
    pub windows: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// Workers respawned after a panic.
    pub restarts: u64,
    /// Requests shed at admission (bounded queue full).
    pub shed: u64,
    /// Requests that expired in the queue before service.
    pub deadline_exceeded: u64,
}

/// Latency and batch-shape distributions for one batcher, as histogram
/// snapshots (p50/p90/p99 via [`HistogramSnapshot::quantile`]). Empty
/// while the `NTT_OBS` kill switch is off.
#[derive(Debug, Clone, Default)]
pub struct BatcherMetrics {
    /// Nanoseconds from `submit` to a worker claiming the request.
    pub queue_wait_ns: HistogramSnapshot,
    /// Nanoseconds a worker spent stacking, predicting, and routing one
    /// batch.
    pub service_ns: HistogramSnapshot,
    /// Coalesced batch sizes (windows per forward pass).
    pub batch_size: HistogramSnapshot,
}

/// Micro-batching front end over one engine + one head.
pub struct Batcher {
    shared: Arc<Shared>,
}

impl Batcher {
    /// Spawn the worker pool. The engine must carry `cfg.head`.
    pub fn new(engine: Arc<InferenceEngine>, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(
            engine.head(cfg.head).is_some(),
            "engine has no {:?} head (loaded: {:?})",
            cfg.head,
            engine.head_kinds()
        );
        let workers = cfg.workers;
        let max_batch = cfg.max_batch;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            max_batch: AtomicUsize::new(max_batch),
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
                poisoned: false,
            }),
            ready: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            live_workers: AtomicUsize::new(workers),
            batches_run: AtomicU64::new(0),
            windows_run: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
            restarts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
            batch_size: Histogram::new(),
            frozen: Mutex::new(None),
        });
        {
            let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..workers {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || worker_loop(shared)));
            }
        }
        Batcher { shared }
    }

    /// Submit one featurized window (`seq_len * NUM_FEATURES` values,
    /// with an aux scalar when the head needs one, e.g. the MCT head's
    /// normalized log message size). Returns immediately; the returned
    /// [`Ticket`] resolves to the prediction. Malformed requests, a
    /// full queue, and a dead/shutting-down pool are client-reachable
    /// conditions, so they come back as [`ServeError`]s instead of
    /// panicking the server. Applies [`BatchConfig::deadline`] when one
    /// is configured.
    pub fn submit(&self, window: Vec<f32>, aux: Option<f32>) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(window, aux, self.shared.cfg.deadline)
    }

    /// [`Batcher::submit`] with an explicit per-request deadline
    /// (overriding the configured default; `None` = wait forever). A
    /// request still queued when its deadline passes resolves to
    /// [`ServeError::DeadlineExceeded`] instead of occupying a batch
    /// slot.
    pub fn submit_with_deadline(
        &self,
        window: Vec<f32>,
        aux: Option<f32>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let want = self.shared.engine.seq_len() * NUM_FEATURES;
        if window.len() != want {
            return Err(ServeError::WindowLength {
                got: window.len(),
                want,
            });
        }
        let needs_aux = self
            .shared
            .engine
            .head(self.shared.cfg.head)
            // PANIC-OK: Batcher::new asserts the head exists and the
            // engine's head set is immutable afterwards.
            .expect("checked at construction")
            .needs_aux();
        if needs_aux != aux.is_some() {
            return Err(ServeError::AuxMismatch {
                head: self.shared.cfg.head,
                needs_aux,
            });
        }
        let (tx, rx) = mpsc::channel();
        let enqueued = ntt_obs::enabled().then(Instant::now);
        let deadline = deadline.map(|d| {
            enqueued
                .unwrap_or_else(Instant::now)
                .checked_add(d)
                // PANIC-OK: only a near-u64::MAX Duration overflows
                // Instant arithmetic; such a deadline is a caller bug,
                // not a runtime condition.
                .expect("deadline overflows the monotonic clock")
        });
        {
            // Lock poisoning is tracked by our own `poisoned` flag (the
            // queue holds plain data, always consistent), so recover the
            // guard rather than double-panic.
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.poisoned {
                return Err(ServeError::Poisoned);
            }
            let cap = self.shared.cfg.queue_cap;
            if cap > 0 && q.pending.len() >= cap {
                // Load shedding: a bounded queue that answers "no" now
                // beats an unbounded one that answers late.
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                ntt_obs::counter!("serve.shed_total").inc();
                return Err(ServeError::Overloaded { cap });
            }
            q.pending.push_back(Request {
                window,
                aux,
                tx,
                enqueued,
                deadline,
            });
            ntt_obs::gauge!("serve.queue_depth").set(q.pending.len() as f64);
        }
        self.shared.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Stop admitting requests (subsequent `submit`s return
    /// [`ServeError::ShuttingDown`]) while the workers drain everything
    /// already accepted — every ticket in flight still resolves. Called
    /// automatically on drop; callable early so an operator can drain a
    /// pool without giving up the handle (and its `stats()`).
    pub fn shutdown(&self) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.shared.ready.notify_all();
    }

    /// The live coalescing limit: how many queued requests one claim
    /// may stack into a single forward pass right now. Starts at
    /// [`BatchConfig::max_batch`].
    pub fn max_batch(&self) -> usize {
        self.shared.max_batch.load(Ordering::Relaxed)
    }

    /// Retune the coalescing limit at runtime (clamped to >= 1; takes
    /// effect from the next claim — a batch already being stacked is
    /// not re-cut). This is the knob `ntt-net`'s SLO-adaptive
    /// controller drives to hold a p99 latency target: shrink it when
    /// the gather window is the latency, grow it when saturated batches
    /// say coalescing would help.
    pub fn set_max_batch(&self, n: usize) {
        let n = n.max(1);
        self.shared.max_batch.store(n, Ordering::Relaxed);
        ntt_obs::gauge!("serve.max_batch").set(n as f64);
    }

    /// False once the batcher has poisoned terminally (restart budget
    /// exhausted, or a respawn failed): it rejects further submissions
    /// and has already resolved every pending ticket. Individual worker
    /// panics within budget do *not* unhealth the pool — they respawn.
    pub fn is_healthy(&self) -> bool {
        !self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poisoned
    }

    /// Batching statistics so far. After terminal poisoning this
    /// returns the frozen pre-poison view, so the numbers a post-mortem
    /// reads are the final ones.
    pub fn stats(&self) -> BatcherStats {
        let frozen = self.shared.frozen.lock().unwrap_or_else(|e| e.into_inner());
        match &*frozen {
            Some((stats, _)) => *stats,
            None => self.shared.live_stats(),
        }
    }

    /// Queue-wait, service-time, and batch-size distributions for this
    /// batcher (its own histograms, not the process-global ones —
    /// several batchers never mix). Frozen at the last pre-poison view
    /// once the pool has died terminally.
    pub fn metrics(&self) -> BatcherMetrics {
        let frozen = self.shared.frozen.lock().unwrap_or_else(|e| e.into_inner());
        match &*frozen {
            Some((_, metrics)) => metrics.clone(),
            None => self.shared.live_metrics(),
        }
    }
}

impl Drop for Batcher {
    /// Graceful shutdown: workers drain every pending request before
    /// exiting, so already-issued tickets still resolve.
    fn drop(&mut self) {
        self.shutdown();
        // Join every worker, including respawns registered while we
        // drain (a supervisor never respawns after `shutdown` is set,
        // so the handle list strictly shrinks once this loop starts).
        loop {
            let handle = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Supervision guard living on each worker's stack. On a panic it
/// respawns a replacement worker (within `max_restarts`), so one bad
/// batch — a poisoned input, an engine bug, an injected chaos fault —
/// costs its own tickets but never the pool. The panicked batch's
/// response senders drop during unwind, resolving those tickets with
/// [`ServeError::WorkerDied`] before the replacement even starts.
struct Supervise {
    shared: Arc<Shared>,
}

impl Drop for Supervise {
    fn drop(&mut self) {
        let shared = &self.shared;
        let was_live = shared.live_workers.fetch_sub(1, Ordering::Relaxed);
        if !std::thread::panicking() {
            return; // normal shutdown exit
        }
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.poisoned {
            return;
        }
        if q.shutdown {
            // Never respawn into a draining pool. If this was the last
            // worker, whatever is still queued can no longer be served
            // — fail those tickets rather than stranding them.
            if was_live == 1 {
                for r in q.pending.drain(..) {
                    let _ = r.tx.send(Err(ServeError::WorkerDied));
                }
            }
            return;
        }
        // Charge the restart budget; exhaustion is terminal.
        let within_budget = shared
            .restarts
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < shared.cfg.max_restarts as u64).then_some(n + 1)
            })
            .is_ok();
        if !within_budget {
            shared.poison(&mut q);
            return;
        }
        ntt_obs::counter!("serve.worker_restarts").inc();
        shared.live_workers.fetch_add(1, Ordering::Relaxed);
        let respawn = Arc::clone(shared);
        match std::thread::Builder::new().spawn(move || worker_loop(respawn)) {
            Ok(handle) => {
                // Still holding the queue lock: `Batcher::drop` sets
                // `shutdown` under it, so the handle is registered
                // before any join loop can begin, or not spawned at
                // all.
                shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            Err(_) => {
                // Could not replace the worker (thread exhaustion):
                // the pool can no longer honor its contract.
                shared.live_workers.fetch_sub(1, Ordering::Relaxed);
                shared.poison(&mut q);
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let _supervise = Supervise {
        shared: Arc::clone(&shared),
    };
    loop {
        // Claim an arrival-order run from the queue front, dropping
        // requests whose deadline already passed.
        let batch: Vec<Request> = {
            // Lock/condvar poisoning maps to our own `poisoned` flag;
            // recovering the guard here keeps the drain loop alive so
            // shutdown still resolves outstanding tickets.
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.shutdown || q.poisoned {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            // Optional gather window: hold the claim open for further
            // arrivals until the batch can fill to the live limit or
            // the window lapses. The wait is bounded by `cfg.gather`
            // and collapses to zero once `max_batch` requests are
            // already pending — so an adaptive controller shrinking
            // `max_batch` toward the observed concurrency removes the
            // gather latency entirely at low load.
            if let Some(gather) = shared.cfg.gather {
                let t0 = Instant::now();
                while q.pending.len() < shared.max_batch.load(Ordering::Relaxed)
                    && !q.shutdown
                    && !q.poisoned
                {
                    let left = match gather.checked_sub(t0.elapsed()) {
                        Some(d) if !d.is_zero() => d,
                        _ => break,
                    };
                    let (guard, _) = shared
                        .ready
                        .wait_timeout(q, left)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
                if q.pending.is_empty() {
                    continue; // a sibling worker drained it mid-gather
                }
            }
            let n = q
                .pending
                .len()
                .min(shared.max_batch.load(Ordering::Relaxed).max(1));
            let claimed: Vec<Request> = q.pending.drain(..n).collect();
            ntt_obs::gauge!("serve.queue_depth").set(q.pending.len() as f64);
            drop(q);
            // One clock read per claim covers every carried deadline.
            let now = claimed
                .iter()
                .any(|r| r.deadline.is_some())
                .then(Instant::now);
            let mut live = Vec::with_capacity(claimed.len());
            for r in claimed {
                match (r.deadline, now) {
                    (Some(d), Some(now)) if now >= d => {
                        shared.expired.fetch_add(1, Ordering::Relaxed);
                        ntt_obs::counter!("serve.deadline_exceeded").inc();
                        let _ = r.tx.send(Err(ServeError::DeadlineExceeded));
                    }
                    _ => live.push(r),
                }
            }
            if live.is_empty() {
                continue; // the whole claim had expired
            }
            live
        };

        // Chaos sites: a seeded plan can stall this worker (slow
        // consumer — the queue backs up and admission sheds) or crash
        // it mid-batch (exercising ticket fail-fast + respawn). Both
        // compile to one relaxed load when chaos is off.
        ntt_chaos::maybe_delay("serve.worker.stall");
        ntt_chaos::maybe_panic("serve.worker.panic");

        // Queue wait: submit -> claim, one clock read for the batch.
        if ntt_obs::enabled() {
            let now = Instant::now();
            for r in &batch {
                if let Some(t0) = r.enqueued {
                    let ns = now.duration_since(t0).as_nanos().min(u64::MAX as u128) as u64;
                    shared.queue_wait.record_always(ns);
                    ntt_obs::histogram!("serve.queue_wait_ns").record_always(ns);
                }
            }
        }
        let service_t0 = ntt_obs::enabled().then(Instant::now);

        let b = batch.len();
        let seq = shared.engine.seq_len();
        let mut x = Vec::with_capacity(b * seq * NUM_FEATURES);
        for r in &batch {
            x.extend_from_slice(&r.window);
        }
        let x = Tensor::from_vec(x, &[b, seq, NUM_FEATURES]);
        let aux = batch[0].aux.is_some().then(|| {
            Tensor::from_vec(
                batch
                    .iter()
                    // PANIC-OK: submit rejects aux mismatches for this
                    // head, so a batch is all-aux or all-none.
                    .map(|r| r.aux.expect("checked on submit"))
                    .collect(),
                &[b, 1],
            )
        });
        // With several workers the machine is divided between batches;
        // suppress the GEMM kernels' internal row threading so they do
        // not oversubscribe it (same discipline as the trainer).
        let out = if shared.cfg.workers > 1 {
            kernels::with_sequential(|| shared.engine.predict(shared.cfg.head, &x, aux.as_ref()))
        } else {
            shared.engine.predict(shared.cfg.head, &x, aux.as_ref())
        };

        shared.batches_run.fetch_add(1, Ordering::Relaxed);
        shared.windows_run.fetch_add(b as u64, Ordering::Relaxed);
        shared.largest_batch.fetch_max(b, Ordering::Relaxed);
        shared.batch_size.record(b as u64);
        ntt_obs::histogram!("serve.batch_size").record(b as u64);
        // Service time = stack + forward pass, recorded *before* the
        // responses go out so a caller that saw every ticket resolve
        // also sees every service sample.
        if let Some(t0) = service_t0 {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            shared.service.record_always(ns);
            ntt_obs::histogram!("serve.service_ns").record_always(ns);
        }
        for (r, &z) in batch.iter().zip(out.data()) {
            // A dropped ticket (caller gave up) is not an error.
            let _ = r.tx.send(Ok(z));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;
    use ntt_core::DelayHead;
    use ntt_nn::{Head, Module};
    use ntt_tensor::{Param, Var};

    fn windows(engine: &InferenceEngine, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let row = engine.seq_len() * NUM_FEATURES;
        let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed);
        (0..n)
            .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
            .collect()
    }

    /// Delegates to a real delay head but panics on configured calls —
    /// stands in for transient or persistent engine failures.
    struct FlakyHead {
        inner: DelayHead,
        calls: AtomicUsize,
        /// Calls (0-based) that panic.
        boom: &'static [usize],
    }
    impl FlakyHead {
        fn boxed(d_model: usize, boom: &'static [usize]) -> Box<dyn Head> {
            Box::new(FlakyHead {
                inner: DelayHead::new(d_model, 1),
                calls: AtomicUsize::new(0),
                boom,
            })
        }
    }
    impl Module for FlakyHead {
        fn params(&self) -> Vec<Param> {
            self.inner.params()
        }
    }
    impl Head for FlakyHead {
        fn kind(&self) -> &'static str {
            "flaky"
        }
        fn d_model(&self) -> usize {
            self.inner.d_model()
        }
        fn forward_head<'t>(
            &self,
            tape: &'t ntt_tensor::Tape,
            encoded: Var<'t>,
            aux: Option<Var<'t>>,
        ) -> Var<'t> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if self.boom.contains(&call) {
                panic!("injected head failure");
            }
            self.inner.forward_head(tape, encoded, aux)
        }
    }

    /// Blocks every forward until released — deterministic queue
    /// pressure for the overload and deadline tests.
    struct GateHead {
        inner: DelayHead,
        entered: AtomicUsize,
        open: std::sync::atomic::AtomicBool,
    }
    impl Module for GateHead {
        fn params(&self) -> Vec<Param> {
            self.inner.params()
        }
    }
    impl Head for GateHead {
        fn kind(&self) -> &'static str {
            "gate"
        }
        fn d_model(&self) -> usize {
            self.inner.d_model()
        }
        fn forward_head<'t>(
            &self,
            tape: &'t ntt_tensor::Tape,
            encoded: Var<'t>,
            aux: Option<Var<'t>>,
        ) -> Var<'t> {
            self.entered.fetch_add(1, Ordering::SeqCst);
            while !self.open.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            self.inner.forward_head(tape, encoded, aux)
        }
    }

    /// Engine around one custom head plus an `Arc` handle to it.
    fn engine_with_gate() -> (Arc<InferenceEngine>, Arc<GateHead>) {
        let cfg = crate::test_util::tiny_cfg(0.0);
        let gate = Arc::new(GateHead {
            inner: DelayHead::new(cfg.d_model, 1),
            entered: AtomicUsize::new(0),
            open: std::sync::atomic::AtomicBool::new(false),
        });
        struct Fwd(Arc<GateHead>);
        impl Module for Fwd {
            fn params(&self) -> Vec<Param> {
                self.0.params()
            }
        }
        impl Head for Fwd {
            fn kind(&self) -> &'static str {
                "gate"
            }
            fn d_model(&self) -> usize {
                self.0.d_model()
            }
            fn forward_head<'t>(
                &self,
                tape: &'t ntt_tensor::Tape,
                encoded: Var<'t>,
                aux: Option<Var<'t>>,
            ) -> Var<'t> {
                self.0.forward_head(tape, encoded, aux)
            }
        }
        let eng = Arc::new(InferenceEngine::from_parts(
            ntt_core::Ntt::new(cfg),
            vec![Box::new(Fwd(Arc::clone(&gate)))],
            ntt_data::Normalizer::identity(NUM_FEATURES),
        ));
        (eng, gate)
    }

    fn flaky_engine(boom: &'static [usize]) -> Arc<InferenceEngine> {
        let cfg = crate::test_util::tiny_cfg(0.0);
        Arc::new(InferenceEngine::from_parts(
            ntt_core::Ntt::new(cfg),
            vec![FlakyHead::boxed(cfg.d_model, boom)],
            ntt_data::Normalizer::identity(NUM_FEATURES),
        ))
    }

    #[test]
    fn responses_match_serial_reference_in_arrival_order() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 13, 3);
        // Serial reference: each window alone.
        let expect: Vec<f32> = ws
            .iter()
            .map(|w| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                eng.predict("delay", &x, None).item()
            })
            .collect();
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 2,
                head: "delay",
                ..BatchConfig::default()
            },
        );
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| batcher.submit(w.clone(), None).unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().unwrap().to_bits(), e.to_bits());
        }
        let stats = batcher.stats();
        assert_eq!(stats.windows, 13);
        assert!(stats.batches >= 4, "13 windows over max_batch 4");
        assert!(stats.largest_batch <= 4);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn pending_tickets_resolve_through_shutdown() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 6, 4);
        let tickets: Vec<Ticket> = {
            let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
            ws.iter()
                .map(|w| batcher.submit(w.clone(), None).unwrap())
                .collect()
            // Batcher drops here; its queue must drain first.
        };
        for t in tickets {
            assert!(t.wait().unwrap().is_finite());
        }
    }

    #[test]
    fn explicit_shutdown_drains_then_rejects() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 5, 11);
        let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| batcher.submit(w.clone(), None).unwrap())
            .collect();
        batcher.shutdown();
        // Already-accepted requests all resolve...
        for t in tickets {
            assert!(t.wait().unwrap().is_finite());
        }
        // ...new ones are refused, and the handle still reports stats.
        assert_eq!(
            batcher.submit(ws[0].clone(), None).err(),
            Some(ServeError::ShuttingDown)
        );
        assert_eq!(batcher.stats().windows, 5);
    }

    #[test]
    fn aux_rides_along_for_mct_requests() {
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 5, 5);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 3,
                workers: 1,
                head: "mct",
                ..BatchConfig::default()
            },
        );
        let expect: Vec<f32> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let x = Tensor::from_vec(w.clone(), &[1, eng.seq_len(), NUM_FEATURES]);
                let aux = Tensor::from_vec(vec![i as f32 * 0.1], &[1, 1]);
                eng.predict("mct", &x, Some(&aux)).item()
            })
            .collect();
        let tickets: Vec<Ticket> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| batcher.submit(w.clone(), Some(i as f32 * 0.1)).unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            assert_eq!(t.wait().unwrap().to_bits(), e.to_bits());
        }
    }

    #[test]
    fn panicked_worker_respawns_and_the_pool_keeps_serving() {
        // Call 0 panics; every later call succeeds. The first request's
        // ticket fails fast, a replacement worker spawns, and the pool
        // serves the rest as if nothing happened.
        let eng = flaky_engine(&[0]);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "flaky",
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        let doomed = batcher.submit(vec![0.0; row], None).unwrap();
        assert_eq!(
            doomed.wait(),
            Err(ServeError::WorkerDied),
            "the in-flight ticket of a panicked batch fails fast"
        );
        // The respawned worker serves subsequent requests.
        for i in 0..4 {
            let t = batcher.submit(vec![0.1 * i as f32; row], None).unwrap();
            assert!(t.wait().unwrap().is_finite(), "request {i} after respawn");
        }
        assert!(batcher.is_healthy(), "a respawn within budget is healthy");
        let stats = batcher.stats();
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.windows, 4, "stats keep moving after the restart");
    }

    #[test]
    fn queued_requests_survive_a_worker_panic() {
        // Two requests queued back-to-back; serving the first panics
        // (max_batch 1 keeps them in separate batches). The second must
        // be served by the replacement worker, not dropped.
        let eng = flaky_engine(&[0]);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "flaky",
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        let doomed = batcher.submit(vec![0.0; row], None).unwrap();
        let survivor = batcher.submit(vec![0.5; row], None).unwrap();
        assert_eq!(doomed.wait(), Err(ServeError::WorkerDied));
        assert!(
            survivor.wait().unwrap().is_finite(),
            "a queued request must survive the panic and be served by the respawn"
        );
    }

    #[test]
    fn exhausted_restart_budget_poisons_terminally() {
        // Every call panics and the budget is one respawn: the second
        // panic poisons the pool — submissions reject, pending tickets
        // resolve, and stats freeze.
        let eng = flaky_engine(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "flaky",
                max_restarts: 1,
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        assert_eq!(
            batcher.submit(vec![0.0; row], None).unwrap().wait(),
            Err(ServeError::WorkerDied)
        );
        assert_eq!(
            batcher.submit(vec![0.1; row], None).unwrap().wait(),
            Err(ServeError::WorkerDied)
        );
        // The second panic exhausted the budget; the poison flag is set
        // by the dying worker's supervisor, so give it a moment.
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        assert_eq!(
            batcher.submit(vec![0.2; row], None).err(),
            Some(ServeError::Poisoned)
        );
        let stats = batcher.stats();
        assert_eq!(stats.restarts, 1, "one respawn happened before poisoning");
    }

    #[test]
    fn legacy_zero_budget_poisons_on_first_panic() {
        // max_restarts: 0 restores the old poison-on-first-panic
        // behavior exactly.
        let eng = flaky_engine(&[0]);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "flaky",
                max_restarts: 0,
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        let ticket = batcher.submit(vec![0.0; row], None).unwrap();
        assert_eq!(ticket.wait(), Err(ServeError::WorkerDied));
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        assert_eq!(
            batcher.submit(vec![0.0; row], None).err(),
            Some(ServeError::Poisoned)
        );
        assert_eq!(batcher.stats().restarts, 0);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let (eng, gate) = engine_with_gate();
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "gate",
                queue_cap: 3,
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        // First request gets claimed and blocks inside the head.
        let served = batcher.submit(vec![0.0; row], None).unwrap();
        let t0 = std::time::Instant::now();
        while gate.entered.load(Ordering::SeqCst) == 0 && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert_eq!(gate.entered.load(Ordering::SeqCst), 1, "worker is gated");
        // Fill the bounded queue...
        let queued: Vec<Ticket> = (0..3)
            .map(|i| batcher.submit(vec![0.1 * i as f32; row], None).unwrap())
            .collect();
        // ...and the next admission sheds instead of queuing unboundedly.
        assert_eq!(
            batcher.submit(vec![0.9; row], None).err(),
            Some(ServeError::Overloaded { cap: 3 })
        );
        assert_eq!(batcher.stats().shed, 1);
        // Release the gate: everything accepted still resolves.
        gate.open.store(true, Ordering::SeqCst);
        assert!(served.wait().unwrap().is_finite());
        for t in queued {
            assert!(t.wait().unwrap().is_finite());
        }
        assert_eq!(batcher.stats().shed, 1, "accounting survives the drain");
    }

    #[test]
    fn expired_deadline_resolves_instead_of_occupying_a_batch() {
        let (eng, gate) = engine_with_gate();
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "gate",
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        // Gate the worker on a first request...
        let served = batcher.submit(vec![0.0; row], None).unwrap();
        let t0 = std::time::Instant::now();
        while gate.entered.load(Ordering::SeqCst) == 0 && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        // ...queue one request with an already-tiny deadline and one
        // without; let the deadline lapse before opening the gate.
        let doomed = batcher
            .submit_with_deadline(vec![0.1; row], None, Some(Duration::from_millis(1)))
            .unwrap();
        let patient = batcher.submit(vec![0.2; row], None).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        gate.open.store(true, Ordering::SeqCst);
        assert!(served.wait().unwrap().is_finite());
        assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
        assert!(
            patient.wait().unwrap().is_finite(),
            "an expired neighbor must not take the batch down with it"
        );
        let stats = batcher.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.windows, 2, "expired requests never reach the engine");
    }

    #[test]
    fn queue_and_service_histograms_track_requests() {
        ntt_obs::set_enabled(true);
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 9, 6);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                head: "delay",
                ..BatchConfig::default()
            },
        );
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| batcher.submit(w.clone(), None).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let m = batcher.metrics();
        // Every request waited in the queue once; every batch was
        // serviced and sized once.
        assert_eq!(m.queue_wait_ns.count, 9);
        assert_eq!(m.service_ns.count, batcher.stats().batches);
        assert_eq!(m.batch_size.count, batcher.stats().batches);
        assert_eq!(m.batch_size.sum, 9, "batch sizes must sum to the windows");
        assert!(
            m.service_ns.quantile(1.0) > 0.0,
            "a forward pass takes time"
        );
    }

    #[test]
    fn poison_freezes_final_stats_and_metrics() {
        ntt_obs::set_enabled(true);
        // First call succeeds, the second panics; a zero restart budget
        // makes that panic terminal.
        let eng = flaky_engine(&[1]);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 1,
                workers: 1,
                head: "flaky",
                max_restarts: 0,
                ..BatchConfig::default()
            },
        );
        let row = eng.seq_len() * NUM_FEATURES;
        // First request succeeds and is counted.
        assert!(batcher
            .submit(vec![0.0; row], None)
            .unwrap()
            .wait()
            .unwrap()
            .is_finite());
        // Second request kills the worker.
        let doomed = batcher.submit(vec![0.1; row], None).unwrap();
        assert_eq!(doomed.wait(), Err(ServeError::WorkerDied));
        let t0 = std::time::Instant::now();
        while batcher.is_healthy() && t0.elapsed().as_secs() < 5 {
            std::thread::yield_now();
        }
        assert!(!batcher.is_healthy());
        // The pre-poison numbers survive: one successful batch of one
        // window, with its latency samples intact.
        let stats = batcher.stats();
        assert_eq!(stats.batches, 1, "final stats must be frozen, not reset");
        assert_eq!(stats.windows, 1);
        let m = batcher.metrics();
        assert_eq!(m.batch_size.count, 1);
        assert_eq!(m.batch_size.sum, 1);
        assert_eq!(m.service_ns.count, 1);
        // Both requests were claimed before the crash point.
        assert_eq!(m.queue_wait_ns.count, 2);
    }

    #[test]
    fn gather_window_coalesces_trickled_arrivals() {
        // With a generous gather window the worker holds its claim open
        // until the batch fills, so requests trickling in one at a time
        // still coalesce into a single forward pass.
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 4, 21);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 4,
                workers: 1,
                gather: Some(Duration::from_millis(500)),
                ..BatchConfig::default()
            },
        );
        let tickets: Vec<Ticket> = ws
            .iter()
            .map(|w| {
                let t = batcher.submit(w.clone(), None).unwrap();
                std::thread::sleep(Duration::from_millis(1));
                t
            })
            .collect();
        for t in tickets {
            assert!(t.wait().unwrap().is_finite());
        }
        let stats = batcher.stats();
        assert_eq!(
            stats.batches, 1,
            "gather must hold the claim open until the batch fills"
        );
        assert_eq!(stats.largest_batch, 4);
    }

    #[test]
    fn runtime_max_batch_retune_takes_effect() {
        // Shrinking the live limit to 1 makes the gather loop exit
        // immediately (a single pending request already fills the
        // batch), so a long gather window adds no latency.
        let eng = Arc::new(tiny_engine(0.0));
        let ws = windows(&eng, 3, 22);
        let batcher = Batcher::new(
            Arc::clone(&eng),
            BatchConfig {
                max_batch: 8,
                workers: 1,
                gather: Some(Duration::from_secs(30)),
                ..BatchConfig::default()
            },
        );
        assert_eq!(batcher.max_batch(), 8);
        batcher.set_max_batch(0); // clamps to 1
        assert_eq!(batcher.max_batch(), 1);
        let t0 = Instant::now();
        for w in &ws {
            let t = batcher.submit(w.clone(), None).unwrap();
            assert!(t.wait().unwrap().is_finite());
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "limit 1 must bypass the 30s gather window"
        );
        assert_eq!(
            batcher.stats().batches,
            3,
            "limit 1 serves each request in its own batch"
        );
    }

    #[test]
    fn malformed_requests_return_typed_errors() {
        let eng = Arc::new(tiny_engine(0.0));
        let batcher = Batcher::new(Arc::clone(&eng), BatchConfig::default());
        let row = eng.seq_len() * NUM_FEATURES;
        assert_eq!(
            batcher.submit(vec![0.0; row], Some(1.0)).err(),
            Some(ServeError::AuxMismatch {
                head: "delay",
                needs_aux: false
            })
        );
        assert_eq!(
            batcher.submit(vec![0.0; 3], None).err(),
            Some(ServeError::WindowLength { got: 3, want: row })
        );
    }
}
