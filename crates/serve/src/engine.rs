//! The grad-free inference engine: one loaded model, shared by every
//! session, batcher worker, and live feed that serves it.
//!
//! An [`InferenceEngine`] owns an [`Ntt`] trunk, its task heads, and
//! the feature normalizer the model trained with. Weights live once,
//! behind the model's `Arc`-shared parameters — wrapping the engine in
//! an `Arc` and handing clones to worker threads duplicates nothing.
//! Every forward pass runs on a pooled **inference tape**
//! ([`Tape::inference`]): no backward graph recorded, no gradient
//! slots allocated, and attention routed through the fused
//! streaming-softmax tile (`Var::attn_fused`), which never
//! materializes the `[B, H, T, T]` score matrix. Inference outputs are
//! **deterministic** — bit-identical across runs, thread counts, and
//! batch compositions — and agree with a recording tape's classic
//! attention chain to within epsilon (the online softmax reorders the
//! IEEE reduction, so cross-mode bit-equality is explicitly not
//! claimed). The tape's scratch arena recycles the same buffers
//! request after request, so a steady-state serving loop stops
//! allocating.

use ntt_core::{Ntt, NttConfig, Pretrained};
use ntt_data::{Normalizer, CH_DELAY, NUM_FEATURES};
use ntt_nn::Head;
use ntt_obs::Counter;
use ntt_tensor::{TapePool, Tensor};
use std::io;
use std::path::Path;

/// A loaded model ready to serve: trunk + heads + normalizer, executing
/// grad-free. Construct once, share via `Arc`.
pub struct InferenceEngine {
    model: Ntt,
    heads: Vec<Box<dyn Head>>,
    norm: Normalizer,
    /// Pooled inference tapes (one per concurrent forward; a tape's
    /// scratch arena survives between requests).
    tapes: TapePool,
    /// Windows predicted since construction (all entry points). An
    /// `ntt_obs` counter: frozen at its last value while `NTT_OBS=off`.
    served: Counter,
}

impl InferenceEngine {
    /// Wrap a model for serving. Dropout is forced off: serving is
    /// deterministic evaluation, never a stochastic training pass.
    pub fn from_parts(model: Ntt, heads: Vec<Box<dyn Head>>, norm: Normalizer) -> Self {
        assert!(!heads.is_empty(), "an engine needs at least one head");
        model.set_training(false);
        InferenceEngine {
            model,
            heads,
            norm,
            tapes: TapePool::inference(),
            served: Counter::new(),
        }
    }

    /// Engine over a [`Pretrained`] pipeline result (shares the same
    /// parameter storage; nothing is copied).
    pub fn from_pretrained(pre: Pretrained) -> Self {
        Self::from_parts(pre.model, pre.heads, pre.norm)
    }

    /// Load an `NTTCKPT2` checkpoint into a fresh engine: the embedded
    /// config rebuilds the trunk, the head descriptors rebuild the
    /// decoders, and the embedded normalizer keeps live featurization
    /// identical to training.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_pretrained(Pretrained::load(path)?))
    }

    /// Model configuration (window geometry, aggregation, width).
    pub fn cfg(&self) -> &NttConfig {
        &self.model.cfg
    }

    /// The trunk (read-only: serving never mutates weights).
    pub fn model(&self) -> &Ntt {
        &self.model
    }

    /// Every loaded head, in checkpoint order.
    pub fn heads(&self) -> &[Box<dyn Head>] {
        &self.heads
    }

    /// Input window length in packets.
    pub fn seq_len(&self) -> usize {
        self.model.cfg.seq_len()
    }

    /// The feature normalizer this model trained with.
    pub fn norm(&self) -> &Normalizer {
        &self.norm
    }

    /// The first head of the given kind, if loaded.
    pub fn head(&self, kind: &str) -> Option<&dyn Head> {
        self.heads
            .iter()
            .find(|h| h.kind() == kind)
            .map(|h| h.as_ref())
    }

    /// Kinds of every loaded head, in checkpoint order.
    pub fn head_kinds(&self) -> Vec<&'static str> {
        self.heads.iter().map(|h| h.kind()).collect()
    }

    /// Total windows predicted since construction. Counts only while
    /// observability is enabled (the `NTT_OBS` kill switch freezes it);
    /// the process-wide total across every engine is the registry's
    /// `serve.windows_served` counter.
    pub fn windows_served(&self) -> u64 {
        self.served.get()
    }

    /// Predict a batch of already-featurized windows through the head
    /// of `kind`: `[B, seq_len, F]` (+ optional aux `[B, 1]`, e.g. the
    /// MCT head's message size) `-> [B, 1]` normalized predictions.
    ///
    /// Per-window results are **batch-composition invariant**: every
    /// kernel in the forward path works row-wise (GEMM rows, per-row
    /// softmax/layer-norm, per-sample attention), so window `i` of a
    /// batch gets bit-for-bit the prediction it would get alone — the
    /// property that lets the [`crate::Batcher`] coalesce arbitrary
    /// requests without changing anyone's answer.
    pub fn predict(&self, kind: &str, windows: &Tensor, aux: Option<&Tensor>) -> Tensor {
        let head = self.head(kind).unwrap_or_else(|| {
            panic!(
                "engine has no {kind:?} head (loaded: {:?})",
                self.head_kinds()
            )
        });
        let shape = windows.shape();
        assert_eq!(shape.len(), 3, "predict expects [B, T, F] windows");
        assert_eq!(shape[1], self.seq_len(), "window length mismatch");
        assert_eq!(shape[2], NUM_FEATURES, "feature count mismatch");
        assert_eq!(
            head.needs_aux(),
            aux.is_some(),
            "{kind:?} head aux-input mismatch"
        );
        // Chaos site: a seeded plan can stretch this forward pass
        // (simulating a slow model or contended accelerator) so the
        // layers above prove their queue bounds and deadlines hold
        // under slow service. One relaxed load when chaos is off.
        ntt_chaos::maybe_delay("serve.predict.delay");
        // The reset seed is constant: nothing stochastic runs in eval
        // mode, and a fixed seed keeps serving a pure function of the
        // inputs. Inputs are staged as arena-pooled copies, so a warm
        // engine allocates nothing per request.
        let _span = ntt_obs::span!("serve.predict_ns");
        let out = self.tapes.with(0, |tape| {
            let encoded = self.model.forward(tape, tape.input_copy(windows));
            head.forward_head(tape, encoded, aux.map(|a| tape.input_copy(a)))
                .value()
        });
        self.served.add(shape[0] as u64);
        ntt_obs::counter!("serve.windows_served").add(shape[0] as u64);
        out
    }

    /// Convert a normalized delay prediction back to seconds.
    pub fn denorm_delay(&self, z: f32) -> f32 {
        self.norm.invert_one(CH_DELAY, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn predict_matches_a_hand_wired_inference_tape_bit_for_bit() {
        let eng = tiny_engine(0.1);
        let x = Tensor::randn(&[3, eng.seq_len(), NUM_FEATURES], 5);
        let served = eng.predict("delay", &x, None);
        let head = eng.head("delay").unwrap();
        // Bit-exact reference: a hand-built inference tape runs the
        // same fused-attention path as the engine's pooled tapes.
        let infer = Tape::inference_with_seed(0);
        let expect = head
            .forward_head(
                &infer,
                eng.model.forward(&infer, infer.input(x.clone())),
                None,
            )
            .value();
        assert_eq!(served, expect);
        // Epsilon reference: a recording tape runs classic (unfused)
        // attention, so cross-mode agreement is close, not bitwise —
        // the documented fused-attention contract.
        let rec = Tape::new();
        let classic = head
            .forward_head(&rec, eng.model.forward(&rec, rec.input(x.clone())), None)
            .value();
        assert!(served.allclose(&classic, 1e-4), "fused path drifted");
        assert_eq!(eng.windows_served(), 3);
        // Repeat through the pooled (reset) tape: still identical.
        assert_eq!(eng.predict("delay", &x, None), expect);
    }

    #[test]
    fn per_window_results_are_batch_composition_invariant() {
        let eng = tiny_engine(0.0);
        let x = Tensor::randn(&[4, eng.seq_len(), NUM_FEATURES], 6);
        let batched = eng.predict("delay", &x, None);
        let row = eng.seq_len() * NUM_FEATURES;
        for i in 0..4 {
            let one = Tensor::from_vec(
                x.data()[i * row..(i + 1) * row].to_vec(),
                &[1, eng.seq_len(), NUM_FEATURES],
            );
            let alone = eng.predict("delay", &one, None);
            assert_eq!(
                alone.data()[0].to_bits(),
                batched.data()[i].to_bits(),
                "window {i} changed under batching"
            );
        }
    }

    #[test]
    fn results_are_invariant_across_mixed_batch_compositions() {
        // Stronger than solo-vs-batched: the same window must produce
        // identical bits whatever its companions and position are —
        // batch 4 (position i), batch 2 pairings, and reversed order
        // all agree. This is what lets the batcher coalesce arbitrary
        // request mixes without changing anyone's answer.
        let eng = tiny_engine(0.0);
        let x = Tensor::randn(&[4, eng.seq_len(), NUM_FEATURES], 16);
        let row = eng.seq_len() * NUM_FEATURES;
        let window = |i: usize| x.data()[i * row..(i + 1) * row].to_vec();
        let compose = |ids: &[usize]| {
            let mut data = Vec::new();
            for &i in ids {
                data.extend_from_slice(&window(i));
            }
            Tensor::from_vec(data, &[ids.len(), eng.seq_len(), NUM_FEATURES])
        };
        let full = eng.predict("delay", &compose(&[0, 1, 2, 3]), None);
        for (ids, pick) in [
            (&[3, 2, 1, 0][..], &[(3usize, 0usize), (0, 3)][..]),
            (&[1, 3][..], &[(1, 0), (3, 1)][..]),
            (&[2][..], &[(2, 0)][..]),
        ] {
            let out = eng.predict("delay", &compose(ids), None);
            for &(win, pos) in pick {
                assert_eq!(
                    full.data()[win].to_bits(),
                    out.data()[pos].to_bits(),
                    "window {win} changed riding at position {pos} of {ids:?}"
                );
            }
        }
    }

    #[test]
    fn aux_heads_are_enforced() {
        let eng = tiny_engine(0.0);
        let x = Tensor::randn(&[2, eng.seq_len(), NUM_FEATURES], 7);
        let aux = Tensor::randn(&[2, 1], 8);
        let out = eng.predict("mct", &x, Some(&aux));
        assert_eq!(out.shape(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "aux-input mismatch")]
    fn missing_aux_is_rejected() {
        let eng = tiny_engine(0.0);
        let x = Tensor::randn(&[1, eng.seq_len(), NUM_FEATURES], 9);
        eng.predict("mct", &x, None);
    }

    #[test]
    #[should_panic(expected = "no \"nope\" head")]
    fn unknown_head_is_rejected() {
        let eng = tiny_engine(0.0);
        let x = Tensor::zeros(&[1, eng.seq_len(), NUM_FEATURES]);
        eng.predict("nope", &x, None);
    }
}
