//! Single-stream windowed inference: feed packets, read predictions.
//!
//! An [`InferenceSession`] is the operator-facing serving primitive for
//! one traffic stream: push receiver-side packet observations
//! ([`ntt_data::PacketView`]) as they arrive; once `seq_len` packets of
//! history exist, every `stride`-th push featurizes the current window
//! — through the **same** [`ntt_data::featurize_window`] path the
//! training datasets use, with the most recent packet's delay masked
//! exactly as in pre-training — and predicts that packet's delay.

use crate::engine::InferenceEngine;
use ntt_data::{featurize_window, PacketView, NUM_FEATURES};
use ntt_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;

/// Session knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Predict on every `stride`-th packet once the window is warm
    /// (1 = every packet).
    pub stride: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { stride: 1 }
    }
}

/// One delay prediction for the stream's most recent packet.
#[derive(Debug, Clone, Copy)]
pub struct DelayPrediction {
    /// Arrival time of the predicted packet (seconds).
    pub t_secs: f64,
    /// Model output in normalized units.
    pub predicted_norm: f32,
    /// Model output converted back to seconds.
    pub predicted_secs: f32,
    /// Ground-truth delay carried on the observation (seconds) — what
    /// the masked feature hid from the model.
    pub actual_secs: f32,
}

/// Sliding-window inference over one packet stream.
pub struct InferenceSession {
    engine: Arc<InferenceEngine>,
    cfg: SessionConfig,
    window: VecDeque<PacketView>,
    seq_len: usize,
    /// Pushes since the last prediction (drives the stride).
    since_pred: usize,
    pushed: u64,
    predicted: u64,
}

impl InferenceSession {
    /// A session over `engine` (which must carry a `"delay"` head).
    pub fn new(engine: Arc<InferenceEngine>, cfg: SessionConfig) -> Self {
        assert!(cfg.stride >= 1, "stride must be at least 1");
        assert!(
            engine.head("delay").is_some(),
            "delay sessions need an engine with a \"delay\" head (loaded: {:?})",
            engine.head_kinds()
        );
        let seq_len = engine.seq_len();
        InferenceSession {
            engine,
            cfg,
            window: VecDeque::with_capacity(seq_len),
            seq_len,
            since_pred: 0,
            pushed: 0,
            predicted: 0,
        }
    }

    /// Packets observed so far.
    pub fn packets_seen(&self) -> u64 {
        self.pushed
    }

    /// Predictions produced so far.
    pub fn predictions_made(&self) -> u64 {
        self.predicted
    }

    /// True once `seq_len` packets of history exist.
    pub fn is_warm(&self) -> bool {
        self.window.len() == self.seq_len
    }

    /// Observe one packet. Returns a prediction when the window is warm
    /// and the stride says this packet is a prediction point.
    pub fn push(&mut self, pkt: PacketView) -> Option<DelayPrediction> {
        if self.window.len() == self.seq_len {
            self.window.pop_front();
        }
        self.window.push_back(pkt);
        self.pushed += 1;
        ntt_obs::counter!("serve.session.packets").inc();
        if self.window.len() < self.seq_len {
            // Warming up: lag = packets still missing before the first
            // prediction can happen.
            ntt_obs::gauge!("serve.session.window_lag")
                .set((self.seq_len - self.window.len()) as f64);
            return None;
        }
        self.since_pred += 1;
        // Window lag: packets observed since the stream's last
        // prediction — how stale the newest answer is right now.
        ntt_obs::gauge!("serve.session.window_lag").set(if self.since_pred < self.cfg.stride {
            self.since_pred as f64
        } else {
            0.0
        });
        if self.since_pred < self.cfg.stride {
            return None;
        }
        self.since_pred = 0;
        Some(self.predict_current(pkt))
    }

    fn predict_current(&mut self, last: PacketView) -> DelayPrediction {
        let feats = featurize_window(
            self.window.make_contiguous(),
            self.engine.norm(),
            self.engine.cfg().features,
            true, // mask the delay being predicted, as in pre-training
        );
        let x = Tensor::from_vec(feats, &[1, self.seq_len, NUM_FEATURES]);
        let z = self.engine.predict("delay", &x, None).item();
        self.predicted += 1;
        ntt_obs::counter!("serve.session.predictions").inc();
        DelayPrediction {
            t_secs: last.t,
            predicted_norm: z,
            predicted_secs: self.engine.denorm_delay(z),
            actual_secs: last.delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{synth_packets, tiny_engine};

    #[test]
    fn warms_up_then_predicts_every_stride() {
        let eng = Arc::new(tiny_engine(0.0));
        let seq = eng.seq_len();
        let mut sess = InferenceSession::new(Arc::clone(&eng), SessionConfig { stride: 3 });
        let pkts = synth_packets(seq + 9, 1);
        let mut preds = Vec::new();
        for (i, &p) in pkts.iter().enumerate() {
            let out = sess.push(p);
            if i + 1 < seq {
                assert!(out.is_none(), "no prediction before warmup");
            }
            preds.extend(out);
        }
        assert!(sess.is_warm());
        assert_eq!(sess.packets_seen(), (seq + 9) as u64);
        // Warm at seq; strides of 3 over the remaining 10 pushes.
        assert_eq!(preds.len(), 3);
        assert_eq!(sess.predictions_made(), 3);
        for p in &preds {
            assert!(p.predicted_secs.is_finite());
            assert!(p.actual_secs >= 0.0);
        }
    }

    #[test]
    fn session_features_match_dataset_featurization() {
        // The window the session predicts on must be bit-identical to
        // what a DelayDataset would build for the same packets.
        use ntt_data::{DatasetConfig, DelayDataset, RunData, TraceData};
        let eng = Arc::new(tiny_engine(0.0));
        let seq = eng.seq_len();
        let pkts = synth_packets(seq, 2);
        let mut sess = InferenceSession::new(Arc::clone(&eng), SessionConfig::default());
        let pred = pkts
            .iter()
            .filter_map(|&p| sess.push(p))
            .next()
            .expect("one full window predicts");
        // Dataset route over the same packets and normalizer.
        let data = TraceData::from_runs(vec![RunData {
            pkts: pkts.clone(),
            anchors: vec![],
        }]);
        let cfg = DatasetConfig {
            seq_len: seq,
            stride: 1,
            test_fraction: 0.0,
        };
        let (train, _) = DelayDataset::build(data, cfg, Some(eng.norm().clone()));
        let (x, y) = train.batch(&[0]);
        let direct = eng.predict("delay", &x, None).item();
        assert_eq!(pred.predicted_norm.to_bits(), direct.to_bits());
        // And the dataset's target is the same ground truth.
        assert_eq!(train.denorm_delay(y.item()), pred.actual_secs);
    }
}
