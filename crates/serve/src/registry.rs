//! Named, `Arc`-shared engines: the multi-model front door.
//!
//! A serving process typically holds several models at once (per
//! environment, per task mix, per rollout stage). The registry maps
//! names to immutable [`InferenceEngine`]s behind `Arc`s — loading a
//! checkpoint materializes the weights exactly once, and every session
//! or batcher that serves the model clones only the `Arc`.
//!
//! The map is a `BTreeMap` on purpose: listings (`names`) and any
//! future iteration over the registry come out in stable sorted order,
//! never in a hash order that varies per process.

use crate::engine::InferenceEngine;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Thread-safe name → engine map (sorted, so enumeration is stable).
#[derive(Default)]
pub struct ModelRegistry {
    engines: RwLock<BTreeMap<String, Arc<InferenceEngine>>>,
}

impl ModelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror the current model count onto the `serve.registry.models`
    /// gauge (called under the write lock, so the gauge tracks every
    /// mutation in order).
    fn track_count(&self, n: usize) {
        ntt_obs::gauge!("serve.registry.models").set(n as f64);
    }

    /// Load an `NTTCKPT2` checkpoint under `name`. Replaces any engine
    /// previously registered under that name (in-flight requests on the
    /// old engine finish on their own `Arc`).
    ///
    /// **Atomic on failure — last-good retention.** The checkpoint is
    /// fully read, validated, and instantiated *before* the map is
    /// touched; a corrupt, truncated, or missing file returns the
    /// `io::Error` and leaves any engine already live under `name`
    /// serving untouched. A hot-swap that fails therefore degrades to
    /// "keep the last good model", never to "no model". Failed loads
    /// count on `serve.registry.load_failures`.
    pub fn load(&self, name: &str, path: impl AsRef<Path>) -> io::Result<Arc<InferenceEngine>> {
        let engine = match InferenceEngine::load(path) {
            Ok(e) => Arc::new(e),
            Err(e) => {
                ntt_obs::counter!("serve.registry.load_failures").inc();
                return Err(e);
            }
        };
        // A poisoned lock means some writer panicked mid-update; the
        // map itself (String -> Arc) is never torn, so recover it.
        let mut map = self.engines.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&engine));
        self.track_count(map.len());
        Ok(engine)
    }

    /// Register an already-built engine under `name`.
    pub fn insert(&self, name: &str, engine: InferenceEngine) -> Arc<InferenceEngine> {
        let engine = Arc::new(engine);
        // Recoverable for the same reason as `load`.
        let mut map = self.engines.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&engine));
        self.track_count(map.len());
        engine
    }

    /// The engine registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<InferenceEngine>> {
        // Recoverable: lookups on a recovered map are always coherent.
        self.engines
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Unregister `name`, returning the engine if it was present.
    pub fn remove(&self, name: &str) -> Option<Arc<InferenceEngine>> {
        // Recoverable for the same reason as `load`.
        let mut map = self.engines.write().unwrap_or_else(|e| e.into_inner());
        let removed = map.remove(name);
        self.track_count(map.len());
        removed
    }

    /// Registered names, sorted (free: the map is ordered).
    pub fn names(&self) -> Vec<String> {
        // Recoverable: lookups on a recovered map are always coherent.
        self.engines
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        // Recoverable: lookups on a recovered map are always coherent.
        self.engines.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_engine;

    #[test]
    fn insert_get_remove_roundtrip() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let a = reg.insert("case1", tiny_engine(0.0));
        reg.insert("case2", tiny_engine(0.0));
        assert_eq!(reg.names(), vec!["case1", "case2"]);
        assert!(Arc::ptr_eq(&reg.get("case1").unwrap(), &a));
        assert!(reg.get("missing").is_none());
        let removed = reg.remove("case1").unwrap();
        assert!(Arc::ptr_eq(&removed, &a));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn loading_a_checkpoint_shares_one_engine() {
        // Save a tiny pretrained model, load it through the registry,
        // and confirm clones of the Arc are the same engine.
        let eng = tiny_engine(0.0);
        let path = std::env::temp_dir().join(format!("ntt_registry_{}.ckpt", std::process::id()));
        crate::test_util::save_engine_checkpoint(&eng, &path);
        let reg = ModelRegistry::new();
        let loaded = reg.load("m", &path).expect("load checkpoint");
        assert_eq!(loaded.seq_len(), eng.seq_len());
        assert!(Arc::ptr_eq(&loaded, &reg.get("m").unwrap()));
        assert!(reg.load("bad", "/nonexistent/file.ckpt").is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_hot_swap_keeps_the_last_good_model() {
        // A rollout writes a damaged checkpoint and reloads it over a
        // live name: the load must fail with a typed io::Error and the
        // registry must keep serving the previous engine — atomic on
        // failure, no window where `get` comes back empty or broken.
        let eng = tiny_engine(0.0);
        let dir = std::env::temp_dir();
        let good = dir.join(format!("ntt_lastgood_ok_{}.ckpt", std::process::id()));
        let bad = dir.join(format!("ntt_lastgood_bad_{}.ckpt", std::process::id()));
        crate::test_util::save_engine_checkpoint(&eng, &good);
        // Damage two ways: truncation (mid-file cut) and corruption
        // (flipped byte under an intact length).
        let bytes = std::fs::read(&good).expect("read good checkpoint");
        let reg = ModelRegistry::new();
        let live = reg.load("model", &good).expect("initial load");
        for (label, damaged) in [
            ("truncated", bytes[..bytes.len() / 3].to_vec()),
            ("corrupted", {
                let mut b = bytes.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x5a;
                b
            }),
        ] {
            std::fs::write(&bad, &damaged).expect("write damaged checkpoint");
            let err = match reg.load("model", &bad) {
                Err(e) => e,
                Ok(_) => panic!("{label} checkpoint must fail to load"),
            };
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{label}");
            // The old engine is still the registered one, still serving.
            let still = reg.get("model").expect("name still registered");
            assert!(
                Arc::ptr_eq(&still, &live),
                "{label} load must not disturb the live engine"
            );
            assert_eq!(reg.len(), 1);
        }
        // A subsequent good load still swaps cleanly.
        let swapped = reg.load("model", &good).expect("recovery load");
        assert!(!Arc::ptr_eq(&swapped, &live), "fresh engine after recovery");
        std::fs::remove_file(good).ok();
        std::fs::remove_file(bad).ok();
    }
}
