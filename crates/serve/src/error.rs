//! Typed errors for client-reachable serving paths.
//!
//! A serving process must not panic on a request path (lint R6): a bad
//! request, a shut-down pool, or a crashed worker are *runtime
//! conditions a caller can hit*, and each maps to a [`ServeError`]
//! variant the caller can match on. Panics remain only for invariants
//! that are established at construction and cannot be violated by any
//! request — each such site carries a `// PANIC-OK:` justification.

use std::error::Error;
use std::fmt;

/// Why a request could not be accepted or answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submitted window has the wrong number of features.
    WindowLength { got: usize, want: usize },
    /// The head's aux-input requirement does not match the request:
    /// `needs_aux` says what the head expects.
    AuxMismatch { head: &'static str, needs_aux: bool },
    /// The batcher is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A worker thread panicked; the batcher rejects new submissions
    /// (accepting requests nobody will answer would hang the client).
    Poisoned,
    /// The worker serving this request died before answering; the
    /// ticket can never resolve.
    WorkerDied,
    /// The admission queue is full (`cap` requests waiting): the
    /// batcher sheds load instead of queuing unboundedly. Back off and
    /// retry.
    Overloaded { cap: usize },
    /// The request's deadline passed before a worker could serve it.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WindowLength { got, want } => {
                write!(f, "window has {got} values, engine expects {want}")
            }
            ServeError::AuxMismatch { head, needs_aux } => {
                if *needs_aux {
                    write!(f, "{head:?} head requires an aux scalar, none given")
                } else {
                    write!(f, "{head:?} head takes no aux scalar, one given")
                }
            }
            ServeError::ShuttingDown => write!(f, "batcher is shutting down"),
            ServeError::Poisoned => {
                write!(f, "batcher is dead: a worker thread panicked")
            }
            ServeError::WorkerDied => {
                write!(f, "batcher worker died before answering")
            }
            ServeError::Overloaded { cap } => {
                write!(f, "batcher queue is full ({cap} requests waiting)")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline passed before a worker claimed it")
            }
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::WindowLength { got: 3, want: 96 };
        assert!(e.to_string().contains('3') && e.to_string().contains("96"));
        let e = ServeError::AuxMismatch {
            head: "mct",
            needs_aux: true,
        };
        assert!(e.to_string().contains("mct"));
        assert!(ServeError::Poisoned.to_string().contains("panicked"));
    }
}
