//! Property-based tests of the micro-batching front end: for random
//! request counts, batch limits, worker counts, and wait interleavings,
//! every response must be bit-identical to the serial reference (each
//! window predicted alone, in arrival order). This is the contract that
//! makes coalescing safe to enable everywhere: batching is a throughput
//! knob, never a numerics knob.

use ntt_core::{Aggregation, DelayHead, MctHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_nn::Head;
use ntt_serve::{BatchConfig, Batcher, InferenceEngine, Ticket};
use ntt_tensor::{splitmix64, Tensor};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_engine() -> Arc<InferenceEngine> {
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed: 17,
        ..NttConfig::default()
    };
    let heads: Vec<Box<dyn Head>> = vec![
        Box::new(DelayHead::new(cfg.d_model, 1)),
        Box::new(MctHead::new(cfg.d_model, 2)),
    ];
    Arc::new(InferenceEngine::from_parts(
        Ntt::new(cfg),
        heads,
        Normalizer::identity(NUM_FEATURES),
    ))
}

/// Split `[n, T, F]` into per-request rows.
fn rows(engine: &InferenceEngine, all: &Tensor) -> Vec<Vec<f32>> {
    let row = engine.seq_len() * NUM_FEATURES;
    (0..all.shape()[0])
        .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batcher_matches_serial_reference_under_random_interleavings(
        n in 1usize..24,
        max_batch in 1usize..9,
        workers in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let engine = tiny_engine();
        let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed ^ 0xabcd);
        let windows = rows(&engine, &all);

        // Serial reference: every window predicted alone.
        let expect: Vec<f32> = windows
            .iter()
            .map(|w| {
                let x = Tensor::from_vec(w.clone(), &[1, engine.seq_len(), NUM_FEATURES]);
                engine.predict("delay", &x, None).item()
            })
            .collect();

        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { max_batch, workers, head: "delay", ..BatchConfig::default() },
        );

        // Submit everything, waiting on random subsets of outstanding
        // tickets along the way (random interleaving of producers and
        // consumers exercises every coalescing shape from 1 to
        // max_batch, including worker races).
        let mut state = seed;
        let mut outstanding: Vec<(usize, Ticket)> = Vec::new();
        let mut got: Vec<(usize, f32)> = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            outstanding.push((i, batcher.submit(w.clone(), None).unwrap()));
            while !outstanding.is_empty() && splitmix64(&mut state).is_multiple_of(3) {
                let j = (splitmix64(&mut state) as usize) % outstanding.len();
                let (idx, t) = outstanding.swap_remove(j);
                got.push((idx, t.wait().unwrap()));
            }
        }
        for (idx, t) in outstanding {
            got.push((idx, t.wait().unwrap()));
        }

        prop_assert_eq!(got.len(), n);
        for (idx, v) in got {
            prop_assert_eq!(
                v.to_bits(),
                expect[idx].to_bits(),
                "window {} diverged from the serial reference",
                idx
            );
        }
        let stats = batcher.stats();
        prop_assert_eq!(stats.windows, n as u64);
        prop_assert!(stats.largest_batch <= max_batch);
        prop_assert!(stats.batches >= n.div_ceil(max_batch) as u64);
    }

    #[test]
    fn aux_heads_batch_identically(
        n in 1usize..12,
        max_batch in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let engine = tiny_engine();
        let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed ^ 0x77);
        let windows = rows(&engine, &all);
        let auxes: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 1.0).collect();

        let expect: Vec<f32> = windows
            .iter()
            .zip(&auxes)
            .map(|(w, &a)| {
                let x = Tensor::from_vec(w.clone(), &[1, engine.seq_len(), NUM_FEATURES]);
                let aux = Tensor::from_vec(vec![a], &[1, 1]);
                engine.predict("mct", &x, Some(&aux)).item()
            })
            .collect();

        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { max_batch, workers: 2, head: "mct", ..BatchConfig::default() },
        );
        let tickets: Vec<Ticket> = windows
            .iter()
            .zip(&auxes)
            .map(|(w, &a)| batcher.submit(w.clone(), Some(a)).unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expect) {
            prop_assert_eq!(t.wait().unwrap().to_bits(), e.to_bits());
        }
    }

    /// Submissions racing a shutdown must never hang or lose a request:
    /// every `submit` either rejects with `ShuttingDown`/`Poisoned`
    /// (nothing was queued) or returns a ticket that resolves — and in
    /// the no-fault case, resolves to the correct answer. This is the
    /// drain contract of `Batcher::shutdown`/`Drop` exercised from many
    /// threads at a random point in the submission stream.
    #[test]
    fn shutdown_racing_concurrent_submits_never_strands_a_ticket(
        producers in 1usize..4,
        per_producer in 1usize..12,
        max_batch in 1usize..5,
        workers in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let engine = tiny_engine();
        let all = Tensor::randn(&[1, engine.seq_len(), NUM_FEATURES], seed ^ 0x5151);
        let window = rows(&engine, &all).remove(0);
        let expect = {
            let x = Tensor::from_vec(window.clone(), &[1, engine.seq_len(), NUM_FEATURES]);
            engine.predict("delay", &x, None).item()
        };

        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { max_batch, workers, head: "delay", ..BatchConfig::default() },
        );
        // A random fraction of the stream goes in before shutdown is
        // even signalled; the rest races it.
        let before = {
            let mut s = seed ^ 0xd00d;
            (splitmix64(&mut s) as usize) % (producers * per_producer + 1)
        };
        let accepted = std::sync::atomic::AtomicUsize::new(0);
        let rejected = std::sync::atomic::AtomicUsize::new(0);
        let resolved = std::sync::atomic::AtomicUsize::new(0);
        let submitted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..producers {
                s.spawn(|| {
                    for _ in 0..per_producer {
                        submitted.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        match batcher.submit(window.clone(), None) {
                            Ok(t) => {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                // An accepted ticket always resolves —
                                // with the right bits, since no worker
                                // faults in this test.
                                assert_eq!(t.wait().unwrap().to_bits(), expect.to_bits());
                                resolved.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            }
                            Err(e) => {
                                assert_eq!(e, ntt_serve::ServeError::ShuttingDown);
                                rejected.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            }
                        }
                    }
                });
            }
            // Shut down somewhere in the middle of the stream.
            while submitted.load(std::sync::atomic::Ordering::SeqCst) < before {
                std::thread::yield_now();
            }
            batcher.shutdown();
        });
        let accepted = accepted.into_inner();
        let rejected = rejected.into_inner();
        prop_assert_eq!(accepted + rejected, producers * per_producer);
        prop_assert_eq!(resolved.into_inner(), accepted, "every accepted ticket resolved");
        // Post-drain accounting agrees: each accepted request was served.
        prop_assert_eq!(batcher.stats().windows, accepted as u64);
        drop(batcher); // drop after shutdown: drain already done, joins cleanly
    }
}
