//! End-to-end loopback tests: a real `NetServer` on an ephemeral port,
//! real `NetClient`s, real threads. The core contract is the
//! acceptance bar from the serving tier's issue: predictions that
//! crossed the wire are **byte-identical** to calling
//! `InferenceEngine::predict` directly — TCP framing, routing, and
//! batcher coalescing add exactly zero numeric surface. On top of
//! that: exact overload accounting (every request is answered or
//! typed-shed, nothing vanishes), stable error codes for routing
//! misses, unix-socket parity, and the SLO controller demonstrably
//! shrinking `max_batch` at low load.

use ntt_core::{Aggregation, DelayHead, MctHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_net::adaptive::SloConfig;
use ntt_net::{ErrorCode, NetClient, NetConfig, NetServer};
use ntt_serve::{BatchConfig, InferenceEngine, ModelRegistry};
use ntt_tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

fn tiny_engine(seed: u64) -> InferenceEngine {
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed,
        ..NttConfig::default()
    };
    let heads: Vec<Box<dyn ntt_nn::Head>> = vec![
        Box::new(DelayHead::new(cfg.d_model, 1)),
        Box::new(MctHead::new(cfg.d_model, 2)),
    ];
    InferenceEngine::from_parts(Ntt::new(cfg), heads, Normalizer::identity(NUM_FEATURES))
}

fn registry_with(models: &[(&str, u64)]) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for &(name, seed) in models {
        registry.insert(name, tiny_engine(seed));
    }
    registry
}

/// Deterministic per-request windows: row `i` of a fixed random batch.
fn windows(engine: &InferenceEngine, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let all = Tensor::randn(&[n, engine.seq_len(), NUM_FEATURES], seed);
    let row = engine.seq_len() * NUM_FEATURES;
    (0..n)
        .map(|i| all.data()[i * row..(i + 1) * row].to_vec())
        .collect()
}

fn direct_prediction(engine: &InferenceEngine, head: &str, window: &[f32]) -> f32 {
    let x = Tensor::from_vec(window.to_vec(), &[1, engine.seq_len(), NUM_FEATURES]);
    engine.predict(head, &x, None).item()
}

#[test]
fn eight_connections_are_byte_identical_to_direct_predict() {
    let registry = registry_with(&[("pretrain", 11), ("finetune", 12)]);
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 8,
                workers: 2,
                ..BatchConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp server has an address");

    // 8 client threads, each its own connection, each alternating
    // between the two models so routing and pool creation race.
    const CONNS: usize = 8;
    const PER_CONN: usize = 10;
    let results: Vec<Vec<(String, usize, f32)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                let registry = &registry;
                s.spawn(move || {
                    let model = if c % 2 == 0 { "pretrain" } else { "finetune" };
                    let engine = registry.get(model).expect("model registered");
                    let wins = windows(&engine, PER_CONN, 0x100 + c as u64);
                    let mut client = NetClient::connect_tcp(addr).expect("connect");
                    wins.iter()
                        .enumerate()
                        .map(|(i, w)| {
                            let v = client
                                .predict(model, "delay", w, None, None)
                                .expect("served prediction");
                            (model.to_string(), i, v)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical to the in-process engine, request by request.
    for (c, per_conn) in results.iter().enumerate() {
        let model = if c % 2 == 0 { "pretrain" } else { "finetune" };
        let engine = registry.get(model).expect("model registered");
        let wins = windows(&engine, PER_CONN, 0x100 + c as u64);
        assert_eq!(per_conn.len(), PER_CONN);
        for (got_model, i, served) in per_conn {
            assert_eq!(got_model, model);
            let direct = direct_prediction(&engine, "delay", &wins[*i]);
            assert_eq!(
                served.to_bits(),
                direct.to_bits(),
                "conn {c} window {i}: wire prediction diverged from direct predict"
            );
        }
    }
    drop(server);
}

#[test]
fn overload_and_deadline_shed_with_exact_accounting() {
    let registry = registry_with(&[("pretrain", 21)]);
    // A deliberately tiny pool: 1 worker, singleton batches, 4-deep
    // queue — so 8 connections re-submitting as fast as they can *must*
    // shed, and short-deadline requests *must* expire in queue.
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 1,
                workers: 1,
                queue_cap: 4,
                ..BatchConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let engine = registry.get("pretrain").expect("registered");

    const CONNS: usize = 8;
    const PER_CONN: usize = 25;
    let tallies: Vec<(usize, usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let wins = windows(&engine, 4, 0x900 + c as u64);
                    let mut client = NetClient::connect_tcp(addr).expect("connect");
                    let (mut ok, mut overloaded, mut deadline) = (0usize, 0usize, 0usize);
                    for i in 0..PER_CONN {
                        // Odd requests carry a deadline far below the
                        // model's forward-pass time, so any queueing at
                        // all expires them.
                        let d = (i % 2 == 1).then(|| Duration::from_micros(200));
                        match client.predict("pretrain", "delay", &wins[i % 4], None, d) {
                            Ok(_) => ok += 1,
                            Err(e) => match e.code() {
                                Some(ErrorCode::Overloaded) => overloaded += 1,
                                Some(ErrorCode::DeadlineExceeded) => deadline += 1,
                                other => panic!("unexpected failure {other:?}: {e}"),
                            },
                        }
                    }
                    (ok, overloaded, deadline)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok: usize = tallies.iter().map(|t| t.0).sum();
    let overloaded: usize = tallies.iter().map(|t| t.1).sum();
    let deadline: usize = tallies.iter().map(|t| t.2).sum();
    // Exact accounting: every request sent got exactly one answer, and
    // every answer was ok / overloaded / deadline-exceeded.
    assert_eq!(
        ok + overloaded + deadline,
        CONNS * PER_CONN,
        "requests vanished or were double-counted"
    );
    assert!(ok > 0, "nothing succeeded — the pool never served");
    assert!(
        overloaded + deadline > 0,
        "an 8-way hammer against a 4-deep queue never shed"
    );
    drop(server);
}

#[test]
fn routing_misses_return_stable_codes() {
    let registry = registry_with(&[("pretrain", 31)]);
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&registry), NetConfig::default())
        .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let engine = registry.get("pretrain").expect("registered");
    let w = windows(&engine, 1, 7).remove(0);
    let mut client = NetClient::connect_tcp(addr).expect("connect");

    let e = client
        .predict("nope", "delay", &w, None, None)
        .expect_err("unknown model must fail");
    assert_eq!(e.code(), Some(ErrorCode::UnknownModel));
    assert!(
        e.to_string().contains("pretrain"),
        "the error names what IS registered: {e}"
    );

    let e = client
        .predict("pretrain", "nope", &w, None, None)
        .expect_err("unknown head must fail");
    assert_eq!(e.code(), Some(ErrorCode::UnknownHead));

    let e = client
        .predict("pretrain", "delay", &w[..10], None, None)
        .expect_err("short window must fail");
    assert_eq!(e.code(), Some(ErrorCode::WindowLength));

    let e = client
        .predict("pretrain", "delay", &w, Some(1.0), None)
        .expect_err("delay head takes no aux");
    assert_eq!(e.code(), Some(ErrorCode::AuxMismatch));

    // The connection survives typed errors: a good request still works.
    let served = client
        .predict("pretrain", "delay", &w, None, None)
        .expect("good request after typed errors");
    assert_eq!(
        served.to_bits(),
        direct_prediction(&engine, "delay", &w).to_bits()
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_identically_to_tcp() {
    let registry = registry_with(&[("pretrain", 41)]);
    let path = std::env::temp_dir().join(format!("ntt_net_test_{}.sock", std::process::id()));
    let server = NetServer::bind_unix(&path, Arc::clone(&registry), NetConfig::default())
        .expect("bind unix");
    let engine = registry.get("pretrain").expect("registered");
    let wins = windows(&engine, 4, 51);
    let mut client = NetClient::connect_unix(&path).expect("connect unix");
    for w in &wins {
        let served = client
            .predict("pretrain", "delay", w, None, None)
            .expect("unix prediction");
        assert_eq!(
            served.to_bits(),
            direct_prediction(&engine, "delay", w).to_bits()
        );
    }
    drop(server);
    assert!(!path.exists(), "socket file must be removed on server drop");
}

#[test]
fn connection_cap_sheds_with_a_typed_frame() {
    let registry = registry_with(&[("pretrain", 61)]);
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let engine = registry.get("pretrain").expect("registered");
    let w = windows(&engine, 1, 71).remove(0);

    // First connection occupies the only slot (proven live by a
    // request); the second must receive one Overloaded frame.
    let mut first = NetClient::connect_tcp(addr).expect("connect first");
    first
        .predict("pretrain", "delay", &w, None, None)
        .expect("first connection serves");
    // The overflow peer may need a beat: the accept loop sheds only
    // once the first connection's thread is counted.
    let mut last_err = None;
    for _ in 0..50 {
        let mut second = NetClient::connect_tcp(addr).expect("connect second");
        match second.predict("pretrain", "delay", &w, None, None) {
            Err(e) => {
                if e.code() == Some(ErrorCode::Overloaded) {
                    last_err = Some(e);
                    break;
                }
                // Io error (connection closed before the shed frame
                // arrived) — retry; the cap itself is what we assert.
                last_err = Some(e);
            }
            Ok(_) => {
                // The slot freed (first conn thread not yet counted);
                // keep hammering.
                last_err = None;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let e = last_err.expect("overflow connection never rejected");
    assert_eq!(
        e.code(),
        Some(ErrorCode::Overloaded),
        "overflow connection got {e} instead of a typed Overloaded frame"
    );
    drop(first);
    drop(server);
}

#[test]
fn adaptive_controller_shrinks_max_batch_at_low_load() {
    let registry = registry_with(&[("pretrain", 81)]);
    // Start oversized: max_batch 32 with a 5ms gather window means a
    // lone request waits out the window before its batch is cut. At a
    // serial trickle the controller must observe under-filled batches
    // missing the 2ms SLO and halve its way down.
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 32,
                workers: 1,
                gather: Some(Duration::from_millis(5)),
                ..BatchConfig::default()
            },
            slo: Some(SloConfig {
                p99_target: Duration::from_millis(2),
                min_batch: 1,
                max_batch: 32,
                tick: Duration::from_millis(20),
            }),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let engine = registry.get("pretrain").expect("registered");
    let wins = windows(&engine, 4, 91);
    let mut client = NetClient::connect_tcp(addr).expect("connect");

    // Serial low load for ~0.5s: every request eats the gather wait, so
    // the controller keeps seeing p99 >> target with mean fill ≈ 1.
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    while t0.elapsed() < Duration::from_millis(500) {
        client
            .predict("pretrain", "delay", &wins[sent % 4], None, None)
            .expect("low-load prediction");
        sent += 1;
    }
    let tuned = server
        .pool_max_batch("pretrain", "delay")
        .expect("pool exists after traffic");
    assert!(
        tuned < 32,
        "controller never shrank max_batch from 32 (still {tuned}) after {sent} serial requests"
    );
    drop(server);
}
