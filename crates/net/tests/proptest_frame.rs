//! Property tests of the NTTWIRE1 codec — the pure functions a remote
//! peer's bytes flow through. Three contracts: (1) encode→decode is the
//! identity for every well-formed request and response; (2) no
//! truncation of a valid body decodes (exact-consumption framing means
//! no frame is a prefix of another); (3) arbitrary mangled bytes and
//! hostile length prefixes produce typed `FrameError`s — never a
//! panic, and never an allocation sized by attacker-controlled input
//! beyond the protocol's hard `MAX_BODY`.

use ntt_net::frame::{
    body_len, decode_body, encode_request, encode_response, FrameError, MAX_BODY, MAX_NAME,
    MAX_WINDOW,
};
use ntt_net::{ErrorCode, Frame, Request, Response, WireError};
use proptest::prelude::*;

/// Lowercase-ASCII name from raw bytes (the shim has no string
/// strategy; mapping keeps names valid UTF-8 with varied lengths).
fn name_from(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + b % 26) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrips_exactly(
        id in any::<u64>(),
        model_bytes in proptest::collection::vec(0u8..255, 0..40),
        head_bytes in proptest::collection::vec(0u8..255, 0..16),
        deadline_micros in 0u32..=u32::MAX,
        has_aux in any::<bool>(),
        aux_val in -1.0e6f32..1.0e6,
        window in proptest::collection::vec(-1.0e6f32..1.0e6, 0..200),
    ) {
        let req = Request {
            id,
            model: name_from(&model_bytes),
            head: name_from(&head_bytes),
            deadline_micros,
            aux: has_aux.then_some(aux_val),
            window,
        };
        let bytes = encode_request(&req).expect("in-limit request encodes");
        // The frame is self-describing: prefix + body, nothing else.
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&bytes[..4]);
        let len = body_len(prefix).expect("own prefix validates");
        prop_assert_eq!(len, bytes.len() - 4);
        match decode_body(&bytes[4..]).expect("own body decodes") {
            Frame::Request(got) => {
                prop_assert_eq!(got.id, req.id);
                prop_assert_eq!(got.model, req.model);
                prop_assert_eq!(got.head, req.head);
                prop_assert_eq!(got.deadline_micros, req.deadline_micros);
                // f32 payloads round-trip bit for bit, not approximately.
                prop_assert_eq!(got.aux.map(f32::to_bits), req.aux.map(f32::to_bits));
                let got_bits: Vec<u32> = got.window.iter().map(|f| f.to_bits()).collect();
                let want_bits: Vec<u32> = req.window.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(got_bits, want_bits);
            }
            Frame::Response(_) => prop_assert!(false, "request decoded as response"),
        }
    }

    #[test]
    fn response_roundtrips_exactly(
        id in any::<u64>(),
        is_ok in any::<bool>(),
        value in -1.0e9f32..1.0e9,
        // Code 0 is reserved on the wire for success — an error frame
        // can carry any *nonzero* code (unknown ones round-trip as
        // `Unrecognized`).
        code in 1u16..32,
        detail_bytes in proptest::collection::vec(0u8..255, 0..80),
    ) {
        let resp = Response {
            id,
            result: if is_ok {
                Ok(value)
            } else {
                Err(WireError { code: ErrorCode::from_u16(code), detail: name_from(&detail_bytes) })
            },
        };
        let bytes = encode_response(&resp);
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&bytes[..4]);
        let len = body_len(prefix).expect("own prefix validates");
        prop_assert_eq!(len, bytes.len() - 4);
        match decode_body(&bytes[4..]).expect("own body decodes") {
            Frame::Response(got) => {
                prop_assert_eq!(got.id, resp.id);
                match (got.result, resp.result) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a.code, b.code);
                        prop_assert_eq!(a.detail, b.detail);
                    }
                    _ => prop_assert!(false, "ok/err flipped in transit"),
                }
            }
            Frame::Request(_) => prop_assert!(false, "response decoded as request"),
        }
    }

    /// No truncation of a valid body decodes: the codec consumes every
    /// byte it is told exists, so cutting the body anywhere yields a
    /// typed error (`Truncated` mid-field, or any other `FrameError` —
    /// never success, never a panic). This is what keeps a stream that
    /// lost bytes from silently resynchronizing on garbage.
    #[test]
    fn truncations_never_decode(
        id in 0u64..1000,
        window in proptest::collection::vec(-10.0f32..10.0, 1..40),
        model_bytes in proptest::collection::vec(0u8..255, 1..20),
        cut_seed in any::<u64>(),
    ) {
        let req = Request {
            id,
            model: name_from(&model_bytes),
            head: "delay".into(),
            deadline_micros: 0,
            aux: Some(0.5),
            window,
        };
        let bytes = encode_request(&req).expect("encodes");
        let body = &bytes[4..];
        // Every strictly shorter prefix of the body must fail.
        let cut = (cut_seed % body.len() as u64) as usize;
        prop_assert!(
            decode_body(&body[..cut]).is_err(),
            "truncated body ({cut} of {} bytes) decoded",
            body.len()
        );
        // And a body with trailing junk must fail too (exact consumption).
        let mut padded = body.to_vec();
        padded.push(0);
        let padded_rejected = matches!(
            decode_body(&padded),
            Err(FrameError::TrailingBytes { extra: _ }) | Err(FrameError::Truncated)
        );
        prop_assert!(padded_rejected);
    }

    /// Single-byte corruption anywhere in a valid body either decodes
    /// to *some* frame (the flipped byte landed in a payload field) or
    /// returns a typed error — it never panics and never allocates
    /// beyond protocol limits. Run under the workspace's test harness
    /// this doubles as a fuzz smoke for the Cursor bounds checks.
    #[test]
    fn mangled_bodies_never_panic(
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
        window in proptest::collection::vec(-10.0f32..10.0, 0..30),
    ) {
        let req = Request {
            id: 7,
            model: "pretrain".into(),
            head: "delay".into(),
            deadline_micros: 1000,
            aux: None,
            window,
        };
        let bytes = encode_request(&req).expect("encodes");
        let mut body = bytes[4..].to_vec();
        let pos = (pos_seed % body.len() as u64) as usize;
        body[pos] ^= xor;
        // Must return, Ok or typed Err — the assertion is "no panic,
        // no unbounded allocation", enforced by running to completion.
        let _ = decode_body(&body);
    }

    /// The length prefix is attacker-controlled; `body_len` must reject
    /// anything over `MAX_BODY` *before* any allocation happens, and
    /// anything too small to hold magic + kind.
    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation(len in 0u32..=u32::MAX) {
        let prefix = len.to_le_bytes();
        match body_len(prefix) {
            Ok(n) => {
                prop_assert!(n as u64 == u64::from(len));
                prop_assert!(n <= MAX_BODY);
                prop_assert!(n >= 9, "magic (8) + kind (1) minimum");
            }
            Err(FrameError::Oversized { len: l, max }) => {
                prop_assert_eq!(l, u64::from(len));
                prop_assert_eq!(max, MAX_BODY);
                prop_assert!((len as usize) > MAX_BODY);
            }
            Err(FrameError::Truncated) => prop_assert!(len < 9),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}

#[test]
fn oversized_names_and_windows_refuse_to_encode() {
    let req = Request {
        id: 1,
        model: "m".repeat(MAX_NAME + 1),
        head: "delay".into(),
        deadline_micros: 0,
        aux: None,
        window: vec![0.0; 4],
    };
    assert!(matches!(
        encode_request(&req),
        Err(FrameError::NameTooLong { .. })
    ));
    let req = Request {
        id: 1,
        model: "m".into(),
        head: "delay".into(),
        deadline_micros: 0,
        aux: None,
        window: vec![0.0; MAX_WINDOW + 1],
    };
    assert!(matches!(
        encode_request(&req),
        Err(FrameError::WindowTooLong { .. })
    ));
}

/// A declared window count larger than the bytes actually present must
/// fail on the count check, not allocate `count * 4` bytes first — the
/// regression test for length-prefix amplification.
#[test]
fn window_count_cannot_amplify_allocation() {
    let req = Request {
        id: 9,
        model: "m".into(),
        head: "delay".into(),
        deadline_micros: 0,
        aux: None,
        window: vec![1.0; 4],
    };
    let bytes = encode_request(&req).expect("encodes");
    let mut body = bytes[4..].to_vec();
    // The window count is the last u32 before the floats; claim 2^20
    // floats while supplying 4.
    let count_at = body.len() - 4 * 4 - 4;
    body[count_at..count_at + 4].copy_from_slice(&(MAX_WINDOW as u32).to_le_bytes());
    assert!(decode_body(&body).is_err());
}
