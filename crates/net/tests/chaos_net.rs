//! Chaos soak of the wire tier: seeded mid-request connection kills
//! (`net.conn.drop`) and slow-peer read stalls (`net.read.stall`)
//! threaded through a live loopback server. The contracts: every
//! dropped connection surfaces to the client as a typed transport
//! error (never a hang, never a wrong answer), the server keeps
//! serving fresh connections throughout, accounting is exact
//! (successes + drops == requests sent), and — because drop decisions
//! are keyed by the client-chosen request id — the chaos trace is a
//! pure function of the seed, byte-identical across server worker
//! counts.

use ntt_chaos::{self as chaos, ChaosPlan, FaultKind, Rule};
use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_net::{ErrorCode, NetClient, NetConfig, NetError, NetServer, Request};
use ntt_serve::{BatchConfig, InferenceEngine, ModelRegistry};
use ntt_tensor::Tensor;
use std::sync::Arc;

fn registry(seed: u64) -> Arc<ModelRegistry> {
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed,
        ..NttConfig::default()
    };
    let heads: Vec<Box<dyn ntt_nn::Head>> = vec![Box::new(DelayHead::new(cfg.d_model, 1))];
    let engine =
        InferenceEngine::from_parts(Ntt::new(cfg), heads, Normalizer::identity(NUM_FEATURES));
    let r = Arc::new(ModelRegistry::new());
    r.insert("pretrain", engine);
    r
}

fn window(engine: &InferenceEngine, seed: u64) -> Vec<f32> {
    Tensor::randn(&[1, engine.seq_len(), NUM_FEATURES], seed)
        .data()
        .to_vec()
}

/// One soak run: a serial client sends `total` requests with *pinned*
/// ids 1..=total (pinned ids are what make the drop schedule a pure
/// function of the seed). On a transport error the connection is dead
/// by design — count the drop, reconnect, move on to the next id; the
/// dropped id is NOT retried, so the keyed decision fires exactly once
/// per id.
fn soak(workers: usize, total: u64) -> (u64, u64, Vec<chaos::ChaosEvent>) {
    let registry = registry(101);
    let engine = registry.get("pretrain").expect("registered");
    let expect = {
        let w = window(&engine, 5);
        let x = Tensor::from_vec(w, &[1, engine.seq_len(), NUM_FEATURES]);
        engine.predict("delay", &x, None).item()
    };
    let guard = chaos::scoped(
        ChaosPlan::new(97)
            // ~1 in 5 requests has its connection killed mid-request.
            .rule(Rule::new("net.conn.drop", FaultKind::Fail).rate(1, 5))
            // ~1 in 7 frame reads stalls 1ms between prefix and body.
            .rule(Rule::new("net.read.stall", FaultKind::Delay { millis: 1 }).rate(1, 7)),
    );
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 4,
                workers,
                ..BatchConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let w = window(&engine, 5);

    let mut client = NetClient::connect_tcp(addr).expect("connect");
    let (mut ok, mut dropped) = (0u64, 0u64);
    for id in 1..=total {
        let req = Request {
            id,
            model: "pretrain".into(),
            head: "delay".into(),
            deadline_micros: 0,
            aux: None,
            window: w.clone(),
        };
        match client.send(&req) {
            Ok(resp) => {
                let v = resp.result.unwrap_or_else(|e| {
                    panic!("request {id} got a server error under pure drop/stall chaos: {e}")
                });
                assert_eq!(
                    v.to_bits(),
                    expect.to_bits(),
                    "request {id}: chaos corrupted a successful answer"
                );
                ok += 1;
            }
            Err(NetError::Io(_)) => {
                // The seeded kill: connection died mid-request. The
                // server must still accept a replacement immediately.
                dropped += 1;
                client = NetClient::connect_tcp(addr).expect("reconnect after seeded drop");
            }
            Err(e) => panic!("request {id}: unexpected non-transport failure {e}"),
        }
    }
    // The server survived the whole schedule: a final fresh request on
    // a fresh connection still answers correctly.
    let mut fresh = NetClient::connect_tcp(addr).expect("fresh connection");
    let v = fresh
        .predict("pretrain", "delay", &w, None, None)
        .expect("server serves after the soak");
    assert_eq!(v.to_bits(), expect.to_bits());
    drop(server);
    (ok, dropped, guard.finish())
}

#[test]
fn seeded_connection_kills_are_typed_accounted_and_survivable() {
    const TOTAL: u64 = 120;
    let (ok, dropped, trace) = soak(1, TOTAL);
    // Exact accounting: every id either answered or died, once.
    assert_eq!(ok + dropped, TOTAL, "requests vanished or double-counted");
    assert!(
        dropped > 0,
        "a 1-in-5 drop rule never fired in {TOTAL} requests"
    );
    assert!(ok > 0, "everything died — the schedule should be ~1 in 5");
    // The trace recorded every drop the client observed.
    let drops_in_trace = trace.iter().filter(|e| e.site == "net.conn.drop").count() as u64;
    assert_eq!(
        drops_in_trace, dropped,
        "trace and client disagree on drops"
    );
    // Stalls fired too (delay faults slow the read path, nothing else).
    assert!(
        trace.iter().any(|e| e.site == "net.read.stall"),
        "a 1-in-7 stall rule never fired"
    );
}

#[test]
fn drop_schedule_is_invariant_across_worker_counts() {
    const TOTAL: u64 = 120;
    let (ok1, dropped1, trace1) = soak(1, TOTAL);
    let (ok4, dropped4, trace4) = soak(4, TOTAL);
    assert_eq!(ok1 + dropped1, TOTAL);
    assert_eq!(ok4 + dropped4, TOTAL);
    // Keyed by request id, the kill schedule must not care how many
    // batcher workers drain the queue.
    assert_eq!(dropped1, dropped4, "worker count changed the drop schedule");
    let drops = |t: &[chaos::ChaosEvent]| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = t
            .iter()
            .filter(|e| e.site == "net.conn.drop")
            .map(|e| (e.site.clone(), e.key))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        drops(&trace1),
        drops(&trace4),
        "replayed drop trace diverged across worker counts"
    );
}

/// Typed shedding keeps working *under* chaos: with a deliberately
/// starved pool behind the wire and the drop/stall schedule active,
/// every request still resolves to exactly one of
/// ok / overloaded / deadline-exceeded / dropped.
#[test]
fn overload_accounting_stays_exact_under_chaos() {
    let registry = registry(103);
    let engine = registry.get("pretrain").expect("registered");
    let guard = chaos::scoped(
        ChaosPlan::new(131)
            .rule(Rule::new("net.conn.drop", FaultKind::Fail).rate(1, 9))
            .rule(Rule::new("serve.worker.stall", FaultKind::Delay { millis: 2 }).rate(1, 2)),
    );
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 1,
                workers: 1,
                queue_cap: 2,
                ..BatchConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let w = window(&engine, 9);

    const CONNS: usize = 4;
    const PER_CONN: u64 = 20;
    let tallies: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                let w = w.clone();
                s.spawn(move || {
                    let mut client = NetClient::connect_tcp(addr).expect("connect");
                    let (mut ok, mut shed, mut dropped) = (0u64, 0u64, 0u64);
                    for i in 0..PER_CONN {
                        let req = Request {
                            // Ids partitioned per connection so the
                            // keyed schedule stays collision-free.
                            id: 1 + c as u64 * PER_CONN + i,
                            model: "pretrain".into(),
                            head: "delay".into(),
                            deadline_micros: 3_000,
                            aux: None,
                            window: w.clone(),
                        };
                        match client.send(&req) {
                            Ok(resp) => match resp.result {
                                Ok(_) => ok += 1,
                                Err(e) => match e.code {
                                    ErrorCode::Overloaded | ErrorCode::DeadlineExceeded => {
                                        shed += 1
                                    }
                                    other => {
                                        panic!("unexpected server error {other:?}: {e}")
                                    }
                                },
                            },
                            Err(NetError::Io(_)) => {
                                dropped += 1;
                                client = NetClient::connect_tcp(addr).expect("reconnect");
                            }
                            Err(e) => panic!("unexpected failure {e}"),
                        }
                    }
                    (ok, shed, dropped)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(server);
    let _ = guard.finish();

    let ok: u64 = tallies.iter().map(|t| t.0).sum();
    let shed: u64 = tallies.iter().map(|t| t.1).sum();
    let dropped: u64 = tallies.iter().map(|t| t.2).sum();
    assert_eq!(
        ok + shed + dropped,
        CONNS as u64 * PER_CONN,
        "a request fell through the accounting under chaos"
    );
    assert!(ok > 0, "nothing was served under chaos");
}
