//! The serving front door: NTTWIRE1 frames over TCP / unix sockets,
//! routed through the [`ModelRegistry`] into per-model [`Batcher`]
//! pools.
//!
//! # Dispatch model: thread-per-connection, bounded
//!
//! The issue allowed either a poll reactor or thread-per-connection;
//! this server is **thread-per-connection with a hard connection cap**,
//! for three reasons. First, zero-deps: std gives blocking sockets and
//! threads but no `epoll` wrapper, and a hand-rolled readiness reactor
//! is a lot of unsafe-adjacent surface for no measured need at this
//! tier's scale. Second, blocking I/O keeps framing code trivially
//! sequential — each connection is a read-decode-submit-reply loop a
//! reviewer can verify at a glance, which matters for code a remote
//! peer feeds bytes to. Third, the cap makes the resource story match
//! the `Batcher`'s bounded-admission philosophy: at most
//! [`NetConfig::max_connections`] threads/sockets exist, and the
//! overflow connection gets a typed `Overloaded` response frame and a
//! close — shed, not queued. Accept and per-connection reads run with
//! short timeouts polling a shutdown flag, so teardown never hangs on
//! a silent peer.
//!
//! # Request path
//!
//! ```text
//! read frame -> decode -> registry lookup -> per-(model, head) pool
//!   -> Batcher::submit_with_deadline -> Ticket::wait -> encode reply
//! ```
//!
//! Every failure on that path maps to a stable [`ErrorCode`]: framing
//! errors answer `BadRequest` (then close, since the stream may be out
//! of sync), routing misses answer `UnknownModel`/`UnknownHead`, and
//! every [`ServeError`] crosses the wire as its protocol code — the
//! in-process overload guarantees (bounded queue, typed shedding,
//! deadlines, restart budgets) surface to remote clients unchanged.
//! The per-request deadline is *relative* (microseconds of budget) and
//! starts counting when the server admits the request to a pool.
//!
//! Pools are created lazily per `(model, head)` pair and pinned to the
//! engine `Arc` resolved at creation; a registry hot-swap is picked up
//! on the next request for that model (the old pool drains in the
//! background, in-flight tickets unaffected — last-good semantics end
//! to end). When [`NetConfig::slo`] is set, a controller thread
//! watches each pool's queue-wait/service/batch-size histograms and
//! retunes its `max_batch` each tick (see [`crate::adaptive`]).

use crate::adaptive::{next_max_batch, PoolTracker, SloConfig};
use crate::frame::{self, ErrorCode, Frame, Request, Response, WireError};
use ntt_serve::{BatchConfig, Batcher, InferenceEngine, ModelRegistry};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long an idle accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Hard cap on concurrent connections (and therefore connection
    /// threads). The overflow connection receives one `Overloaded`
    /// response frame and is closed.
    pub max_connections: usize,
    /// Template for each per-(model, head) pool; `head` is overridden
    /// per pool. `workers == 0` auto-sizes from host parallelism
    /// (capped at 4 — forward passes parallelize internally too).
    pub pool: BatchConfig,
    /// SLO-adaptive max-batch controller (`None` = the pool template's
    /// `max_batch` stays fixed).
    pub slo: Option<SloConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 256,
            pool: BatchConfig::default(),
            slo: None,
        }
    }
}

/// A pool pinned to the engine it was created against, so a registry
/// hot-swap is detectable by `Arc` identity.
struct Pool {
    engine: Arc<InferenceEngine>,
    batcher: Arc<Batcher>,
}

struct ServerShared {
    registry: Arc<ModelRegistry>,
    cfg: NetConfig,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    inflight: AtomicUsize,
    pools: Mutex<BTreeMap<(String, &'static str), Pool>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The batcher serving `(model, head_kind)` on `engine`, created on
    /// first use. If the registry now resolves the model to a different
    /// engine than the pool was built on, the pool is rebuilt and the
    /// old one drains in the background (its in-flight tickets resolve
    /// on the old engine's own `Arc`).
    fn pool_for(
        &self,
        model: &str,
        head_kind: &'static str,
        engine: &Arc<InferenceEngine>,
    ) -> Arc<Batcher> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let key = (model.to_string(), head_kind);
        if let Some(pool) = pools.get(&key) {
            if Arc::ptr_eq(&pool.engine, engine) {
                return Arc::clone(&pool.batcher);
            }
        }
        let workers = if self.cfg.pool.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            self.cfg.pool.workers
        };
        let batcher = Arc::new(Batcher::new(
            Arc::clone(engine),
            BatchConfig {
                head: head_kind,
                workers,
                ..self.cfg.pool.clone()
            },
        ));
        ntt_obs::counter!("net.pools_created").inc();
        let replaced = pools.insert(
            key,
            Pool {
                engine: Arc::clone(engine),
                batcher: Arc::clone(&batcher),
            },
        );
        drop(pools);
        // An old pool (hot-swap) drops outside the lock: its Drop
        // drains pending requests, which must not stall other routes.
        drop(replaced);
        batcher
    }
}

/// A live server: accept loop, connection threads, per-model pools,
/// and (optionally) the SLO controller. Dropping it shuts everything
/// down: admission stops, pools drain, threads join.
pub struct NetServer {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    controller: Option<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl NetServer {
    /// Serve `registry` over TCP. Bind to port 0 for an ephemeral port
    /// (read it back with [`NetServer::tcp_addr`]).
    pub fn bind_tcp(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;
        let mut server = NetServer::start(registry, cfg, listener)?;
        server.tcp_addr = Some(tcp_addr);
        Ok(server)
    }

    /// Serve `registry` over a unix-domain socket at `path` (a stale
    /// socket file from a dead process is replaced). The file is
    /// removed again on drop.
    #[cfg(unix)]
    pub fn bind_unix(
        path: impl AsRef<Path>,
        registry: Arc<ModelRegistry>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let path = path.as_ref().to_path_buf();
        // A previous bind leaves the inode behind even after the
        // process dies; re-binding over it requires removing it.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let mut server = NetServer::start(registry, cfg, listener)?;
        server.unix_path = Some(path);
        Ok(server)
    }

    fn start<L: Acceptor>(
        registry: Arc<ModelRegistry>,
        cfg: NetConfig,
        listener: L,
    ) -> io::Result<NetServer> {
        let slo = cfg.slo.clone();
        let shared = Arc::new(ServerShared {
            registry,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            pools: Mutex::new(BTreeMap::new()),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ntt-net-accept".into())
                .spawn(move || accept_loop(shared, listener))?
        };
        let controller = match slo {
            Some(slo) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("ntt-net-slo".into())
                        .spawn(move || controller_loop(shared, slo))?,
                )
            }
            None => None,
        };
        Ok(NetServer {
            shared,
            accept: Some(accept),
            controller: Some(controller).flatten(),
            tcp_addr: None,
            unix_path: None,
        })
    }

    /// The bound TCP address (present for [`NetServer::bind_tcp`]
    /// servers) — how a test or example learns its ephemeral port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// The live `max_batch` of the pool serving `(model, head)`, if
    /// that pool exists yet — observability for the adaptive
    /// controller's effect.
    pub fn pool_max_batch(&self, model: &str, head: &str) -> Option<usize> {
        let pools = self.shared.pools.lock().unwrap_or_else(|e| e.into_inner());
        pools
            .iter()
            .find(|((m, h), _)| m == model && *h == head)
            .map(|(_, p)| p.batcher.max_batch())
    }

    /// Stop admitting connections and requests. Already-accepted
    /// requests drain; the blocking join happens on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.controller.take() {
            let _ = h.join();
        }
        loop {
            let handle = self
                .shared
                .conn_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // Dropping the pools drains them (Batcher's graceful drop).
        self.shared
            .pools
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The two transports, unified for the accept loop. Streams only need
/// `Read + Write` plus a read timeout (the shutdown-poll hook).
trait ConnStream: Read + Write + Send + 'static {
    fn set_read_timeout_on(&self, d: Option<Duration>) -> io::Result<()>;
}

impl ConnStream for TcpStream {
    fn set_read_timeout_on(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
}

#[cfg(unix)]
impl ConnStream for UnixStream {
    fn set_read_timeout_on(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
}

trait Acceptor: Send + 'static {
    type Stream: ConnStream;
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

impl Acceptor for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        // Request/response framing sends small writes in lockstep;
        // Nagle+delayed-ACK would serialize them at ~40ms a turn.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }
}

#[cfg(unix)]
impl Acceptor for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> io::Result<UnixStream> {
        let (stream, _) = self.accept()?;
        Ok(stream)
    }
}

fn accept_loop<L: Acceptor>(shared: Arc<ServerShared>, listener: L) {
    while !shared.stopping() {
        // Reap finished connection threads so the handle list tracks
        // live connections, not connection history.
        {
            let mut handles = shared
                .conn_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut done = Vec::new();
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    done.push(handles.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            drop(handles);
            for h in done {
                let _ = h.join();
            }
        }
        let stream = match listener.accept_stream() {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off.
                std::thread::sleep(READ_POLL);
                continue;
            }
        };
        ntt_obs::counter!("net.conn_total").inc();
        if shared.conns.load(Ordering::Relaxed) >= shared.cfg.max_connections {
            // Shed the connection itself: one typed frame, then close.
            ntt_obs::counter!("net.conn_shed").inc();
            let mut stream = stream;
            let resp = Response {
                id: 0,
                result: Err(WireError {
                    code: ErrorCode::Overloaded,
                    detail: format!(
                        "connection limit reached ({} active)",
                        shared.cfg.max_connections
                    ),
                }),
            };
            let _ = stream.write_all(&frame::encode_response(&resp));
            continue;
        }
        shared.conns.fetch_add(1, Ordering::Relaxed);
        ntt_obs::gauge!("net.conns_active").set(shared.conns.load(Ordering::Relaxed) as f64);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("ntt-net-conn".into())
            .spawn(move || {
                serve_conn(&conn_shared, stream);
                conn_shared.conns.fetch_sub(1, Ordering::Relaxed);
                ntt_obs::gauge!("net.conns_active")
                    .set(conn_shared.conns.load(Ordering::Relaxed) as f64);
            });
        match spawned {
            Ok(handle) => shared
                .conn_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle),
            Err(_) => {
                // Thread exhaustion: undo the count; the connection
                // closes by drop, which the client sees as an io error.
                shared.conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Read exactly `buf.len()` bytes, riding out read-timeout polls while
/// `keep_going()` holds. `Ok(false)` = clean EOF at offset 0 (the peer
/// closed between frames); mid-buffer EOF is an error. Partial reads
/// before a timeout are preserved, so polling never loses frame sync.
fn read_full<S: Read>(
    stream: &mut S,
    buf: &mut [u8],
    keep_going: impl Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !keep_going() {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_conn<S: ConnStream>(shared: &ServerShared, mut stream: S) {
    if stream.set_read_timeout_on(Some(READ_POLL)).is_err() {
        return;
    }
    let mut prefix = [0u8; 4];
    loop {
        match read_full(&mut stream, &mut prefix, || !shared.stopping()) {
            Ok(true) => {}
            // Clean EOF, shutdown, or transport error: close quietly.
            Ok(false) | Err(_) => return,
        }
        let len = match frame::body_len(prefix) {
            Ok(len) => len,
            Err(e) => {
                // An unframeable prefix means the stream can never
                // re-sync: answer once, then close.
                respond(&mut stream, bad_request(0, &e));
                return;
            }
        };
        // Chaos site: stall mid-frame, after the prefix committed us to
        // a body read — exercises the slow-peer path.
        ntt_chaos::maybe_delay("net.read.stall");
        let mut body = vec![0u8; len];
        match read_full(&mut stream, &mut body, || !shared.stopping()) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        ntt_obs::counter!("net.bytes_in").add((4 + len) as u64);
        let req = match frame::decode_body(&body) {
            Ok(Frame::Request(req)) => req,
            Ok(Frame::Response(r)) => {
                respond(
                    &mut stream,
                    Response {
                        id: r.id,
                        result: Err(WireError {
                            code: ErrorCode::BadRequest,
                            detail: "expected a request frame, got a response".into(),
                        }),
                    },
                );
                return;
            }
            Err(e) => {
                respond(&mut stream, bad_request(0, &e));
                return;
            }
        };
        // Chaos site: seeded mid-request connection kill. Keyed by the
        // client-chosen request id, so which requests die is a pure
        // function of (seed, id) — invariant across worker counts and
        // connection interleavings.
        if ntt_chaos::should_fail_keyed("net.conn.drop", req.id) {
            ntt_obs::counter!("net.conn_dropped").inc();
            return;
        }
        let resp = handle_request(shared, req);
        if !respond(&mut stream, resp) {
            return;
        }
    }
}

fn bad_request(id: u64, e: &frame::FrameError) -> Response {
    Response {
        id,
        result: Err(WireError {
            code: ErrorCode::BadRequest,
            detail: e.to_string(),
        }),
    }
}

/// Write one response frame; false if the peer is gone.
fn respond<S: Write>(stream: &mut S, resp: Response) -> bool {
    let bytes = frame::encode_response(&resp);
    if stream.write_all(&bytes).is_err() {
        return false;
    }
    ntt_obs::counter!("net.bytes_out").add(bytes.len() as u64);
    true
}

fn handle_request(shared: &ServerShared, req: Request) -> Response {
    let _span = ntt_obs::span!("net.request_ns");
    ntt_obs::counter!("net.requests").inc();
    let n = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    ntt_obs::gauge!("net.inflight").set(n as f64);
    let result = route(shared, &req);
    let n = shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
    ntt_obs::gauge!("net.inflight").set(n as f64);
    Response { id: req.id, result }
}

fn route(shared: &ServerShared, req: &Request) -> Result<f32, WireError> {
    if shared.stopping() {
        return Err(WireError {
            code: ErrorCode::ShuttingDown,
            detail: "server is shutting down".into(),
        });
    }
    let engine = shared.registry.get(&req.model).ok_or_else(|| WireError {
        code: ErrorCode::UnknownModel,
        detail: format!(
            "no model {:?} (registered: {:?})",
            req.model,
            shared.registry.names()
        ),
    })?;
    // Resolve the request's head string to the engine's own 'static
    // kind: pools key on it, and a bogus head name can never intern new
    // memory — it fails here.
    let head_kind = engine
        .head(&req.head)
        .map(|h| h.kind())
        .ok_or_else(|| WireError {
            code: ErrorCode::UnknownHead,
            detail: format!(
                "model {:?} has no {:?} head (loaded: {:?})",
                req.model,
                req.head,
                engine.head_kinds()
            ),
        })?;
    let pool = shared.pool_for(&req.model, head_kind, &engine);
    let deadline =
        (req.deadline_micros > 0).then(|| Duration::from_micros(u64::from(req.deadline_micros)));
    let ticket = pool
        .submit_with_deadline(req.window.clone(), req.aux, deadline)
        .map_err(|e| WireError {
            code: ErrorCode::from_serve(&e),
            detail: e.to_string(),
        })?;
    ticket.wait().map_err(|e| WireError {
        code: ErrorCode::from_serve(&e),
        detail: e.to_string(),
    })
}

fn controller_loop(shared: Arc<ServerShared>, slo: SloConfig) {
    let mut trackers: BTreeMap<(String, &'static str), PoolTracker> = BTreeMap::new();
    while !shared.stopping() {
        // Sleep one tick in short slices so shutdown stays prompt even
        // under a long controller period.
        let t0 = Instant::now();
        while t0.elapsed() < slo.tick {
            if shared.stopping() {
                return;
            }
            std::thread::sleep(slo.tick.saturating_sub(t0.elapsed()).min(READ_POLL));
        }
        // Clone the pool handles out so histogram reads and retunes
        // never hold the routing lock.
        let pools: Vec<((String, &'static str), Arc<Batcher>)> = {
            let guard = shared.pools.lock().unwrap_or_else(|e| e.into_inner());
            guard
                .iter()
                .map(|(k, p)| (k.clone(), Arc::clone(&p.batcher)))
                .collect()
        };
        for (key, batcher) in pools {
            let m = batcher.metrics();
            let tracker = trackers.entry(key).or_default();
            if let Some(obs) = tracker.observe(m.queue_wait_ns, m.service_ns, m.batch_size) {
                let cur = batcher.max_batch();
                let next = next_max_batch(cur, &obs, &slo);
                if next != cur {
                    batcher.set_max_batch(next);
                    ntt_obs::counter!("net.adaptive_steps").inc();
                }
                ntt_obs::gauge!("net.adaptive_max_batch").set(next as f64);
            }
        }
    }
}
