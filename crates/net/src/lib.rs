//! `ntt-net` — the wire-protocol serving tier.
//!
//! The paper's deployment story is a shared pretrained model many
//! operators query cheaply; in-process that is `ntt-serve`'s
//! [`Batcher`](ntt_serve::Batcher), and this crate is the wire in
//! front of it:
//!
//! * [`frame`] — the `NTTWIRE1` length-prefixed binary protocol as
//!   pure encode/decode over byte slices (proptestable, no I/O), with
//!   a stable [`ErrorCode`] table mapping every
//!   [`ServeError`](ntt_serve::ServeError) variant to a protocol code.
//! * [`NetServer`] — TCP + unix-socket serving with bounded
//!   thread-per-connection dispatch, multi-model routing through the
//!   [`ModelRegistry`](ntt_serve::ModelRegistry), and lazily created
//!   per-(model, head) batcher pools.
//! * [`NetClient`] — a blocking lockstep client returning layered
//!   typed errors.
//! * [`adaptive`] — the SLO controller holding a p99 latency target by
//!   retuning each pool's `max_batch` from its own histograms.
//!
//! Chaos sites `net.conn.drop` (seeded mid-request connection kills,
//! keyed by request id) and `net.read.stall` (slow-peer reads) thread
//! the fault plane through the transport; `net.*` counters, gauges,
//! and the `net.request_ns` span feed `ntt-obs`.

pub mod adaptive;
pub mod client;
pub mod frame;
pub mod server;

pub use adaptive::SloConfig;
pub use client::{NetClient, NetError};
pub use frame::{ErrorCode, Frame, FrameError, Request, Response, WireError};
pub use server::{NetConfig, NetServer};
