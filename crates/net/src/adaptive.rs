//! SLO-adaptive batching: hold a p99 latency target by retuning
//! `max_batch` from the Batcher's own histograms.
//!
//! The tension adaptive batching resolves: big batches amortize
//! per-request fixed costs (good at high load), but with a gather
//! window configured, an oversized `max_batch` at *low* load makes
//! every request wait out the window before its batch is cut — the
//! batch limit itself becomes the p99. The controller watches each
//! pool's queue-wait + service distributions over its own tick and
//! applies a two-signal AIMD step ([`next_max_batch`]):
//!
//! * **p99 over target, batches under-filled** → the gather wait *is*
//!   the latency; halve `max_batch` so claims cut as soon as the
//!   observed concurrency arrives (multiplicative decrease reacts in a
//!   few ticks).
//! * **p99 over target, batches saturated** → the pool is genuinely
//!   behind; grow `max_batch` so each forward pass amortizes more
//!   requests.
//! * **p99 comfortably under target (≤ half), batches saturated, and
//!   queue wait dominating service (backlog evidence)** → headroom
//!   exists and more coalescing would amortize real demand; creep up
//!   by one (additive increase keeps the probe gentle). Full batches
//!   *without* backlog mean arrivals exactly match the limit — growing
//!   then only re-opens the gather wait, so the controller holds.
//! * otherwise hold.
//!
//! Everything here is pure math over [`HistogramSnapshot`] values —
//! the controller *thread* lives in the server, this module is fully
//! unit-testable without sockets, clocks, or pools. Per-tick views are
//! deltas ([`delta`]): cumulative histograms are subtracted
//! bucket-wise so each decision sees only the traffic since the last
//! tick, not the whole run's history.

use ntt_obs::{BucketCount, HistogramSnapshot};
use std::time::Duration;

/// Latency-SLO knobs for the adaptive controller.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The queue-wait + service p99 the controller tries to hold.
    pub p99_target: Duration,
    /// Lower bound for the tuned `max_batch`.
    pub min_batch: usize,
    /// Upper bound for the tuned `max_batch`.
    pub max_batch: usize,
    /// Controller period: how often each pool is re-evaluated.
    pub tick: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            p99_target: Duration::from_millis(5),
            min_batch: 1,
            max_batch: 64,
            tick: Duration::from_millis(20),
        }
    }
}

/// What one controller tick observed for one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickObservation {
    /// Requests that completed service during the tick.
    pub requests: u64,
    /// End-to-end p99 for the tick (queue wait + service), nanoseconds.
    pub p99_ns: f64,
    /// Queue-wait p99 alone — the backlog signal that separates "full
    /// batches because demand is piling up" from "full batches because
    /// arrivals exactly match the limit".
    pub wait_p99_ns: f64,
    /// Service p99 alone.
    pub service_p99_ns: f64,
    /// Mean coalesced batch size during the tick.
    pub mean_fill: f64,
}

/// Bucket-wise subtraction of two cumulative snapshots: the traffic
/// between `prev` and `cur`. Histograms only grow, so for genuine
/// before/after pairs every per-bucket difference is non-negative;
/// defensive saturation keeps a mismatched pair from wrapping.
pub fn delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets: Vec<BucketCount> = Vec::with_capacity(cur.buckets.len());
    let mut prev_it = prev.buckets.iter().peekable();
    for b in &cur.buckets {
        let mut count = b.count;
        while let Some(p) = prev_it.peek() {
            if p.lo < b.lo {
                prev_it.next();
            } else {
                if p.lo == b.lo {
                    count = count.saturating_sub(p.count);
                    prev_it.next();
                }
                break;
            }
        }
        if count > 0 {
            buckets.push(BucketCount {
                lo: b.lo,
                hi: b.hi,
                count,
            });
        }
    }
    HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.saturating_sub(prev.sum),
        buckets,
    }
}

/// Per-pool delta tracker: feed it cumulative snapshots each tick, get
/// back the tick-local observation (or `None` when nothing completed —
/// an idle pool gives the controller no evidence to act on).
#[derive(Default)]
pub struct PoolTracker {
    prev_wait: HistogramSnapshot,
    prev_service: HistogramSnapshot,
    prev_batch: HistogramSnapshot,
}

impl PoolTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the tick-local observation from cumulative queue-wait /
    /// service / batch-size snapshots, and advance the baseline.
    pub fn observe(
        &mut self,
        wait: HistogramSnapshot,
        service: HistogramSnapshot,
        batch: HistogramSnapshot,
    ) -> Option<TickObservation> {
        let dw = delta(&wait, &self.prev_wait);
        let ds = delta(&service, &self.prev_service);
        let db = delta(&batch, &self.prev_batch);
        self.prev_wait = wait;
        self.prev_service = service;
        self.prev_batch = batch;
        if dw.count == 0 || db.count == 0 {
            return None;
        }
        // End-to-end p99 ≈ wait p99 + service p99: an upper estimate
        // (the two maxima need not coincide), which errs toward
        // shrinking batches — the safe direction for a latency SLO.
        let service_p99 = if ds.count > 0 { ds.quantile(0.99) } else { 0.0 };
        let wait_p99 = dw.quantile(0.99);
        Some(TickObservation {
            requests: dw.count,
            p99_ns: wait_p99 + service_p99,
            wait_p99_ns: wait_p99,
            service_p99_ns: service_p99,
            mean_fill: db.mean(),
        })
    }
}

/// One AIMD step: the next `max_batch` for a pool that observed `obs`
/// at the current limit `cur`. Pure, total, clamped to
/// `[slo.min_batch.max(1), slo.max_batch]`.
pub fn next_max_batch(cur: usize, obs: &TickObservation, slo: &SloConfig) -> usize {
    let lo = slo.min_batch.max(1);
    let hi = slo.max_batch.max(lo);
    let target_ns = slo.p99_target.as_nanos() as f64;
    // "Saturated" = batches fill to within one request of the limit on
    // average; below that, claims are cutting early and the gather
    // window (not demand) is what holds requests back.
    let saturated = obs.mean_fill + 0.5 >= cur as f64;
    // Backlog evidence: requests spend longer waiting than being
    // served. Full batches *without* this just mean arrivals match the
    // limit — growing then only re-opens the gather wait (the probe
    // oscillation that wrecks p99 at exactly-saturating load).
    let backlogged = obs.wait_p99_ns > obs.service_p99_ns;
    let next = if obs.p99_ns > target_ns {
        if saturated {
            cur.saturating_mul(2)
        } else {
            cur / 2
        }
    } else if obs.p99_ns <= target_ns / 2.0 && saturated && backlogged {
        cur + 1
    } else {
        cur
    };
    next.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_obs::Histogram;

    fn slo() -> SloConfig {
        SloConfig {
            p99_target: Duration::from_millis(1),
            min_batch: 1,
            max_batch: 32,
            tick: Duration::from_millis(10),
        }
    }

    /// Observation whose queue wait dominates service (backlogged).
    fn obs(p99_ms: f64, mean_fill: f64) -> TickObservation {
        TickObservation {
            requests: 100,
            p99_ns: p99_ms * 1e6,
            wait_p99_ns: p99_ms * 0.8e6,
            service_p99_ns: p99_ms * 0.2e6,
            mean_fill,
        }
    }

    #[test]
    fn slow_and_underfilled_halves() {
        // Gather wait is the latency: back off multiplicatively.
        assert_eq!(next_max_batch(32, &obs(4.0, 2.0), &slo()), 16);
        assert_eq!(next_max_batch(16, &obs(4.0, 2.0), &slo()), 8);
        // ...down to the floor, never below (0.4 mean fill means even a
        // limit of 1 is not saturated, so the step keeps shrinking).
        assert_eq!(next_max_batch(1, &obs(4.0, 0.4), &slo()), 1);
    }

    #[test]
    fn slow_and_saturated_doubles() {
        // Full batches and still over target: coalesce harder.
        assert_eq!(next_max_batch(4, &obs(4.0, 4.0), &slo()), 8);
        // Clamped at the ceiling.
        assert_eq!(next_max_batch(32, &obs(4.0, 32.0), &slo()), 32);
    }

    #[test]
    fn fast_saturated_and_backlogged_creeps_up() {
        assert_eq!(next_max_batch(4, &obs(0.2, 4.0), &slo()), 5);
    }

    #[test]
    fn fast_and_saturated_without_backlog_holds() {
        // Batches full, SLO comfortable, but wait ≪ service: arrivals
        // exactly match the limit. Growing would only re-open the
        // gather window — hold instead (the anti-oscillation guard).
        let o = TickObservation {
            requests: 100,
            p99_ns: 0.2e6,
            wait_p99_ns: 0.01e6,
            service_p99_ns: 0.19e6,
            mean_fill: 4.0,
        };
        assert_eq!(next_max_batch(4, &o, &slo()), 4);
    }

    #[test]
    fn comfortable_or_underfilled_holds() {
        // Under target but batches not full: nothing to fix.
        assert_eq!(next_max_batch(8, &obs(0.2, 2.0), &slo()), 8);
        // Between target/2 and target: in the deadband, hold.
        assert_eq!(next_max_batch(8, &obs(0.8, 8.0), &slo()), 8);
    }

    #[test]
    fn bounds_are_respected_even_when_misconfigured() {
        let bad = SloConfig {
            min_batch: 0,
            max_batch: 0,
            ..slo()
        };
        assert_eq!(next_max_batch(16, &obs(4.0, 16.0), &bad), 1);
    }

    #[test]
    fn delta_subtracts_cumulative_snapshots() {
        let h = Histogram::new();
        h.record_always(100);
        h.record_always(100);
        let before = h.snapshot();
        h.record_always(100);
        h.record_always(1_000_000);
        let after = h.snapshot();
        let d = delta(&after, &before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 100 + 1_000_000);
        assert_eq!(d.buckets.iter().map(|b| b.count).sum::<u64>(), 2);
        // Unchanged buckets vanish from the delta entirely.
        let none = delta(&after, &after);
        assert_eq!(none.count, 0);
        assert!(none.buckets.is_empty());
    }

    #[test]
    fn tracker_reports_per_tick_views_and_idle_none() {
        let wait = Histogram::new();
        let service = Histogram::new();
        let batch = Histogram::new();
        let mut tracker = PoolTracker::new();
        // Tick 1: nothing happened.
        assert_eq!(
            tracker.observe(wait.snapshot(), service.snapshot(), batch.snapshot()),
            None
        );
        // Traffic: 4 requests in one batch of 4, slow waits.
        for _ in 0..4 {
            wait.record_always(2_000_000);
        }
        service.record_always(500_000);
        batch.record_always(4);
        let o = tracker
            .observe(wait.snapshot(), service.snapshot(), batch.snapshot())
            .expect("tick saw traffic");
        assert_eq!(o.requests, 4);
        assert!((o.mean_fill - 4.0).abs() < 1e-9);
        assert!(o.p99_ns > 1e6, "p99 reflects the slow waits");
        // Tick 3: idle again -> None, baseline advanced.
        assert_eq!(
            tracker.observe(wait.snapshot(), service.snapshot(), batch.snapshot()),
            None
        );
    }
}
