//! The `NTTWIRE1` frame codec: pure functions over byte slices.
//!
//! Everything on the wire is a *frame*: a little-endian `u32` body
//! length followed by that many body bytes. The codec here never does
//! I/O — [`encode_request`]/[`encode_response`] produce complete frames
//! as `Vec<u8>`, [`body_len`] validates a length prefix, and
//! [`decode_body`] parses a body slice — so framing is proptestable
//! without sockets, and the server/client transport loops stay trivial.
//!
//! # Body layout (little-endian)
//!
//! | field            | size         | notes                              |
//! |------------------|--------------|------------------------------------|
//! | magic            | 8            | `"NTTWIRE1"` — protocol + version  |
//! | kind             | 1            | 1 = request, 2 = response          |
//! | request id       | 8 (`u64`)    | echoed verbatim in the response    |
//! | **request only** |              |                                    |
//! | deadline         | 4 (`u32`)    | relative budget in µs, 0 = none    |
//! | model name       | 2 + n        | `u16` length + UTF-8 bytes         |
//! | head kind        | 2 + n        | `u16` length + UTF-8 bytes         |
//! | aux flag         | 1 (+4)       | 1 = an `f32` aux scalar follows    |
//! | window           | 4 + 4·n      | `u32` f32 count + raw f32 bits     |
//! | **response only**|              |                                    |
//! | code             | 2 (`u16`)    | 0 = ok, else [`ErrorCode`]         |
//! | value            | 4 (`f32`)    | prediction (ok responses only)     |
//! | detail           | 2 + n        | error text (error responses only)  |
//!
//! # Hostile-input discipline
//!
//! Every length field an attacker controls is validated *before* any
//! allocation it would size: the frame prefix against [`MAX_BODY`],
//! name lengths against [`MAX_NAME`], the window count against
//! [`MAX_WINDOW`] *and* against the bytes actually present. Decoding
//! truncated, mangled, or oversized input returns a typed
//! [`FrameError`]; it never panics and never allocates more than the
//! input's own size. A body must also be consumed exactly — trailing
//! bytes are an error, so a frame has one unique encoding.

use ntt_serve::ServeError;
use std::error::Error;
use std::fmt;

/// Protocol magic: name + wire version, first bytes of every body.
pub const MAGIC: [u8; 8] = *b"NTTWIRE1";
/// Body kind tag for requests.
pub const KIND_REQUEST: u8 = 1;
/// Body kind tag for responses.
pub const KIND_RESPONSE: u8 = 2;
/// Longest model or head name accepted, in UTF-8 bytes.
pub const MAX_NAME: usize = 256;
/// Longest window accepted, in `f32` values (4 MiB of payload).
pub const MAX_WINDOW: usize = 1 << 20;
/// Largest body a frame may declare: the worst-case request (fixed
/// fields + two maximal names + a maximal window). Anything larger is
/// rejected from the 4-byte prefix alone, before any buffer exists.
pub const MAX_BODY: usize = 34 + 2 * MAX_NAME + 4 * MAX_WINDOW;

/// One inference request as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Registry name of the model to route to.
    pub model: String,
    /// Head kind on that model (e.g. `"delay"`, `"mct"`).
    pub head: String,
    /// Relative deadline budget in microseconds (`0` = none). Relative,
    /// not absolute: client and server clocks are never compared.
    pub deadline_micros: u32,
    /// Aux scalar for heads that need one.
    pub aux: Option<f32>,
    /// Featurized window, `seq_len * NUM_FEATURES` values.
    pub window: Vec<f32>,
}

/// One response as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// The prediction, or a typed protocol error.
    pub result: Result<f32, WireError>,
}

/// A decoded body: exactly one of the two frame kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request(Request),
    Response(Response),
}

/// An error response: a stable numeric code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub code: ErrorCode,
    pub detail: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} (code {}): {}",
            self.code,
            self.code.as_u16(),
            self.detail
        )
    }
}

impl Error for WireError {}

/// Stable wire error codes. Numeric values are part of the protocol:
/// they never change for a shipped code, and a client built against an
/// older table still gets a usable [`ErrorCode::Unrecognized`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission queue full; back off and retry ([`ServeError::Overloaded`]).
    Overloaded,
    /// Deadline passed before service ([`ServeError::DeadlineExceeded`]).
    DeadlineExceeded,
    /// The serving worker died mid-batch ([`ServeError::WorkerDied`]).
    WorkerDied,
    /// Server or pool is draining ([`ServeError::ShuttingDown`]).
    ShuttingDown,
    /// Window has the wrong number of features ([`ServeError::WindowLength`]).
    WindowLength,
    /// Aux scalar present/absent against the head's need ([`ServeError::AuxMismatch`]).
    AuxMismatch,
    /// The pool died terminally ([`ServeError::Poisoned`]).
    Poisoned,
    /// No model registered under the requested name.
    UnknownModel,
    /// The model has no head of the requested kind.
    UnknownHead,
    /// The request frame did not decode.
    BadRequest,
    /// A code this build's table does not know (newer peer).
    Unrecognized(u16),
}

impl ErrorCode {
    /// The stable numeric value written on the wire.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::WorkerDied => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::WindowLength => 5,
            ErrorCode::AuxMismatch => 6,
            ErrorCode::Poisoned => 7,
            ErrorCode::UnknownModel => 8,
            ErrorCode::UnknownHead => 9,
            ErrorCode::BadRequest => 10,
            ErrorCode::Unrecognized(v) => v,
        }
    }

    /// Decode a wire value (total: unknown values round-trip through
    /// [`ErrorCode::Unrecognized`] instead of failing the frame).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::WorkerDied,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::WindowLength,
            6 => ErrorCode::AuxMismatch,
            7 => ErrorCode::Poisoned,
            8 => ErrorCode::UnknownModel,
            9 => ErrorCode::UnknownHead,
            10 => ErrorCode::BadRequest,
            other => ErrorCode::Unrecognized(other),
        }
    }

    /// Map an in-process serving error to its protocol code — every
    /// [`ServeError`] variant has one, so the in-process overload-safety
    /// guarantees surface unchanged as protocol semantics.
    pub fn from_serve(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::WorkerDied => ErrorCode::WorkerDied,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::WindowLength { .. } => ErrorCode::WindowLength,
            ServeError::AuxMismatch { .. } => ErrorCode::AuxMismatch,
            ServeError::Poisoned => ErrorCode::Poisoned,
        }
    }
}

/// Why a frame failed to decode (or a value refused to encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before its fields did.
    Truncated,
    /// The length prefix declares more than [`MAX_BODY`] bytes.
    Oversized { len: u64, max: usize },
    /// The first 8 body bytes are not `"NTTWIRE1"`.
    BadMagic,
    /// The kind tag is neither request nor response.
    BadKind(u8),
    /// A model/head name exceeds [`MAX_NAME`] bytes.
    NameTooLong { got: usize, max: usize },
    /// The window declares more than [`MAX_WINDOW`] values.
    WindowTooLong { got: usize, max: usize },
    /// A name field is not valid UTF-8.
    BadUtf8,
    /// The body decoded but had bytes left over.
    TrailingBytes { extra: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame declares {len} bytes, limit is {max}")
            }
            FrameError::BadMagic => write!(f, "bad magic: not an NTTWIRE1 frame"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::NameTooLong { got, max } => {
                write!(f, "name is {got} bytes, limit is {max}")
            }
            FrameError::WindowTooLong { got, max } => {
                write!(f, "window declares {got} values, limit is {max}")
            }
            FrameError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame body")
            }
        }
    }
}

impl Error for FrameError {}

/// Validate a 4-byte length prefix. The returned length is safe to
/// allocate: it is bounded by [`MAX_BODY`], so a hostile prefix of
/// `0xFFFF_FFFF` is rejected before any buffer exists.
pub fn body_len(prefix: [u8; 4]) -> Result<usize, FrameError> {
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_BODY {
        return Err(FrameError::Oversized {
            len: len as u64,
            max: MAX_BODY,
        });
    }
    if len < MAGIC.len() + 1 {
        // Too short to even hold magic + kind.
        return Err(FrameError::Truncated);
    }
    Ok(len)
}

fn push_name(out: &mut Vec<u8>, name: &str) -> Result<(), FrameError> {
    if name.len() > MAX_NAME {
        return Err(FrameError::NameTooLong {
            got: name.len(),
            max: MAX_NAME,
        });
    }
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    Ok(())
}

/// Encode a complete request frame (length prefix + body). Rejects
/// names/windows over the protocol limits with the same typed errors
/// decoding would raise, so a compliant client cannot emit a frame a
/// compliant server refuses.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, FrameError> {
    if req.window.len() > MAX_WINDOW {
        return Err(FrameError::WindowTooLong {
            got: req.window.len(),
            max: MAX_WINDOW,
        });
    }
    let mut body = Vec::with_capacity(34 + req.model.len() + req.head.len() + 4 * req.window.len());
    body.extend_from_slice(&MAGIC);
    body.push(KIND_REQUEST);
    body.extend_from_slice(&req.id.to_le_bytes());
    body.extend_from_slice(&req.deadline_micros.to_le_bytes());
    push_name(&mut body, &req.model)?;
    push_name(&mut body, &req.head)?;
    match req.aux {
        Some(a) => {
            body.push(1);
            body.extend_from_slice(&a.to_le_bytes());
        }
        None => body.push(0),
    }
    body.extend_from_slice(&(req.window.len() as u32).to_le_bytes());
    for v in &req.window {
        body.extend_from_slice(&v.to_le_bytes());
    }
    Ok(finish(body))
}

/// Encode a complete response frame (length prefix + body). Error
/// detail longer than [`MAX_NAME`] bytes is truncated at a char
/// boundary rather than rejected — the detail is advisory, the code is
/// the contract.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&MAGIC);
    body.push(KIND_RESPONSE);
    body.extend_from_slice(&resp.id.to_le_bytes());
    match &resp.result {
        Ok(v) => {
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
        }
        Err(e) => {
            body.extend_from_slice(&e.code.as_u16().to_le_bytes());
            let mut detail = e.detail.as_str();
            while detail.len() > MAX_NAME {
                let mut cut = MAX_NAME;
                while !detail.is_char_boundary(cut) {
                    cut -= 1;
                }
                detail = &detail[..cut];
            }
            body.extend_from_slice(&(detail.len() as u16).to_le_bytes());
            body.extend_from_slice(detail.as_bytes());
        }
    }
    finish(body)
}

fn finish(body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Bounds-checked cursor over a body slice: every read is validated
/// against the bytes actually present, so no field length an attacker
/// writes can cause a read past the buffer or an oversized allocation.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.rest.len() < n {
            return Err(FrameError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        // PANIC-OK: take(2) returned exactly 2 bytes.
        let bytes: [u8; 2] = self.take(2)?.try_into().expect("2 bytes");
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        // PANIC-OK: take(4) returned exactly 4 bytes.
        let bytes: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        // PANIC-OK: take(8) returned exactly 8 bytes.
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("8 bytes");
        Ok(u64::from_le_bytes(bytes))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn name(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        if len > MAX_NAME {
            return Err(FrameError::NameTooLong {
                got: len,
                max: MAX_NAME,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }
}

/// Decode one frame body (the bytes after the length prefix). Total
/// over arbitrary input: returns a typed [`FrameError`] on anything
/// malformed, never panics, and requires the body to be consumed
/// exactly.
pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut cur = Cursor { rest: body };
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = cur.u8()?;
    let id = cur.u64()?;
    let frame = match kind {
        KIND_REQUEST => {
            let deadline_micros = cur.u32()?;
            let model = cur.name()?;
            let head = cur.name()?;
            let aux = match cur.u8()? {
                0 => None,
                _ => Some(cur.f32()?),
            };
            let count = cur.u32()? as usize;
            if count > MAX_WINDOW {
                return Err(FrameError::WindowTooLong {
                    got: count,
                    max: MAX_WINDOW,
                });
            }
            // The count must match the bytes actually present before
            // the window buffer is sized from it.
            let raw = cur.take(count * 4)?;
            let mut window = Vec::with_capacity(count);
            for chunk in raw.chunks_exact(4) {
                // PANIC-OK: chunks_exact(4) yields exactly 4 bytes.
                window.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            Frame::Request(Request {
                id,
                model,
                head,
                deadline_micros,
                aux,
                window,
            })
        }
        KIND_RESPONSE => {
            let code = cur.u16()?;
            let result = if code == 0 {
                Ok(cur.f32()?)
            } else {
                let len = cur.u16()? as usize;
                if len > MAX_NAME {
                    return Err(FrameError::NameTooLong {
                        got: len,
                        max: MAX_NAME,
                    });
                }
                let bytes = cur.take(len)?;
                let detail = String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)?;
                Err(WireError {
                    code: ErrorCode::from_u16(code),
                    detail,
                })
            };
            Frame::Response(Response { id, result })
        }
        other => return Err(FrameError::BadKind(other)),
    };
    if !cur.rest.is_empty() {
        return Err(FrameError::TrailingBytes {
            extra: cur.rest.len(),
        });
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: 7,
            model: "pretrained".into(),
            head: "delay".into(),
            deadline_micros: 2_000,
            aux: Some(0.25),
            window: vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE],
        }
    }

    #[test]
    fn request_roundtrip_is_exact() {
        let r = req();
        let frame = encode_request(&r).unwrap();
        let len = body_len(frame[..4].try_into().unwrap()).unwrap();
        assert_eq!(len, frame.len() - 4);
        assert_eq!(decode_body(&frame[4..]).unwrap(), Frame::Request(r));
    }

    #[test]
    fn response_roundtrip_ok_and_error() {
        for resp in [
            Response {
                id: 1,
                result: Ok(3.5),
            },
            Response {
                id: u64::MAX,
                result: Err(WireError {
                    code: ErrorCode::Overloaded,
                    detail: "queue full".into(),
                }),
            },
        ] {
            let frame = encode_response(&resp);
            let len = body_len(frame[..4].try_into().unwrap()).unwrap();
            assert_eq!(len, frame.len() - 4);
            assert_eq!(decode_body(&frame[4..]).unwrap(), Frame::Response(resp));
        }
    }

    #[test]
    fn error_codes_are_stable_and_total() {
        // The numeric table is protocol: these exact values, forever.
        assert_eq!(ErrorCode::Overloaded.as_u16(), 1);
        assert_eq!(ErrorCode::DeadlineExceeded.as_u16(), 2);
        assert_eq!(ErrorCode::WorkerDied.as_u16(), 3);
        assert_eq!(ErrorCode::ShuttingDown.as_u16(), 4);
        assert_eq!(ErrorCode::WindowLength.as_u16(), 5);
        assert_eq!(ErrorCode::AuxMismatch.as_u16(), 6);
        assert_eq!(ErrorCode::Poisoned.as_u16(), 7);
        assert_eq!(ErrorCode::UnknownModel.as_u16(), 8);
        assert_eq!(ErrorCode::UnknownHead.as_u16(), 9);
        assert_eq!(ErrorCode::BadRequest.as_u16(), 10);
        for v in 0..64u16 {
            assert_eq!(ErrorCode::from_u16(v).as_u16(), v, "round-trip for {v}");
        }
        // Every ServeError variant maps to a code.
        for (e, code) in [
            (ServeError::Overloaded { cap: 4 }, ErrorCode::Overloaded),
            (ServeError::DeadlineExceeded, ErrorCode::DeadlineExceeded),
            (ServeError::WorkerDied, ErrorCode::WorkerDied),
            (ServeError::ShuttingDown, ErrorCode::ShuttingDown),
            (
                ServeError::WindowLength { got: 1, want: 2 },
                ErrorCode::WindowLength,
            ),
            (
                ServeError::AuxMismatch {
                    head: "mct",
                    needs_aux: true,
                },
                ErrorCode::AuxMismatch,
            ),
            (ServeError::Poisoned, ErrorCode::Poisoned),
        ] {
            assert_eq!(ErrorCode::from_serve(&e), code);
        }
    }

    #[test]
    fn hostile_prefix_rejected_before_allocation() {
        assert_eq!(
            body_len([0xff, 0xff, 0xff, 0xff]),
            Err(FrameError::Oversized {
                len: u32::MAX as u64,
                max: MAX_BODY
            })
        );
        assert_eq!(body_len([0, 0, 0, 0]), Err(FrameError::Truncated));
        assert!(body_len(((MAX_BODY as u32) + 1).to_le_bytes()).is_err());
        assert!(body_len(64u32.to_le_bytes()).is_ok());
    }

    #[test]
    fn malformed_bodies_return_typed_errors() {
        let good = encode_request(&req()).unwrap();
        let body = &good[4..];
        // Bad magic.
        let mut b = body.to_vec();
        b[0] ^= 0x20;
        assert_eq!(decode_body(&b), Err(FrameError::BadMagic));
        // Bad kind.
        let mut b = body.to_vec();
        b[8] = 9;
        assert_eq!(decode_body(&b), Err(FrameError::BadKind(9)));
        // Window count larger than the bytes present.
        let mut b = body.to_vec();
        let count_off = b.len() - 4 * 4 - 4;
        b[count_off..count_off + 4].copy_from_slice(&100u32.to_le_bytes());
        assert_eq!(decode_body(&b), Err(FrameError::Truncated));
        // Window count over the protocol limit.
        b[count_off..count_off + 4].copy_from_slice(&(MAX_WINDOW as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_body(&b),
            Err(FrameError::WindowTooLong {
                got: MAX_WINDOW + 1,
                max: MAX_WINDOW
            })
        );
        // Trailing garbage.
        let mut b = body.to_vec();
        b.push(0);
        assert_eq!(decode_body(&b), Err(FrameError::TrailingBytes { extra: 1 }));
        // Every truncation fails, never panics.
        for cut in 0..body.len() {
            assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }
        // Non-UTF-8 model name.
        let mut b = body.to_vec();
        b[23] = 0xff; // first model byte (8 magic + 1 kind + 8 id + 4 deadline + 2 len)
        assert_eq!(decode_body(&b), Err(FrameError::BadUtf8));
    }

    #[test]
    fn long_error_detail_is_truncated_not_rejected() {
        let resp = Response {
            id: 3,
            result: Err(WireError {
                code: ErrorCode::BadRequest,
                detail: "x".repeat(MAX_NAME * 3),
            }),
        };
        let frame = encode_response(&resp);
        match decode_body(&frame[4..]).unwrap() {
            Frame::Response(r) => {
                let err = r.result.unwrap_err();
                assert_eq!(err.code, ErrorCode::BadRequest);
                assert_eq!(err.detail.len(), MAX_NAME);
            }
            other => panic!("expected a response, got {other:?}"),
        }
    }
}
