//! Blocking NTTWIRE1 client over TCP or unix sockets.
//!
//! One connection, requests in lockstep: [`NetClient::predict`] writes
//! a frame, blocks on the response, and maps the three failure layers
//! into one [`NetError`] — transport ([`NetError::Io`]), framing
//! ([`NetError::Frame`]), and server-side typed errors
//! ([`NetError::Server`], carrying the stable [`ErrorCode`]). A client
//! that needs pipelining opens more connections (that is what the
//! server's thread-per-connection model expects, and what the
//! `net_load` bench does).

use crate::frame::{self, ErrorCode, Frame, Request, Response, WireError};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Everything that can go wrong with one request, layered.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (refused, reset, closed mid-frame). After
    /// an `Io` error the connection is dead: reconnect.
    Io(io::Error),
    /// The peer sent bytes that do not decode as NTTWIRE1.
    Frame(frame::FrameError),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// The response id does not match the request (protocol violation
    /// — on a lockstep connection ids must round-trip exactly).
    IdMismatch { sent: u64, got: u64 },
}

impl NetError {
    /// The protocol error code, when the failure was a server answer.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server(e) => Some(e.code),
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Server(e) => write!(f, "server: {e}"),
            NetError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not answer request id {sent}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<frame::FrameError> for NetError {
    fn from(e: frame::FrameError) -> Self {
        NetError::Frame(e)
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// One blocking connection to a [`crate::NetServer`].
pub struct NetClient {
    transport: Transport,
    next_id: u64,
}

impl NetClient {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        // Same reasoning as the server side: lockstep request/response
        // must not sit out Nagle+delayed-ACK turns.
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            transport: Transport::Tcp(stream),
            next_id: 1,
        })
    }

    /// Connect over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<NetClient> {
        Ok(NetClient {
            transport: Transport::Unix(UnixStream::connect(path)?),
            next_id: 1,
        })
    }

    /// Predict one window: build a request (auto-assigned id), send,
    /// block for the answer. `deadline` is the server-side budget; it
    /// is capped at ~71 minutes by the wire's `u32` microseconds.
    pub fn predict(
        &mut self,
        model: &str,
        head: &str,
        window: &[f32],
        aux: Option<f32>,
        deadline: Option<Duration>,
    ) -> Result<f32, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let deadline_micros = deadline
            .map(|d| u32::try_from(d.as_micros()).unwrap_or(u32::MAX))
            .unwrap_or(0);
        let req = Request {
            id,
            model: model.to_string(),
            head: head.to_string(),
            deadline_micros,
            aux,
            window: window.to_vec(),
        };
        let resp = self.send(&req)?;
        resp.result.map_err(NetError::Server)
    }

    /// Send a fully caller-built request and return the raw response
    /// (already id-checked). The soak tests use this to pin request
    /// ids, which is what makes chaos `net.conn.drop` schedules
    /// replayable.
    pub fn send(&mut self, req: &Request) -> Result<Response, NetError> {
        let bytes = frame::encode_request(req)?;
        self.transport.write_all(&bytes)?;
        let mut prefix = [0u8; 4];
        self.transport.read_exact(&mut prefix)?;
        let len = frame::body_len(prefix)?;
        let mut body = vec![0u8; len];
        self.transport.read_exact(&mut body)?;
        match frame::decode_body(&body)? {
            Frame::Response(resp) => {
                // Id 0 on an error frame is connection-scoped: the
                // server answered before reading any request (e.g. the
                // accept-time Overloaded shed). It answers *this*
                // request's slot on a lockstep connection.
                let conn_scoped = resp.id == 0 && resp.result.is_err();
                if resp.id != req.id && !conn_scoped {
                    return Err(NetError::IdMismatch {
                        sent: req.id,
                        got: resp.id,
                    });
                }
                Ok(resp)
            }
            Frame::Request(_) => Err(NetError::Frame(frame::FrameError::BadKind(
                frame::KIND_REQUEST,
            ))),
        }
    }
}
