//! Regenerates **Table 1**: MSE for all models and tasks.
//!
//! Columns: delay prediction on the pre-training dataset; delay
//! prediction after fine-tuning on the 10% case-1 dataset (unseen
//! cross-traffic); message completion time (log scale) after
//! fine-tuning on the same 10% dataset.
//!
//! Rows: pre-trained NTT, from-scratch NTT, the two naive baselines,
//! and the four ablations of §3/Table 1.
//!
//! Run: `cargo run --release -p ntt-bench --bin table1 [--scale quick|paper]`
//!
//! Absolute MSEs differ from the paper (different simulator substrate
//! and scale); the comparisons — who wins, which ablations break — are
//! the reproduced result. See EXPERIMENTS.md.

use ntt_bench::report::{fmt_duration, fmt_e3, Table};
use ntt_bench::runner::{delay_sets, experiment, mct_sets, pretrain_variant, Env};
use ntt_core::baselines::{
    delay_ewma_mse, delay_last_observed_mse, mct_ewma_mse, mct_last_observed_mse, EWMA_ALPHA,
};
use ntt_core::FinetuneOpts;
use ntt_data::{FeatureMask, TraceData};
use ntt_sim::Scenario;
use std::sync::Arc;
use std::time::Instant;

/// The fraction defining the paper's "smaller" fine-tuning datasets.
const TEN_PERCENT: f64 = 0.10;

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!("[table1] scale {:?}", env.scale);

    let pre_traces = env.traces(Scenario::Pretrain);
    let ft_traces = env.traces(Scenario::Case1);

    // (label, aggregation, feature mask, paper reference values x1e-3).
    let variants: Vec<(&str, ntt_core::Aggregation, FeatureMask, [f64; 3])> = vec![
        (
            "Pre-trained",
            env.agg_multiscale(),
            FeatureMask::all(),
            [0.072, 0.097, 65.0],
        ),
        (
            "No aggregation",
            ntt_core::Aggregation::None,
            FeatureMask::all(),
            [0.258, 0.430, 61.0],
        ),
        (
            "Fixed aggregation",
            env.agg_fixed(),
            FeatureMask::all(),
            [0.055, 0.134, 115.0],
        ),
        (
            "Without packet size",
            env.agg_multiscale(),
            FeatureMask::without_size(),
            [0.001, 8.688, 94.0],
        ),
        (
            "Without delay",
            env.agg_multiscale(),
            FeatureMask::without_delay(),
            [15.797, 10.898, 802.0],
        ),
    ];

    let mut table = Table::new(
        "Table 1 - variance-relative MSE x1e-3 for all models and tasks (paper reference in [brackets])",
        &[
            "Model",
            "Delay pre-train",
            "[paper]",
            "Delay fine-tune 10%",
            "[paper]",
            "MCT log",
            "[paper]",
        ],
    );

    // ---- NTT variants: pre-train, then fine-tune decoder-only.
    // Every row runs through the Experiment pipeline: the feature mask
    // rides in the model config, the pre-training normalizer flows into
    // every fine-tuning dataset, and fine-tuning works on weight clones
    // so rows stay independent without checkpoint gymnastics. ----
    let ft_data = TraceData::from_traces(&ft_traces);
    let ten_pct = FinetuneOpts::decoder_only()
        .fraction(TEN_PERCENT)
        .seed(env.seed);
    let mut scratch_row: Option<[String; 2]> = None;
    for (label, agg, mask, paper) in &variants {
        let v = pretrain_variant(&env, &pre_traces, *agg, *mask, label);
        let mut pre = v.pre;
        pre.exp.train = env.finetune_cfg();

        // Fine-tune the delay decoder on the 10% case-1 dataset.
        let ft = pre.finetune_on(Arc::clone(&ft_data), &ten_pct);
        let ft_nmse = ft.eval.mse_raw / ft.test_target_variance;
        eprintln!("[ft-delay:{label}] test MSE {:.3}e-3", ft_nmse * 1e3);

        // Fine-tune a fresh MCT decoder on the 10% case-1 MCT dataset.
        let mct = pre.finetune_mct_on(Arc::clone(&ft_data), &ten_pct);
        let mct_nmse = mct.eval.mse_raw / mct.test_target_variance;
        eprintln!("[ft-mct:{label}] test MSE {:.3}e-3", mct_nmse * 1e3);

        table.row(&[
            label.to_string(),
            fmt_e3(v.pretrain_nmse),
            format!("[{:.3}]", paper[0]),
            fmt_e3(ft_nmse),
            format!("[{:.3}]", paper[1]),
            fmt_e3(mct_nmse),
            format!("[{:.0}]", paper[2]),
        ]);

        // The "from scratch" row trains the same architecture directly
        // on the 10% fine-tuning datasets (computed once, for the
        // unablated architecture). A scratch experiment fits its own
        // normalization — it never saw the pre-training data.
        if *label == "Pre-trained" {
            let mut s_exp = experiment(&env, *agg, *mask);
            s_exp.model.seed ^= 0xff;
            s_exp.train = env.finetune_cfg();
            let s = s_exp.scratch_on(
                Arc::clone(&ft_data),
                &FinetuneOpts::full().fraction(TEN_PERCENT).seed(env.seed),
            );
            let s_nmse = s.eval.mse_raw / s.test_target_variance;
            eprintln!("[scratch-delay] test MSE {:.3}e-3", s_nmse * 1e3);

            // Scratch MCT: an untrained trunk plus a fresh MCT head,
            // trained together — its normalizer is fitted on the
            // fine-tuning windows (a scratch site owns no other data).
            let (s_train_all, _) = s_exp.delay_datasets(Arc::clone(&ft_data), None);
            let mut s2_exp = s_exp;
            s2_exp.model.seed ^= 0x01;
            let m = s2_exp.untrained(s_train_all.norm.clone()).finetune_mct_on(
                Arc::clone(&ft_data),
                &FinetuneOpts::full().fraction(TEN_PERCENT).seed(env.seed),
            );
            let m_nmse = m.eval.mse_raw / m.test_target_variance;
            eprintln!("[scratch-mct] test MSE {:.3}e-3", m_nmse * 1e3);
            scratch_row = Some([fmt_e3(s_nmse), fmt_e3(m_nmse)]);
        }
    }

    // ---- From-scratch row ----
    let [s_delay, s_mct] = scratch_row.expect("scratch row computed with first variant");
    table.row(&[
        "From scratch".into(),
        "-".into(),
        "[-]".into(),
        s_delay,
        "[0.313]".into(),
        s_mct,
        "[117]".into(),
    ]);

    // ---- Naive baselines (no learning; computed on the test splits) ----
    let seq = env.agg_multiscale().seq_len();
    let (_, pre_test) = delay_sets(&env, &pre_traces, seq, None);
    let (_, ft_test) = delay_sets(&env, &ft_traces, seq, None);
    let (_, mct_test) = {
        let (tr, te) = mct_sets(&env, &ft_traces, seq, pre_test.norm.clone());
        (tr, te)
    };
    let (pre_var, ft_var, mct_var) = (
        pre_test.target_variance(),
        ft_test.target_variance(),
        mct_test.target_log_variance(),
    );
    table.row(&[
        "Last observed".into(),
        fmt_e3(delay_last_observed_mse(&pre_test) / pre_var),
        "[0.142]".into(),
        fmt_e3(delay_last_observed_mse(&ft_test) / ft_var),
        "[0.121]".into(),
        fmt_e3(mct_last_observed_mse(&mct_test) / mct_var),
        "[2189]".into(),
    ]);
    table.row(&[
        "EWMA (a=0.01)".into(),
        fmt_e3(delay_ewma_mse(&pre_test, EWMA_ALPHA) / pre_var),
        "[0.259]".into(),
        fmt_e3(delay_ewma_mse(&ft_test, EWMA_ALPHA) / ft_var),
        "[0.211]".into(),
        fmt_e3(mct_ewma_mse(&mct_test, EWMA_ALPHA) / mct_var),
        "[1147]".into(),
    ]);

    println!("{}", table.render());
    match table.write_tsv("table1") {
        Ok(p) => eprintln!("[table1] wrote {}", p.display()),
        Err(e) => eprintln!("[table1] tsv write failed: {e}"),
    }
    eprintln!(
        "[table1] done in {} (all values: MSE / Var(test targets), x1e-3; 1000 = predicting the mean)",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
