//! Regenerates **Table 2**: pre-training saves fine-tuning data and
//! computing power (same topology, case 1).
//!
//! Grid: {pre-trained → decoder-only fine-tune, from-scratch → full
//! train} × {full fine-tuning dataset, 10% dataset}; reports delay MSE
//! and wall-clock training time.
//!
//! Run: `cargo run --release -p ntt-bench --bin table2 [--scale quick|paper]`

use ntt_bench::report::{fmt_duration, fmt_e3, Table};
use ntt_bench::runner::{experiment, pretrain_variant, Env};
use ntt_core::FinetuneOpts;
use ntt_data::{FeatureMask, TraceData};
use ntt_sim::Scenario;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!("[table2] scale {:?}", env.scale);

    let pre_traces = env.traces(Scenario::Pretrain);
    let ft_traces = env.traces(Scenario::Case1);
    let agg = env.agg_multiscale();
    let ft_data = TraceData::from_traces(&ft_traces);

    // One shared pre-training run (its cost is amortized across all
    // fine-tunings — that is the economics of Fig. 1).
    let v = pretrain_variant(&env, &pre_traces, agg, FeatureMask::all(), "table2");
    let pretrain_time = v.report.wall.as_secs_f64();
    let mut pre = v.pre;
    pre.exp.train = env.finetune_cfg();

    let mut table = Table::new(
        "Table 2 - fine-tuning cost on the same topology (variance-relative delay MSE x1e-3; paper in [brackets])",
        &["Setting", "Layers trained", "MSE", "[paper]", "Train time", "[paper]"],
    );

    // Pre-trained, decoder-only, full and 10% datasets. Rows are
    // independent by construction: fine-tuning always works on a
    // weight-cloned copy of the shared pre-trained model.
    for (fraction, frac_label, paper_mse, paper_time) in [
        (None, "Fine-tuning (full)", 0.033, "8h45"),
        (Some(0.10), "Fine-tuning (10%)", 0.037, "3h45"),
    ] {
        let mut opts = FinetuneOpts::decoder_only().seed(env.seed);
        if let Some(f) = fraction {
            opts = opts.fraction(f);
        }
        let ft = pre.finetune_on(Arc::clone(&ft_data), &opts);
        table.row(&[
            format!("Pre-trained + {frac_label}"),
            "Decoder only".into(),
            fmt_e3(ft.eval.mse_raw / ft.test_target_variance),
            format!("[{paper_mse:.3}]"),
            fmt_duration(ft.report.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
        eprintln!(
            "[table2] pre-trained {frac_label}: {} windows, {} trainable params, {}",
            ft.train_windows,
            ft.report.trainable_params,
            fmt_duration(ft.report.wall.as_secs_f64())
        );
    }

    // From scratch, full model, full and 10% datasets. A scratch
    // experiment fits its own normalization (it never saw the
    // pre-training data).
    let mut s_exp = experiment(&env, agg, FeatureMask::all());
    s_exp.model.seed ^= 0xff;
    s_exp.train = env.finetune_cfg();
    for (fraction, frac_label, paper_mse, paper_time) in [
        (None, "Fine-tuning (full)", 0.036, "26h"),
        (Some(0.10), "Fine-tuning (10%)", 0.118, "8h40"),
    ] {
        let mut opts = FinetuneOpts::full().seed(env.seed);
        if let Some(f) = fraction {
            opts = opts.fraction(f);
        }
        let s = s_exp.scratch_on(Arc::clone(&ft_data), &opts);
        table.row(&[
            format!("From scratch + {frac_label}"),
            "Full NTT".into(),
            fmt_e3(s.eval.mse_raw / s.test_target_variance),
            format!("[{paper_mse:.3}]"),
            fmt_duration(s.report.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    println!("{}", table.render());
    eprintln!(
        "[table2] note: pre-training itself took {} once, amortized over every fine-tuning",
        fmt_duration(pretrain_time)
    );
    match table.write_tsv("table2") {
        Ok(p) => eprintln!("[table2] wrote {}", p.display()),
        Err(e) => eprintln!("[table2] tsv write failed: {e}"),
    }
    eprintln!(
        "[table2] done in {}",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
