//! Regenerates **Table 2**: pre-training saves fine-tuning data and
//! computing power (same topology, case 1).
//!
//! Grid: {pre-trained → decoder-only fine-tune, from-scratch → full
//! train} × {full fine-tuning dataset, 10% dataset}; reports delay MSE
//! and wall-clock training time.
//!
//! Run: `cargo run --release -p ntt-bench --bin table2 [--scale quick|paper]`

use ntt_bench::report::{fmt_duration, fmt_e3, Table};
use ntt_bench::runner::{delay_sets, pretrain_variant, Env};
use ntt_core::{eval_delay, train_delay, DelayHead, Ntt, NttConfig, TrainMode};
use ntt_data::FeatureMask;
use ntt_sim::Scenario;
use std::time::Instant;

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!("[table2] scale {:?}", env.scale);

    let pre_traces = env.traces(Scenario::Pretrain);
    let ft_traces = env.traces(Scenario::Case1);
    let agg = env.agg_multiscale();
    let seq = agg.seq_len();

    // One shared pre-training run (its cost is amortized across all
    // fine-tunings — that is the economics of Fig. 1).
    let v = pretrain_variant(&env, &pre_traces, agg, FeatureMask::all(), "table2");
    let pretrain_time = v.report.wall.as_secs_f64();

    let (ft_train_full, ft_test) = delay_sets(&env, &ft_traces, seq, None);
    let ft_train_small = ft_train_full.subsample(0.10, env.seed);

    let mut table = Table::new(
        "Table 2 - fine-tuning cost on the same topology (variance-relative delay MSE x1e-3; paper in [brackets])",
        &["Setting", "Layers trained", "MSE", "[paper]", "Train time", "[paper]"],
    );

    // Pre-trained, decoder-only, full and 10% datasets. Each row
    // re-fine-tunes from the pre-trained weights (restored via a fresh
    // head so rows are independent).
    for (ds, frac_label, paper_mse, paper_time) in [
        (&ft_train_full, "Fine-tuning (full)", 0.033, "8h45"),
        (&ft_train_small, "Fine-tuning (10%)", 0.037, "3h45"),
    ] {
        let head = DelayHead::new(v.model.cfg.d_model, env.seed ^ 0x7a);
        let rep = train_delay(
            &v.model,
            &head,
            ds,
            &env.finetune_cfg(),
            TrainMode::DecoderOnly,
        );
        let ev = eval_delay(&v.model, &head, &ft_test, 64);
        table.row(&[
            format!("Pre-trained + {frac_label}"),
            "Decoder only".into(),
            fmt_e3(ev.mse_raw / ft_test.target_variance()),
            format!("[{paper_mse:.3}]"),
            fmt_duration(rep.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
        eprintln!(
            "[table2] pre-trained {frac_label}: {} trainable params, {}",
            rep.trainable_params,
            fmt_duration(rep.wall.as_secs_f64())
        );
    }

    // From scratch, full model, full and 10% datasets. Fresh
    // normalization (never saw pre-training data).
    let (s_train_full, s_test) = delay_sets(&env, &ft_traces, seq, None);
    let s_train_small = s_train_full.subsample(0.10, env.seed);
    for (ds, frac_label, paper_mse, paper_time) in [
        (&s_train_full, "Fine-tuning (full)", 0.036, "26h"),
        (&s_train_small, "Fine-tuning (10%)", 0.118, "8h40"),
    ] {
        let cfg = env.model_cfg(agg, FeatureMask::all());
        let scratch = Ntt::new(NttConfig {
            seed: cfg.seed ^ 0xff,
            ..cfg
        });
        let head = DelayHead::new(cfg.d_model, env.seed ^ 0xff);
        let rep = train_delay(&scratch, &head, ds, &env.finetune_cfg(), TrainMode::Full);
        let ev = eval_delay(&scratch, &head, &s_test, 64);
        table.row(&[
            format!("From scratch + {frac_label}"),
            "Full NTT".into(),
            fmt_e3(ev.mse_raw / s_test.target_variance()),
            format!("[{paper_mse:.3}]"),
            fmt_duration(rep.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    println!("{}", table.render());
    eprintln!(
        "[table2] note: pre-training itself took {} once, amortized over every fine-tuning",
        fmt_duration(pretrain_time)
    );
    match table.write_tsv("table2") {
        Ok(p) => eprintln!("[table2] wrote {}", p.display()),
        Err(e) => eprintln!("[table2] tsv write failed: {e}"),
    }
    eprintln!(
        "[table2] done in {}",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
