//! Regenerates **Fig. 4's datasets** and prints their statistics: the
//! dataset-generation setup is the paper's only data-bearing figure.
//!
//! For each scenario (pre-training, fine-tuning case 1 and case 2) this
//! builds the configured number of simulation runs and reports packet
//! counts, message counts, loss, and the delay distribution — the
//! checkable facts behind "this dataset contains about 1.2 million
//! packets" (§4).
//!
//! Run: `cargo run --release -p ntt-bench --bin datasets [--scale quick|paper]`

use ntt_bench::report::{fmt_duration, Table};
use ntt_bench::runner::Env;
use ntt_sim::scenarios::RunTrace;
use ntt_sim::Scenario;
use std::time::Instant;

fn delay_stats(traces: &[RunTrace]) -> (f64, f64, f64) {
    let mut delays: Vec<u64> = traces
        .iter()
        .flat_map(|t| t.packets.iter().map(|p| p.delay_ns))
        .collect();
    delays.sort_unstable();
    let n = delays.len().max(1);
    let mean = delays.iter().map(|&d| d as f64).sum::<f64>() / n as f64 / 1e9;
    let p50 = delays[n / 2] as f64 / 1e9;
    let p99 = delays[(n as f64 * 0.99) as usize % n] as f64 / 1e9;
    (mean, p50, p99)
}

fn mct_stats(traces: &[RunTrace]) -> (f64, f64) {
    let mut mcts: Vec<u64> = traces
        .iter()
        .flat_map(|t| t.messages.iter().map(|m| m.mct_ns()))
        .collect();
    mcts.sort_unstable();
    let n = mcts.len().max(1);
    let mean = mcts.iter().map(|&d| d as f64).sum::<f64>() / n as f64 / 1e9;
    let p999 = mcts[((n as f64 * 0.999) as usize).min(n - 1)] as f64 / 1e9;
    (mean, p999)
}

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!(
        "[datasets] scale {:?}: {} runs x {} per scenario",
        env.scale,
        env.n_runs(),
        env.scenario_cfg().duration
    );

    let mut table = Table::new(
        "Fig. 4 datasets (paper pre-training: ~1.2M packets; MCT mean 0.2s, p99.9 23s)",
        &[
            "Dataset",
            "packets",
            "messages",
            "drops",
            "delay mean",
            "delay p50",
            "delay p99",
            "MCT mean",
            "MCT p99.9",
        ],
    );

    for (scenario, label) in [
        (Scenario::Pretrain, "Pre-training"),
        (Scenario::Case1, "Case 1 (+cross-traffic)"),
        (Scenario::Case2, "Case 2 (larger topology)"),
    ] {
        let traces = env.traces(scenario);
        let packets: usize = traces.iter().map(|t| t.packets.len()).sum();
        let messages: usize = traces.iter().map(|t| t.messages.len()).sum();
        let drops: u64 = traces.iter().map(|t| t.drops).sum();
        let (dmean, dp50, dp99) = delay_stats(&traces);
        let (mmean, mp999) = mct_stats(&traces);
        table.row(&[
            label.into(),
            packets.to_string(),
            messages.to_string(),
            drops.to_string(),
            format!("{:.1} ms", dmean * 1e3),
            format!("{:.1} ms", dp50 * 1e3),
            format!("{:.1} ms", dp99 * 1e3),
            format!("{mmean:.2} s"),
            format!("{mp999:.1} s"),
        ]);
    }

    println!("{}", table.render());
    match table.write_tsv("datasets") {
        Ok(p) => eprintln!("[datasets] wrote {}", p.display()),
        Err(e) => eprintln!("[datasets] tsv write failed: {e}"),
    }
    eprintln!(
        "[datasets] done in {}",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
