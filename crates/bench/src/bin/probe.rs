//! Convergence probe (development tool): how many steps until the NTT
//! crosses the last-observed baseline, in normalized MSE units.
//!
//! Run: `cargo run --release -p ntt-bench --bin probe`

use ntt_bench::runner::{delay_sets, mct_sets, Env, Scale};
use ntt_core::baselines::*;
use ntt_core::*;
use ntt_data::FeatureMask;
use ntt_nn::Module;
use ntt_sim::Scenario;

fn main() {
    let env = Env {
        scale: Scale::Quick,
        seed: 0,
        threads: 0,
    };
    let traces = env.traces(Scenario::Pretrain);
    let agg = env.agg_multiscale();
    let (train, test) = delay_sets(&env, &traces, agg.seq_len(), None);
    let std2 = (train.delay_std() as f64).powi(2);
    let lo_norm = delay_last_observed_mse(&test) / std2;
    let ew_norm = delay_ewma_mse(&test, EWMA_ALPHA) / std2;
    eprintln!(
        "baselines (norm x1e-3): last-observed {:.3}, ewma {:.3}",
        lo_norm * 1e3,
        ew_norm * 1e3
    );

    let cfg = env.model_cfg(agg, FeatureMask::all());
    let model = Ntt::new(cfg);
    let head = DelayHead::new(cfg.d_model, 0);
    eprintln!(
        "{} params, {} windows",
        model.num_params() + head.num_params(),
        train.len()
    );
    let mut tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(100),
        seed: 0,
        ..TrainConfig::default()
    };
    for round in 0..12 {
        tc.seed = round;
        let rep = train_delay(&model, &head, &train, &tc, TrainMode::Full);
        let ev = eval_delay(&model, &head, &test, 64);
        eprintln!(
            "steps {:>4}: train loss {:.5}, test mse_norm {:.4}e-3 ({:.1}s)",
            (round + 1) * 100,
            rep.final_loss(),
            ev.mse_norm * 1e3,
            rep.wall.as_secs_f64()
        );
    }

    // MCT from scratch on full data.
    let (mtrain, mtest) = mct_sets(&env, &traces, agg.seq_len(), train.norm.clone());
    let mstd2 = (mtrain.mct_std() as f64).powi(2);
    eprintln!(
        "mct baselines (norm): last-observed {:.3}, ewma {:.3}; {} anchors",
        mct_last_observed_mse(&mtest) / mstd2,
        mct_ewma_mse(&mtest, EWMA_ALPHA) / mstd2,
        mtrain.len()
    );
    let m2 = Ntt::new(cfg);
    let mh = MctHead::new(cfg.d_model, 1);
    let mut mc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        lr: 2e-3,
        max_steps_per_epoch: Some(100),
        seed: 0,
        ..TrainConfig::default()
    };
    for round in 0..6 {
        mc.seed = round;
        let rep = train_mct(&m2, &mh, &mtrain, &mc, TrainMode::Full);
        let ev = eval_mct(&m2, &mh, &mtest, 64);
        eprintln!(
            "mct steps {:>4}: train loss {:.4}, test mse_norm {:.4} ({:.1}s)",
            (round + 1) * 100,
            rep.final_loss(),
            ev.mse_norm,
            rep.wall.as_secs_f64()
        );
    }
}
