//! Regenerates **Table 3**: generalization on a larger topology
//! (fine-tuning case 2) — plus the in-text results: baselines (MSE 11.2
//! and 4.0) and the no-addressing ablation (MSE 2.8).
//!
//! On the larger topology, packets toward different receivers see
//! different path delays and congestion. The paper's finding: fine-
//! tuning from scratch no longer works at all, while the pre-trained
//! NTT adapts; and without receiver (addressing) information the model
//! cannot separate the paths.
//!
//! Run: `cargo run --release -p ntt-bench --bin table3 [--scale quick|paper]`

use ntt_bench::report::{fmt_duration, fmt_e3, Table};
use ntt_bench::runner::{delay_sets, experiment, pretrain_variant, Env};
use ntt_core::baselines::{delay_ewma_mse, delay_last_observed_mse, EWMA_ALPHA};
use ntt_core::FinetuneOpts;
use ntt_data::{FeatureMask, TraceData};
use ntt_sim::Scenario;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!("[table3] scale {:?}", env.scale);

    let pre_traces = env.traces(Scenario::Pretrain);
    let ft_traces = env.traces(Scenario::Case2);
    let agg = env.agg_multiscale();
    let seq = agg.seq_len();

    let v = pretrain_variant(&env, &pre_traces, agg, FeatureMask::all(), "table3");
    let ft_data = TraceData::from_traces(&ft_traces);
    let mut pre = v.pre;
    pre.exp.train = env.finetune_cfg();

    let mut table = Table::new(
        "Table 3 - larger topology (variance-relative delay MSE x1e-3; paper in [brackets])",
        &["Setting", "MSE", "[paper]", "Train time", "[paper]"],
    );

    // Pre-trained rows. On the harder topology the paper fine-tunes the
    // full model (learning the topology's specifics needs trunk
    // updates); decoder-only is reported by table2. Rows are
    // independent because fine-tuning clones the pre-trained weights —
    // no more checkpoint save/restore between rows.
    for (fraction, label, paper_mse, paper_time) in [
        (None, "Pre-trained + full data", 0.004, "10h"),
        (Some(0.10), "Pre-trained + 10% data", 0.035, "8h"),
    ] {
        let mut opts = FinetuneOpts::full().seed(env.seed);
        if let Some(f) = fraction {
            opts = opts.fraction(f);
        }
        let ft = pre.finetune_on(Arc::clone(&ft_data), &opts);
        table.row(&[
            label.into(),
            fmt_e3(ft.eval.mse_raw / ft.test_target_variance),
            format!("[{paper_mse:.3}]"),
            fmt_duration(ft.report.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    // From-scratch rows (fresh normalization, fresh weights).
    let mut s_exp = experiment(&env, agg, FeatureMask::all());
    s_exp.model.seed ^= 0xff;
    s_exp.train = env.finetune_cfg();
    for (fraction, label, paper_mse, paper_time) in [
        (None, "From scratch + full data", 5.2, "20h"),
        (Some(0.10), "From scratch + 10% data", 8.2, "11h"),
    ] {
        let mut opts = FinetuneOpts::full().seed(env.seed);
        if let Some(f) = fraction {
            opts = opts.fraction(f);
        }
        let s = s_exp.scratch_on(Arc::clone(&ft_data), &opts);
        table.row(&[
            label.into(),
            fmt_e3(s.eval.mse_raw / s.test_target_variance),
            format!("[{paper_mse}]"),
            fmt_duration(s.report.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    // In-text: naive baselines on the case-2 test split.
    let (_, s_test) = delay_sets(&env, &ft_traces, seq, None);
    let s_var = s_test.target_variance();
    table.row(&[
        "Last observed (baseline)".into(),
        fmt_e3(delay_last_observed_mse(&s_test) / s_var),
        "[11.2]".into(),
        "-".into(),
        "[-]".into(),
    ]);
    table.row(&[
        "EWMA (baseline)".into(),
        fmt_e3(delay_ewma_mse(&s_test, EWMA_ALPHA) / s_var),
        "[4.0]".into(),
        "-".into(),
        "[-]".into(),
    ]);

    // In-text: without addressing information the model cannot tell
    // receivers apart (paper: MSE 2.8). The mask lives in the model
    // config, so the pipeline ablates every dataset automatically.
    {
        let mask = FeatureMask::without_receiver();
        let v2 = pretrain_variant(&env, &pre_traces, agg, mask, "no-addressing");
        let mut na_pre = v2.pre;
        na_pre.exp.train = env.finetune_cfg();
        let na = na_pre.finetune_on(
            Arc::clone(&ft_data),
            &FinetuneOpts::full().fraction(0.10).seed(env.seed),
        );
        table.row(&[
            "Pre-trained, no addressing + 10%".into(),
            fmt_e3(na.eval.mse_raw / na.test_target_variance),
            "[2.8]".into(),
            fmt_duration(na.report.wall.as_secs_f64()),
            "[-]".into(),
        ]);
    }

    println!("{}", table.render());
    match table.write_tsv("table3") {
        Ok(p) => eprintln!("[table3] wrote {}", p.display()),
        Err(e) => eprintln!("[table3] tsv write failed: {e}"),
    }
    eprintln!(
        "[table3] done in {}",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
