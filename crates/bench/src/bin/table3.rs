//! Regenerates **Table 3**: generalization on a larger topology
//! (fine-tuning case 2) — plus the in-text results: baselines (MSE 11.2
//! and 4.0) and the no-addressing ablation (MSE 2.8).
//!
//! On the larger topology, packets toward different receivers see
//! different path delays and congestion. The paper's finding: fine-
//! tuning from scratch no longer works at all, while the pre-trained
//! NTT adapts; and without receiver (addressing) information the model
//! cannot separate the paths.
//!
//! Run: `cargo run --release -p ntt-bench --bin table3 [--scale quick|paper]`

use ntt_bench::report::{fmt_duration, fmt_e3, Table};
use ntt_bench::runner::{delay_sets, pretrain_variant, Env};
use ntt_core::baselines::{delay_ewma_mse, delay_last_observed_mse, EWMA_ALPHA};
use ntt_core::{eval_delay, train_delay, DelayHead, Ntt, NttConfig, TrainMode};
use ntt_data::FeatureMask;
use ntt_sim::Scenario;
use std::time::Instant;

fn main() {
    let env = Env::from_args();
    let t0 = Instant::now();
    eprintln!("[table3] scale {:?}", env.scale);

    let pre_traces = env.traces(Scenario::Pretrain);
    let ft_traces = env.traces(Scenario::Case2);
    let agg = env.agg_multiscale();
    let seq = agg.seq_len();

    let v = pretrain_variant(&env, &pre_traces, agg, FeatureMask::all(), "table3");

    let (ft_train_full, ft_test) = delay_sets(&env, &ft_traces, seq, None);
    let ft_train_small = ft_train_full.subsample(0.10, env.seed);

    let mut table = Table::new(
        "Table 3 - larger topology (variance-relative delay MSE x1e-3; paper in [brackets])",
        &["Setting", "MSE", "[paper]", "Train time", "[paper]"],
    );

    // Pre-trained rows. On the harder topology the paper fine-tunes the
    // full model (learning the topology's specifics needs trunk
    // updates); decoder-only is reported by table2.
    for (ds, label, paper_mse, paper_time) in [
        (&ft_train_full, "Pre-trained + full data", 0.004, "10h"),
        (&ft_train_small, "Pre-trained + 10% data", 0.035, "8h"),
    ] {
        // Fresh head per row; trunk restarts from the pre-trained
        // weights each time via a checkpoint round-trip.
        let ckpt = std::env::temp_dir().join(format!("ntt_table3_{}.ckpt", std::process::id()));
        ntt_core::checkpoint::save(&ckpt, &[&v.model]).expect("save pretrained trunk");
        let head = DelayHead::new(v.model.cfg.d_model, env.seed ^ 0x7b);
        let rep = train_delay(&v.model, &head, ds, &env.finetune_cfg(), TrainMode::Full);
        let ev = eval_delay(&v.model, &head, &ft_test, 64);
        ntt_core::checkpoint::load(&ckpt, &[&v.model]).expect("restore pretrained trunk");
        std::fs::remove_file(&ckpt).ok();
        table.row(&[
            label.into(),
            fmt_e3(ev.mse_raw / ft_test.target_variance()),
            format!("[{paper_mse:.3}]"),
            fmt_duration(rep.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    // From-scratch rows (fresh normalization, fresh weights).
    let (s_train_full, s_test) = delay_sets(&env, &ft_traces, seq, None);
    let s_train_small = s_train_full.subsample(0.10, env.seed);
    for (ds, label, paper_mse, paper_time) in [
        (&s_train_full, "From scratch + full data", 5.2, "20h"),
        (&s_train_small, "From scratch + 10% data", 8.2, "11h"),
    ] {
        let cfg = env.model_cfg(agg, FeatureMask::all());
        let scratch = Ntt::new(NttConfig {
            seed: cfg.seed ^ 0xff,
            ..cfg
        });
        let head = DelayHead::new(cfg.d_model, env.seed ^ 0xff);
        let rep = train_delay(&scratch, &head, ds, &env.finetune_cfg(), TrainMode::Full);
        let ev = eval_delay(&scratch, &head, &s_test, 64);
        table.row(&[
            label.into(),
            fmt_e3(ev.mse_raw / s_test.target_variance()),
            format!("[{paper_mse}]"),
            fmt_duration(rep.wall.as_secs_f64()),
            format!("[{paper_time}]"),
        ]);
    }

    // In-text: naive baselines on the case-2 test split.
    let s_var = s_test.target_variance();
    table.row(&[
        "Last observed (baseline)".into(),
        fmt_e3(delay_last_observed_mse(&s_test) / s_var),
        "[11.2]".into(),
        "-".into(),
        "[-]".into(),
    ]);
    table.row(&[
        "EWMA (baseline)".into(),
        fmt_e3(delay_ewma_mse(&s_test, EWMA_ALPHA) / s_var),
        "[4.0]".into(),
        "-".into(),
        "[-]".into(),
    ]);

    // In-text: without addressing information the model cannot tell
    // receivers apart (paper: MSE 2.8).
    {
        let mask = FeatureMask::without_receiver();
        let v2 = pretrain_variant(&env, &pre_traces, agg, mask, "no-addressing");
        let (na_train_full, na_test) = delay_sets(&env, &ft_traces, seq, None);
        let na_train = na_train_full.subsample(0.10, env.seed).with_mask(mask);
        let na_test = na_test.with_mask(mask);
        let rep = train_delay(
            &v2.model,
            &v2.head,
            &na_train,
            &env.finetune_cfg(),
            TrainMode::Full,
        );
        let ev = eval_delay(&v2.model, &v2.head, &na_test, 64);
        table.row(&[
            "Pre-trained, no addressing + 10%".into(),
            fmt_e3(ev.mse_raw / na_test.target_variance()),
            "[2.8]".into(),
            fmt_duration(rep.wall.as_secs_f64()),
            "[-]".into(),
        ]);
    }

    println!("{}", table.render());
    match table.write_tsv("table3") {
        Ok(p) => eprintln!("[table3] wrote {}", p.display()),
        Err(e) => eprintln!("[table3] tsv write failed: {e}"),
    }
    eprintln!(
        "[table3] done in {}",
        fmt_duration(t0.elapsed().as_secs_f64())
    );
}
