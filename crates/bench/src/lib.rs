//! # ntt-bench
//!
//! Experiment harness regenerating every table and figure of
//! "A New Hope for Network Model Generalization" (HotNets '22).
//!
//! Binaries (all accept `--scale quick|paper` and `--seed N`):
//! * `datasets` — Fig. 4 dataset generation + statistics
//! * `table1` — MSE for all models, tasks, baselines, and ablations
//! * `table2` — fine-tuning cost (data and time) on the same topology
//! * `table3` — generalization on the larger topology
//!
//! Criterion benches cover the §2 quadratic-attention claim
//! (`attention_scaling`), the matmul kernels, simulator throughput, and
//! aggregation-mode forward cost.

pub mod report;
pub mod runner;
pub mod synth;
