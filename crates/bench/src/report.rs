//! Table formatting and TSV output for the experiment binaries.
//!
//! Every experiment prints a fixed-width table mirroring the paper's
//! layout (with the paper's reference value next to ours) and writes a
//! machine-readable TSV under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple aligned-text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write a TSV version into `results/<name>.tsv` (created under the
    /// workspace root or the current directory).
    pub fn write_tsv(&self, name: &str) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// `results/` next to the workspace `Cargo.toml` when discoverable,
/// else under the current directory.
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return Path::new("results").to_path_buf();
        }
    }
}

/// Format an MSE the way the paper's tables do (×10⁻³ units).
pub fn fmt_e3(v: f64) -> String {
    format!("{:.3}", v * 1e3)
}

/// Format seconds as `XhYY` / `XmYY` / `X.Ys` like the paper's training
/// time column.
pub fn fmt_duration(secs: f64) -> String {
    if secs >= 3600.0 {
        format!(
            "{}h{:02}",
            (secs / 3600.0) as u64,
            ((secs % 3600.0) / 60.0) as u64
        )
    } else if secs >= 60.0 {
        format!("{}m{:02}", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!("{secs:.1}s")
    }
}

/// The commit SHA of the working tree, read straight from `.git`
/// (HEAD → ref file → packed-refs) so benches need no `git` subprocess.
/// `"unknown"` outside a repository or on any parse surprise.
pub fn git_commit_sha() -> String {
    fn read_sha(git_dir: &Path) -> Option<String> {
        let head = fs::read_to_string(git_dir.join("HEAD")).ok()?;
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref: ") else {
            // Detached HEAD: the file holds the SHA itself.
            return valid_sha(head);
        };
        if let Ok(s) = fs::read_to_string(git_dir.join(refname)) {
            return valid_sha(s.trim());
        }
        // Ref not loose — look it up in packed-refs.
        let packed = fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        packed.lines().find_map(|l| {
            let (sha, name) = l.split_once(' ')?;
            (name == refname).then(|| valid_sha(sha)).flatten()
        })
    }
    fn valid_sha(s: &str) -> Option<String> {
        (s.len() >= 40 && s.chars().all(|c| c.is_ascii_hexdigit())).then(|| s[..40].to_string())
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let dot_git = dir.join(".git");
        if dot_git.is_dir() {
            return read_sha(&dot_git).unwrap_or_else(|| "unknown".into());
        }
        if dot_git.is_file() {
            // Worktree: `.git` is a pointer file ("gitdir: <path>").
            let target = fs::read_to_string(&dot_git)
                .ok()
                .and_then(|s| s.trim().strip_prefix("gitdir: ").map(PathBuf::from));
            return target
                .and_then(|t| read_sha(&t))
                .unwrap_or_else(|| "unknown".into());
        }
        if !dir.pop() {
            return "unknown".into();
        }
    }
}

/// Host context as a JSON object string: core count, `NTT_THREADS`, the
/// CPU model when readable, the git commit the tree is at, and whether
/// the `NTT_OBS` kill switch left observability on. Embedded in every
/// `BENCH_*.json` so a number in the perf trajectory is interpretable —
/// a ≤1× thread-scaling "speedup" measured on a 1-core container reads
/// very differently from the same number on a 16-core box, and a
/// latency histogram gathered with metrics off would be empty.
pub fn host_context_json() -> String {
    // Minimal JSON string escaping so arbitrary env/cpuinfo content
    // cannot corrupt the artifact.
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '\\' => vec!['\\', '\\'],
                '"' => vec!['\\', '"'],
                '\n' | '\r' | '\t' => vec![' '],
                c if (c as u32) < 0x20 => vec![],
                c => vec![c],
            })
            .collect()
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ntt_threads = std::env::var("NTT_THREADS").unwrap_or_else(|_| "unset".into());
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    format!(
        "{{\"cores\": {cores}, \"ntt_threads\": \"{}\", \"cpu_model\": \"{}\", \
         \"git_commit\": \"{}\", \"ntt_obs\": \"{}\"}}",
        esc(&ntt_threads),
        esc(&cpu_model),
        esc(&git_commit_sha()),
        if ntt_obs::enabled() { "on" } else { "off" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["model", "mse"]);
        t.row(&["tiny".into(), "1.0".into()]);
        t.row(&["a-much-longer-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows start the second column at the same offset.
        let col = |l: &str| {
            l.find("mse")
                .or_else(|| l.find("1.0"))
                .or_else(|| l.find("22.5"))
        };
        assert_eq!(col(lines[1]), col(lines[3]));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(5.0), "5.0s");
        assert_eq!(fmt_duration(125.0), "2m05");
        assert_eq!(fmt_duration(3725.0), "1h02");
    }

    #[test]
    fn e3_matches_paper_convention() {
        assert_eq!(fmt_e3(0.000072), "0.072");
        assert_eq!(fmt_e3(0.0152), "15.200");
    }

    #[test]
    fn host_context_is_valid_json_shape() {
        let j = host_context_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cores\": "));
        assert!(j.contains("\"ntt_threads\": "));
        assert!(j.contains("\"cpu_model\": "));
        assert!(j.contains("\"git_commit\": "));
        assert!(j.contains("\"ntt_obs\": "));
        // No unescaped quote may survive inside the string values: every
        // '"' in the body must be structural or backslash-escaped.
        let body = &j[1..j.len() - 1];
        let mut in_str = false;
        let mut prev = ' ';
        let mut structural = 0;
        for ch in body.chars() {
            if ch == '"' && prev != '\\' {
                in_str = !in_str;
                structural += 1;
            }
            prev = ch;
        }
        assert!(!in_str, "unbalanced quotes in {j}");
        assert_eq!(structural % 2, 0);
    }

    #[test]
    fn git_sha_resolves_in_this_repo() {
        let sha = git_commit_sha();
        // The workspace is a git repository, so the tests should see a
        // real 40-hex SHA; "unknown" is reserved for non-repo contexts.
        assert_eq!(sha.len(), 40, "unexpected sha {sha:?}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["x".into(), "1".into()]);
        let path = t.write_tsv("test_table_tmp").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a\tb\nx\t1\n");
        std::fs::remove_file(path).ok();
    }
}
