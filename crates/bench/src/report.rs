//! Table formatting and TSV output for the experiment binaries.
//!
//! Every experiment prints a fixed-width table mirroring the paper's
//! layout (with the paper's reference value next to ours) and writes a
//! machine-readable TSV under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple aligned-text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write a TSV version into `results/<name>.tsv` (created under the
    /// workspace root or the current directory).
    pub fn write_tsv(&self, name: &str) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// `results/` next to the workspace `Cargo.toml` when discoverable,
/// else under the current directory.
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return Path::new("results").to_path_buf();
        }
    }
}

/// Format an MSE the way the paper's tables do (×10⁻³ units).
pub fn fmt_e3(v: f64) -> String {
    format!("{:.3}", v * 1e3)
}

/// Format seconds as `XhYY` / `XmYY` / `X.Ys` like the paper's training
/// time column.
pub fn fmt_duration(secs: f64) -> String {
    if secs >= 3600.0 {
        format!(
            "{}h{:02}",
            (secs / 3600.0) as u64,
            ((secs % 3600.0) / 60.0) as u64
        )
    } else if secs >= 60.0 {
        format!("{}m{:02}", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["model", "mse"]);
        t.row(&["tiny".into(), "1.0".into()]);
        t.row(&["a-much-longer-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows start the second column at the same offset.
        let col = |l: &str| {
            l.find("mse")
                .or_else(|| l.find("1.0"))
                .or_else(|| l.find("22.5"))
        };
        assert_eq!(col(lines[1]), col(lines[3]));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(5.0), "5.0s");
        assert_eq!(fmt_duration(125.0), "2m05");
        assert_eq!(fmt_duration(3725.0), "1h02");
    }

    #[test]
    fn e3_matches_paper_convention() {
        assert_eq!(fmt_e3(0.000072), "0.072");
        assert_eq!(fmt_e3(0.0152), "15.200");
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["x".into(), "1".into()]);
        let path = t.write_tsv("test_table_tmp").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a\tb\nx\t1\n");
        std::fs::remove_file(path).ok();
    }
}
