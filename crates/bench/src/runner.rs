//! Shared experiment plumbing: scales, datasets, and training wrappers
//! used by the `table1`/`table2`/`table3`/`datasets` binaries.
//!
//! Two scales:
//! * `--scale quick` (default): the paper's topology and protocol stack
//!   with shorter simulations (15 s × 2 runs) and a proportionally
//!   scaled model (256-packet windows, d_model 32). Runs in minutes on
//!   one core.
//! * `--scale paper`: the paper's full dimensions (60 s × 10 runs,
//!   1024-packet windows, d_model 64). Hours of CPU training.
//!
//! Both scales preserve every *comparison* the paper makes; only
//! absolute numbers shrink. EXPERIMENTS.md records quick-scale results.

use ntt_core::{
    Aggregation, EvalReport, Experiment, NttConfig, ParStrategy, Pretrained, TrainConfig,
    TrainReport,
};
use ntt_data::{DatasetConfig, DelayDataset, FeatureMask, MctDataset, Normalizer, TraceData};
use ntt_fleet::{run_fleet_traces, FleetConfig, SweepSpec};
use ntt_sim::scenarios::{Scenario, ScenarioConfig};
use ntt_sim::{RunTrace, SimTime};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Paper,
}

/// Parsed experiment environment.
#[derive(Debug, Clone, Copy)]
pub struct Env {
    pub scale: Scale,
    pub seed: u64,
    /// Worker threads for *both* halves of the pipeline (0 = one per
    /// core): the simulation fleet fans scenario runs out per shard,
    /// and the trainer fans each optimizer step's batch out as
    /// microbatches. Both are bit-reproducible at any thread count, so
    /// this is purely a throughput knob.
    pub threads: usize,
}

impl Env {
    /// Parse `--scale quick|paper`, `--seed N`, and `--threads N` from
    /// argv (also honors `NTT_SCALE`/`NTT_THREADS`). Unknown flags
    /// abort with usage help.
    pub fn from_args() -> Env {
        let mut scale = match std::env::var("NTT_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        };
        let mut seed = 0u64;
        // One NTT_THREADS parser for the workspace (trainer, fleet,
        // serve bench, and every table binary): ntt_core::env_threads.
        let mut threads = ntt_core::env_threads(0);
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(String::as_str) {
                        Some("quick") => Scale::Quick,
                        Some("paper") => Scale::Paper,
                        other => {
                            eprintln!("unknown scale {other:?}; use quick|paper");
                            std::process::exit(2);
                        }
                    };
                }
                "--seed" => {
                    i += 1;
                    seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                }
                "--threads" => {
                    i += 1;
                    threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs an integer (0 = auto): worker threads for simulation AND training, results identical at any value");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "unknown argument {other:?} (supported: --scale quick|paper, --seed N, --threads N [sim+train workers, 0 = auto])"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        // Re-export the resolved thread count so every ParStrategy
        // derived from the environment (evaluation wrappers,
        // TrainConfig::default) sees the flag too — "--threads" means
        // the whole pipeline, not just the calls that take it
        // explicitly. Safe only because from_args is the first thing
        // each binary's main() does, before any thread could read the
        // environment concurrently.
        std::env::set_var("NTT_THREADS", threads.to_string());
        Env {
            scale,
            seed,
            threads,
        }
    }

    /// Simulation setup (paper topology at both scales; only duration
    /// and run count shrink in quick mode).
    pub fn scenario_cfg(&self) -> ScenarioConfig {
        let mut cfg = ScenarioConfig {
            seed: self.seed,
            ..ScenarioConfig::default()
        };
        if self.scale == Scale::Quick {
            cfg.duration = SimTime::from_secs(15);
            cfg.drain = SimTime::from_secs(2);
        }
        cfg
    }

    /// Simulation runs per dataset (paper: 10).
    pub fn n_runs(&self) -> usize {
        match self.scale {
            Scale::Quick => 2,
            Scale::Paper => 10,
        }
    }

    /// Multi-timescale aggregation at this scale.
    pub fn agg_multiscale(&self) -> Aggregation {
        match self.scale {
            Scale::Quick => Aggregation::MultiScale { block: 5 }, // 256 pkts
            Scale::Paper => Aggregation::paper_multiscale(),      // 1024 pkts
        }
    }

    /// Fixed-aggregation ablation at this scale.
    pub fn agg_fixed(&self) -> Aggregation {
        match self.scale {
            Scale::Quick => Aggregation::Fixed { block: 5 }, // 240 pkts
            Scale::Paper => Aggregation::paper_fixed(),      // 1008 pkts
        }
    }

    /// Model configuration for a given aggregation + feature ablation.
    pub fn model_cfg(&self, aggregation: Aggregation, features: FeatureMask) -> NttConfig {
        let (d_model, d_ff) = match self.scale {
            Scale::Quick => (32, 64),
            Scale::Paper => (64, 128),
        };
        NttConfig {
            aggregation,
            d_model,
            n_heads: 4,
            n_layers: 2,
            d_ff,
            dropout: 0.0,
            features,
            seed: self.seed ^ 0x5eed,
        }
    }

    /// Window extraction parameters for a given sequence length.
    pub fn ds_cfg(&self, seq_len: usize) -> DatasetConfig {
        DatasetConfig {
            seq_len,
            stride: match self.scale {
                Scale::Quick => 24,
                Scale::Paper => 32,
            },
            test_fraction: 0.2,
        }
    }

    /// Pre-training loop parameters. The quick budget (600 steps) is
    /// calibrated so the MCT task crosses below the naive baselines;
    /// the delay task keeps improving well past it (see EXPERIMENTS.md
    /// on scaling).
    pub fn pretrain_cfg(&self) -> TrainConfig {
        match self.scale {
            Scale::Quick => TrainConfig {
                epochs: 6,
                batch_size: 32,
                lr: 2e-3,
                max_steps_per_epoch: Some(100),
                seed: self.seed,
                par: ParStrategy::with_threads(self.threads),
                ..TrainConfig::default()
            },
            Scale::Paper => TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 1e-3,
                max_steps_per_epoch: None,
                seed: self.seed,
                par: ParStrategy::with_threads(self.threads),
                ..TrainConfig::default()
            },
        }
    }

    /// Fine-tuning loop parameters: a fixed epoch count (like the
    /// paper), so wall-clock scales with dataset size — that is
    /// Table 2's training-time story. The quick-scale step cap keeps
    /// full-dataset fine-tuning at ~800 steps and 10%-dataset runs at
    /// ~300 (enough for the MCT head to cross the naive baselines).
    pub fn finetune_cfg(&self) -> TrainConfig {
        match self.scale {
            Scale::Quick => TrainConfig {
                epochs: 40,
                batch_size: 32,
                lr: 2e-3,
                max_steps_per_epoch: Some(20),
                seed: self.seed ^ 1,
                par: ParStrategy::with_threads(self.threads),
                ..TrainConfig::default()
            },
            Scale::Paper => TrainConfig {
                epochs: 10,
                batch_size: 32,
                lr: 1e-3,
                max_steps_per_epoch: None,
                seed: self.seed ^ 1,
                par: ParStrategy::with_threads(self.threads),
                ..TrainConfig::default()
            },
        }
    }

    /// Generate the traces for one Fig. 4 scenario through the fleet
    /// executor (sequential seed schedule, so traces are bit-identical
    /// to the legacy serial `run_many` at any thread count).
    pub fn traces(&self, scenario: Scenario) -> Vec<RunTrace> {
        let label = format!("{scenario:?}");
        eprintln!("[fleet] generating {} x {label} runs...", self.n_runs());
        let spec = SweepSpec::single(scenario, self.scenario_cfg(), self.n_runs());
        let (traces, report) = run_fleet_traces(&spec, &FleetConfig::with_threads(self.threads));
        eprintln!("[fleet] {label}: {}", report.summary());
        traces
    }
}

/// Build delay train/test datasets from traces. Pass `norm` to reuse
/// pre-training normalization during fine-tuning.
pub fn delay_sets(
    env: &Env,
    traces: &[RunTrace],
    seq_len: usize,
    norm: Option<Normalizer>,
) -> (DelayDataset, DelayDataset) {
    let data = TraceData::from_traces(traces);
    DelayDataset::build(data, env.ds_cfg(seq_len), norm)
}

/// Build MCT train/test datasets from traces.
pub fn mct_sets(
    env: &Env,
    traces: &[RunTrace],
    seq_len: usize,
    feature_norm: Normalizer,
) -> (MctDataset, MctDataset) {
    let data = TraceData::from_traces(traces);
    MctDataset::build(data, env.ds_cfg(seq_len), feature_norm)
}

/// The [`Experiment`] pipeline for one (aggregation, mask) variant at
/// this scale: model config, per-scale windowing/stride, the
/// pre-training loop parameters, and the shared thread knob.
pub fn experiment(env: &Env, aggregation: Aggregation, mask: FeatureMask) -> Experiment {
    let cfg = env.model_cfg(aggregation, mask);
    let mut exp = Experiment::new(cfg)
        .with_train(env.pretrain_cfg())
        .threads(env.threads);
    exp.data = env.ds_cfg(cfg.seq_len());
    exp
}

/// A pre-trained NTT variant (one Table 1 row's model).
pub struct PretrainedVariant {
    pub label: String,
    /// The full pipeline object: model, heads, normalizer, provenance.
    pub pre: Pretrained,
    /// Delay MSE (raw seconds²) on the pre-training test split.
    pub pretrain_eval: EvalReport,
    /// `mse_raw / Var(test targets)` — the paper's apparent unit
    /// (variance-relative MSE; 1.0 = predicting the mean).
    pub pretrain_nmse: f64,
    pub report: TrainReport,
    pub mask: FeatureMask,
}

impl PretrainedVariant {
    /// Feature normalizer fitted on the pre-training data (reused when
    /// fine-tuning, so representations stay comparable).
    pub fn norm(&self) -> &Normalizer {
        &self.pre.norm
    }
}

/// Pre-train one NTT variant on the pre-training traces, through the
/// `Experiment` pipeline (the mask rides in `NttConfig::features` and
/// is applied to every dataset the pipeline builds).
pub fn pretrain_variant(
    env: &Env,
    traces: &[RunTrace],
    aggregation: Aggregation,
    mask: FeatureMask,
    label: &str,
) -> PretrainedVariant {
    let exp = experiment(env, aggregation, mask);
    eprintln!("[pretrain:{label}] pre-training via Experiment pipeline...");
    let pre = exp.pretrain_on(
        TraceData::from_traces(traces),
        format!("{label}: {} pretrain traces", traces.len()),
        None,
    );
    let report = pre.report.clone().expect("pretrain_on always reports");
    let pretrain_eval = pre.eval.expect("pretrain_on always evaluates");
    let pretrain_nmse = pretrain_eval.mse_raw
        / pre
            .test_target_variance
            .expect("pretrain_on records variance");
    eprintln!(
        "[pretrain:{label}] {} steps in {}; test MSE {:.3}e-3 (variance-relative); grad norm {:.3} -> {:.3}",
        report.steps,
        crate::report::fmt_duration(report.wall.as_secs_f64()),
        pretrain_nmse * 1e3,
        report.grad_norms.first().copied().unwrap_or(0.0),
        report.final_grad_norm(),
    );
    PretrainedVariant {
        label: label.to_string(),
        pre,
        pretrain_eval,
        pretrain_nmse,
        report,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_env() -> Env {
        Env {
            scale: Scale::Quick,
            seed: 0,
            threads: 0,
        }
    }

    #[test]
    fn scales_produce_consistent_configs() {
        let e = quick_env();
        let agg = e.agg_multiscale();
        assert_eq!(agg.seq_len(), 256);
        let cfg = e.model_cfg(agg, FeatureMask::all());
        assert_eq!(cfg.seq_len(), 256);
        assert_eq!(cfg.d_model % cfg.n_heads, 0);
        let p = Env {
            scale: Scale::Paper,
            seed: 0,
            threads: 0,
        };
        assert_eq!(p.agg_multiscale().seq_len(), 1024);
        assert_eq!(p.agg_fixed().seq_len(), 1008);
        assert_eq!(p.n_runs(), 10);
    }

    #[test]
    fn quick_scenario_is_shorter_but_same_topology() {
        let e = quick_env();
        let s = e.scenario_cfg();
        assert_eq!(s.n_senders, 60, "topology is the paper's");
        assert_eq!(s.bottleneck_bps, 30_000_000);
        assert_eq!(s.bottleneck_queue, 1000);
        assert!(s.duration < ScenarioConfig::default().duration);
    }
}
