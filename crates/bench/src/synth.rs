//! Synthetic training task for engine benchmarks: the delay task's
//! shapes (random windows, fixed targets) without its simulation or
//! dataset-construction cost, so `train_scaling` and the `kernels`
//! bench isolate exactly the tensor/training engine.

use ntt_core::{Ntt, Task};
use ntt_data::NUM_FEATURES;
use ntt_nn::Module;
use ntt_tensor::{Param, Tape, Tensor, Var};

/// Random windows + zero targets behind the [`Task`] trait.
pub struct SynthTask {
    head: ntt_core::DelayHead,
    windows: Tensor, // [N, seq, F]
    seq: usize,
}

impl SynthTask {
    /// `n` windows of `seq` packets for a `d_model`-wide head.
    pub fn new(n: usize, seq: usize, d_model: usize, seed: u64) -> Self {
        SynthTask {
            head: ntt_core::DelayHead::new(d_model, seed),
            windows: Tensor::randn(&[n, seq, NUM_FEATURES], seed ^ 0xbe),
            seq,
        }
    }
}

impl Task for SynthTask {
    fn name(&self) -> &'static str {
        "synth-delay"
    }

    fn len(&self) -> usize {
        self.windows.shape()[0]
    }

    fn head_params(&self) -> Vec<Param> {
        self.head.params()
    }

    fn target_std(&self) -> f32 {
        1.0
    }

    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t> {
        let row = self.seq * NUM_FEATURES;
        let mut x = Vec::with_capacity(idx.len() * row);
        for &i in idx {
            x.extend_from_slice(&self.windows.data()[i * row..(i + 1) * row]);
        }
        let x = Tensor::from_vec(x, &[idx.len(), self.seq, NUM_FEATURES]);
        let pred = self.head.forward(tape, ntt.forward(tape, tape.input(x)));
        pred.mse_loss(&Tensor::zeros(&[idx.len(), 1]))
    }
}
