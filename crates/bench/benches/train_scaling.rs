//! Data-parallel training scaling: optimizer-step throughput of the
//! paper-scale NTT at 1, 2, and 4+ worker threads.
//!
//! Custom harness (no criterion): one measured number — optimizer steps
//! per second — per thread count, a determinism cross-check (losses must
//! be bit-identical across thread counts), and a machine-readable
//! summary in `results/BENCH_train.json`.
//!
//! Uses a synthetic delay-style task (random windows, fixed targets) so
//! the bench isolates the training engine from simulation and dataset
//! construction; the model is the paper's full size (1024-packet
//! windows, d_model 64).
//!
//! Run: `cargo bench -p ntt-bench --bench train_scaling`

use ntt_bench::synth::SynthTask;
use ntt_core::{train, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    // `cargo bench` passes harness flags (e.g. --bench); ignore them.
    let steps = 4usize;
    let batch_size = 32usize;
    let model_cfg = NttConfig {
        aggregation: ntt_core::Aggregation::paper_multiscale(), // 1024-pkt windows
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..NttConfig::default()
    };
    let seq = model_cfg.seq_len();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    if cores > 4 {
        counts.push(cores);
    }
    counts.dedup();

    eprintln!(
        "train_scaling: paper-scale NTT ({seq}-pkt windows, d_model {}), batch {batch_size}, microbatch {}, {steps} steps per thread count",
        model_cfg.d_model,
        ParStrategy::DEFAULT_MICROBATCH,
    );

    struct Row {
        threads: usize,
        steps_per_sec: f64,
        speedup: f64,
        losses: Vec<f64>,
    }
    let mut rows: Vec<Row> = Vec::new();
    for &threads in &counts {
        // Fresh model AND task per run (the task owns the trained head)
        // so every thread count does identical work from identical
        // initial parameters.
        let task = SynthTask::new(2 * batch_size, seq, model_cfg.d_model, 7);
        let ntt = Ntt::new(model_cfg);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size,
            max_steps_per_epoch: Some(steps),
            seed: 3,
            par: ParStrategy::with_threads(threads),
            ..TrainConfig::default()
        };
        // One unmeasured warmup step (page-in, lazy allocs).
        let warm = TrainConfig {
            max_steps_per_epoch: Some(1),
            ..cfg
        };
        train(&Ntt::new(model_cfg), &task, &warm, TrainMode::Full);

        let t0 = Instant::now();
        let report = train(&ntt, &task, &cfg, TrainMode::Full);
        let wall = t0.elapsed().as_secs_f64();
        let sps = report.steps as f64 / wall;
        let speedup = rows.first().map_or(1.0, |r: &Row| sps / r.steps_per_sec);
        eprintln!(
            "  {threads:>2} threads: {:.3} steps/s ({:.2}s, speedup {speedup:.2}x, grad norm {:.3})",
            sps, wall, report.final_grad_norm(),
        );
        rows.push(Row {
            threads,
            steps_per_sec: sps,
            speedup,
            losses: report.epoch_losses,
        });
    }

    // Determinism cross-check: the speedup must be free.
    for r in &rows[1..] {
        assert_eq!(
            r.losses, rows[0].losses,
            "losses diverged between 1 and {} threads — determinism contract broken",
            r.threads
        );
    }
    eprintln!("  losses bit-identical across all thread counts ✓");

    let mut json = String::from("{\n  \"bench\": \"train_scaling\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {},",
        ntt_bench::report::host_context_json()
    );
    let _ = writeln!(json, "  \"model\": \"paper\",");
    let _ = writeln!(json, "  \"seq_len\": {seq},");
    let _ = writeln!(json, "  \"batch_size\": {batch_size},");
    let _ = writeln!(
        json,
        "  \"microbatch\": {},",
        ParStrategy::DEFAULT_MICROBATCH
    );
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"steps_per_sec\": {:.4}, \"speedup\": {:.3}}}{}",
            r.threads,
            r.steps_per_sec,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    // Workspace-root results/, regardless of cargo's bench CWD.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_train.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
