//! Simulator substrate throughput: events per second for the Fig. 4
//! pre-training scenario. Dataset generation cost is part of the
//! paper's economics (collecting fine-tuning data is "expensive"); this
//! pins down what our ns-3 substitute costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
use ntt_sim::SimTime;

fn sim_throughput(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        duration: SimTime::from_secs(2),
        drain: SimTime::from_millis(500),
        ..ScenarioConfig::default()
    };
    // Count events once for throughput accounting.
    let probe = run(Scenario::Pretrain, &cfg);
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probe.events));
    group.bench_function("pretrain_2s_60_senders", |b| {
        b.iter(|| std::hint::black_box(run(Scenario::Pretrain, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
