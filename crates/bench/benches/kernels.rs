//! Tensor-engine throughput: the tiled/packed GEMM kernels against the
//! naive reference, and the paper-scale training step rate against the
//! pre-overhaul baseline.
//!
//! Custom harness (no criterion). Three measurements land in
//! `results/BENCH_kernels.json`:
//!
//! 1. **GEMM GFLOP/s**, tiled vs `kernels::reference`, on the shapes
//!    that dominate NTT training (the multi-timescale aggregation
//!    layer's forward/backward products and a square reference). The
//!    run *asserts* that the tiled `nn` kernel beats
//!    [`NAIVE_FLOOR_GFLOPS`], a committed floor above anything the
//!    naive kernel reaches on supported hardware — CI fails if the
//!    kernel layer regresses to naive-level throughput.
//! 2. **Paper-scale `train_steps_per_sec`** (same configuration as
//!    `train_scaling`, single-threaded), compared against
//!    [`BASELINE_STEPS_PER_SEC`] — the committed `BENCH_train.json`
//!    number measured on this container *before* the tensor-engine
//!    overhaul (i-k-j loop kernels, transpose-heavy attention, fresh
//!    allocations per step).
//! 3. **Thread-count invariance**: a short 1-vs-3-worker training run
//!    whose losses must be bit-identical — the determinism contract the
//!    kernel rewrite must preserve, re-checked in the same process that
//!    produced the perf numbers.
//!
//! Run: `cargo bench -p ntt-bench --bench kernels`

use ntt_bench::report::host_context_json;
use ntt_bench::synth::SynthTask;
use ntt_core::{train, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode};
use ntt_tensor::kernels::{self, reference};
use ntt_tensor::Tensor;
use std::fmt::Write as _;
use std::time::Instant;

/// Pre-overhaul paper-scale steps/s: `results/BENCH_train.json` as
/// committed by the data-parallel-trainer PR (threads = 1, this
/// container). The "before" of the before/after this file records.
const BASELINE_STEPS_PER_SEC: f64 = 3.6342;

/// GFLOP/s floor the tiled `nn` kernel must beat on the reference
/// 256³ shape. The naive kernel measures ~1-3 GFLOP/s here (scalar
/// dot-product order) — staying above this catches a regression to
/// unblocked code while leaving headroom for slow CI machines.
const NAIVE_FLOOR_GFLOPS: f64 = 4.0;

struct GemmRow {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
    tiled_gflops: f64,
    naive_gflops: f64,
}

fn time_gflops(mut f: impl FnMut(), flops: f64, min_reps: usize) -> f64 {
    f(); // warm-up
    let reps = min_reps.max(1);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    flops * reps as f64 / t0.elapsed().as_secs_f64() / 1e9
}

fn bench_gemms() -> Vec<GemmRow> {
    type Kernel = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);
    // (label, layout pair, m, k, n): the aggregation layer's forward
    // (`nn`), input-gradient (`nt`) and weight-gradient (`tn`) shapes at
    // paper scale, plus a square 256³ reference point.
    let cases: [(&'static str, Kernel, Kernel, usize, usize, usize); 4] = [
        (
            "nn_256x256x256",
            kernels::gemm_nn,
            reference::gemm_nn,
            256,
            256,
            256,
        ),
        (
            "nn_agg1_fwd",
            kernels::gemm_nn,
            reference::gemm_nn,
            256,
            1344,
            64,
        ),
        (
            "nt_agg1_dx",
            kernels::gemm_nt,
            reference::gemm_nt,
            256,
            64,
            1344,
        ),
        (
            "tn_agg1_dw",
            kernels::gemm_tn,
            reference::gemm_tn,
            1344,
            256,
            64,
        ),
    ];
    cases
        .iter()
        .map(|&(label, tiled, naive, m, k, n)| {
            // Operand lengths cover every layout (nn/nt/tn read at most
            // max(m,k)*max(k,n) elements in these orientations).
            let a = Tensor::randn(&[m * k], 1).into_data();
            let b = Tensor::randn(&[k.max(n) * n.max(k)], 2).into_data();
            let mut c = vec![0.0f32; m * n];
            let flops = 2.0 * (m * k * n) as f64;
            let tiled_gflops =
                time_gflops(|| tiled(&a, &b[..k * n], &mut c, m, k, n), flops, 10);
            let naive_gflops =
                time_gflops(|| naive(&a, &b[..k * n], &mut c, m, k, n), flops, 2);
            eprintln!(
                "  gemm {label:<16} {m:>4}x{k:>4}x{n:>4}: tiled {tiled_gflops:7.2} GFLOP/s, naive {naive_gflops:6.2} GFLOP/s ({:.1}x)",
                tiled_gflops / naive_gflops
            );
            GemmRow {
                label,
                m,
                k,
                n,
                tiled_gflops,
                naive_gflops,
            }
        })
        .collect()
}

fn paper_model() -> NttConfig {
    NttConfig {
        aggregation: ntt_core::Aggregation::paper_multiscale(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..NttConfig::default()
    }
}

/// Paper-scale steps/s at a given worker count, plus the epoch losses
/// for the invariance cross-check.
fn train_run(threads: usize, steps: usize) -> (f64, Vec<f64>) {
    let model_cfg = paper_model();
    let batch_size = 32usize;
    let task = SynthTask::new(2 * batch_size, model_cfg.seq_len(), model_cfg.d_model, 7);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size,
        max_steps_per_epoch: Some(steps),
        seed: 3,
        par: ParStrategy::with_threads(threads),
        ..TrainConfig::default()
    };
    // One unmeasured warmup step (page-in, lazy allocs).
    let warm = TrainConfig {
        max_steps_per_epoch: Some(1),
        ..cfg
    };
    train(&Ntt::new(model_cfg), &task, &warm, TrainMode::Full);
    let ntt = Ntt::new(model_cfg);
    let t0 = Instant::now();
    let report = train(&ntt, &task, &cfg, TrainMode::Full);
    let sps = report.steps as f64 / t0.elapsed().as_secs_f64();
    (sps, report.epoch_losses)
}

fn main() {
    eprintln!("kernels: tiled GEMM vs naive reference, then paper-scale train steps/s");
    let gemms = bench_gemms();

    let floor_case = &gemms[0];
    assert!(
        floor_case.tiled_gflops > NAIVE_FLOOR_GFLOPS,
        "tiled gemm_nn at {}x{}x{} reached only {:.2} GFLOP/s — below the committed \
         naive-reference floor of {NAIVE_FLOOR_GFLOPS} GFLOP/s",
        floor_case.m,
        floor_case.k,
        floor_case.n,
        floor_case.tiled_gflops,
    );
    eprintln!(
        "  floor: tiled nn {:.2} GFLOP/s > {NAIVE_FLOOR_GFLOPS} GFLOP/s committed floor ✓",
        floor_case.tiled_gflops
    );

    let (steps_per_sec, losses_1) = train_run(1, 4);
    let speedup = steps_per_sec / BASELINE_STEPS_PER_SEC;
    eprintln!(
        "  train: {steps_per_sec:.3} steps/s vs {BASELINE_STEPS_PER_SEC} baseline ({speedup:.2}x)"
    );

    // Determinism cross-check in the same process: worker count must not
    // change a bit of the losses.
    let (_, losses_3) = train_run(3, 4);
    let invariant = losses_1 == losses_3;
    assert!(
        invariant,
        "losses diverged between 1 and 3 workers — determinism contract broken"
    );
    eprintln!("  losses bit-identical across thread counts ✓");

    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    let _ = writeln!(json, "  \"host\": {},", host_context_json());
    let _ = writeln!(json, "  \"gemm\": [");
    for (i, r) in gemms.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"tiled_gflops\": {:.3}, \"naive_gflops\": {:.3}, \"speedup\": {:.3}}}{}",
            r.label,
            r.m,
            r.k,
            r.n,
            r.tiled_gflops,
            r.naive_gflops,
            r.tiled_gflops / r.naive_gflops,
            if i + 1 == gemms.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"naive_floor_gflops\": {NAIVE_FLOOR_GFLOPS},");
    let _ = writeln!(json, "  \"train\": {{");
    let _ = writeln!(json, "    \"model\": \"paper\",");
    let _ = writeln!(json, "    \"threads\": 1,");
    let _ = writeln!(
        json,
        "    \"baseline_steps_per_sec\": {BASELINE_STEPS_PER_SEC},"
    );
    let _ = writeln!(json, "    \"steps_per_sec\": {steps_per_sec:.4},");
    let _ = writeln!(json, "    \"speedup_vs_baseline\": {speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"training_is_thread_count_invariant\": {invariant}"
    );
    json.push_str("}\n");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_kernels.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
