//! End-to-end pipeline wall time: one seeded `Experiment` run — fleet
//! sweep → dataset → pre-train → checkpoint round-trip → decoder-only
//! fine-tune — timed stage by stage.
//!
//! Custom harness (no criterion): the pipeline is one deterministic
//! value per seed, so a single timed pass per stage is the honest
//! measurement; a machine-readable summary lands in
//! `results/BENCH_pipeline.json` to start the end-to-end perf
//! trajectory (simulated packets/sec for the sweep, optimizer steps/sec
//! for the training stages, whole-pipeline wall time).
//!
//! Run: `cargo bench -p ntt-bench --bench pipeline_e2e`

use ntt_core::{Experiment, FinetuneOpts, NttConfig, Pretrained, TrainConfig};
use ntt_fleet::SweepSpec;
use ntt_sim::scenarios::{Scenario, ScenarioConfig};
use ntt_sim::SimTime;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    // A reduced-but-real configuration: 256-packet windows, the full
    // tiny topology, two pre-training shards and one fine-tuning shard.
    let exp = Experiment::new(NttConfig::reduced(3))
        .stride(16)
        .with_train(TrainConfig {
            epochs: 1,
            batch_size: 32,
            max_steps_per_epoch: Some(20),
            seed: 3,
            ..TrainConfig::default()
        });
    let mut scen = ScenarioConfig::tiny(11);
    scen.duration = SimTime::from_secs(8);
    let mut ft_scen = ScenarioConfig::tiny(12);
    ft_scen.duration = SimTime::from_secs(8);
    let pre_spec = SweepSpec::single(Scenario::Pretrain, scen, 2);
    let ft_spec = SweepSpec::single(Scenario::Case1, ft_scen, 1);

    eprintln!(
        "pipeline_e2e: 256-pkt windows, d_model {}, {} pretrain shards",
        exp.model.d_model,
        pre_spec.len()
    );

    let t_all = Instant::now();

    // Stage 1+2+3: sweep → dataset → pretrain (the fleet report inside
    // `Pretrained` separates simulation time from training time).
    let t0 = Instant::now();
    let pre = exp.pretrain(&pre_spec);
    let pretrain_wall = t0.elapsed().as_secs_f64();
    let fleet = pre.fleet.as_ref().expect("pipeline ran a sweep");
    let report = pre.report.as_ref().expect("pipeline trained");
    let sweep_wall = fleet.wall.as_secs_f64();
    let train_wall = report.wall.as_secs_f64();
    let packets_per_sec = fleet.packets_per_sec();
    let steps_per_sec = report.steps as f64 / train_wall.max(1e-9);
    eprintln!(
        "  sweep    : {:.2}s ({:.0} packets/s simulated)",
        sweep_wall, packets_per_sec
    );
    eprintln!(
        "  pretrain : {:.2}s ({} steps, {:.2} steps/s, final loss {:.4})",
        train_wall,
        report.steps,
        steps_per_sec,
        report.final_loss()
    );

    // Stage 4: checkpoint round-trip (save + self-describing load).
    let path = std::env::temp_dir().join(format!("ntt_bench_pipe_{}.ckpt", std::process::id()));
    let t0 = Instant::now();
    pre.save(&path).expect("save checkpoint");
    let save_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let shared = Pretrained::load(&path).expect("load checkpoint");
    let load_wall = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();
    eprintln!(
        "  ckpt     : save {:.3}s + load {:.3}s ({} KiB, self-describing)",
        save_wall,
        load_wall,
        bytes / 1024
    );

    // Stage 5: decoder-only fine-tune in the new environment.
    let t0 = Instant::now();
    let ft = shared.finetune(&ft_spec, &FinetuneOpts::decoder_only().fraction(0.5));
    let finetune_wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "  finetune : {:.2}s ({} windows, zero-shot {:.4} -> {:.4})",
        finetune_wall,
        ft.train_windows,
        ft.zero_shot.expect("measured").mse_norm,
        ft.eval.mse_norm
    );

    let total_wall = t_all.elapsed().as_secs_f64();
    eprintln!("  total    : {total_wall:.2}s end to end");

    let mut json = String::from("{\n  \"bench\": \"pipeline_e2e\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {},",
        ntt_bench::report::host_context_json()
    );
    let _ = writeln!(json, "  \"seq_len\": {},", exp.model.seq_len());
    let _ = writeln!(json, "  \"d_model\": {},", exp.model.d_model);
    let _ = writeln!(json, "  \"pretrain_shards\": {},", pre_spec.len());
    let _ = writeln!(json, "  \"sweep_wall_s\": {sweep_wall:.4},");
    let _ = writeln!(json, "  \"sim_packets_per_sec\": {packets_per_sec:.1},");
    let _ = writeln!(json, "  \"pretrain_wall_s\": {pretrain_wall:.4},");
    let _ = writeln!(json, "  \"train_steps_per_sec\": {steps_per_sec:.4},");
    let _ = writeln!(json, "  \"ckpt_save_s\": {save_wall:.5},");
    let _ = writeln!(json, "  \"ckpt_load_s\": {load_wall:.5},");
    let _ = writeln!(json, "  \"ckpt_bytes\": {bytes},");
    let _ = writeln!(json, "  \"finetune_wall_s\": {finetune_wall:.4},");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall:.4}");
    json.push_str("}\n");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_pipeline.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
