//! Observability overhead: what `ntt::obs` costs on the hot path, and
//! — the gate — that an *instrumented-but-disabled* trainer keeps the
//! committed training throughput.
//!
//! Two sections:
//!
//! * **micro**: ns/op for the four primitive operations (counter inc
//!   and span, each with the kill switch off and on). The disabled
//!   forms must cost single-digit nanoseconds — one relaxed load and a
//!   branch — which is the "zero-overhead when off" claim made by
//!   `crates/obs`, checked here in the same process that measured it.
//! * **macro**: paper-scale optimizer-step throughput through the real
//!   instrumented trainer (`train.step_ns` span, `train.steps` counter,
//!   fan-out histogram all live on this path), with `NTT_OBS` off and
//!   on. When this host matches the one that produced the committed
//!   `results/BENCH_kernels.json`, the disabled-path steps/s must stay
//!   within 2% of that file's `train.steps_per_sec`; on any other host
//!   the comparison is recorded but not enforced.
//!
//! Writes `results/BENCH_obs.json`.
//!
//! Run: `cargo bench -p ntt-bench --bench obs_overhead [-- --quick]`

use ntt_bench::synth::SynthTask;
use ntt_core::{train, Ntt, NttConfig, ParStrategy, TrainConfig, TrainMode};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("NTT_BENCH_QUICK").is_ok()
}

/// Mean ns per call of `f` over `iters` calls.
fn ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

struct Micro {
    counter_off: f64,
    counter_on: f64,
    span_off: f64,
    span_on: f64,
}

fn micro(iters: u64) -> Micro {
    // Warm the per-site caches once so the loops measure steady state.
    ntt_obs::set_enabled(true);
    ntt_obs::counter!("obs_bench.counter").inc();
    drop(ntt_obs::span!("obs_bench.span_ns"));

    ntt_obs::set_enabled(false);
    let counter_off = ns_per_op(iters, || {
        black_box(ntt_obs::counter!("obs_bench.counter")).inc();
    });
    let span_off = ns_per_op(iters, || {
        // Immediate drop is the point: start + record is the full cost.
        drop(black_box(ntt_obs::span!("obs_bench.span_ns")));
    });

    ntt_obs::set_enabled(true);
    let counter_on = ns_per_op(iters, || {
        black_box(ntt_obs::counter!("obs_bench.counter")).inc();
    });
    // Spans read the clock twice; use fewer iters to keep wall time flat.
    let span_on = ns_per_op(iters / 4, || {
        drop(black_box(ntt_obs::span!("obs_bench.span_ns")));
    });
    Micro {
        counter_off,
        counter_on,
        span_off,
        span_on,
    }
}

/// Paper-scale steps/s through the instrumented trainer, best of
/// `reps` runs (best-of isolates the code path from scheduler noise).
fn train_steps_per_sec(steps: usize, reps: usize) -> f64 {
    let batch_size = 32usize;
    let model_cfg = NttConfig {
        aggregation: ntt_core::Aggregation::paper_multiscale(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..NttConfig::default()
    };
    let seq = model_cfg.seq_len();
    let task = SynthTask::new(2 * batch_size, seq, model_cfg.d_model, 7);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size,
        max_steps_per_epoch: Some(steps),
        seed: 3,
        par: ParStrategy::with_threads(1),
        ..TrainConfig::default()
    };
    // One unmeasured warmup step (page-in, lazy allocs).
    let warm = TrainConfig {
        max_steps_per_epoch: Some(1),
        ..cfg
    };
    train(&Ntt::new(model_cfg), &task, &warm, TrainMode::Full);

    let mut best = 0.0f64;
    for _ in 0..reps {
        let ntt = Ntt::new(model_cfg);
        let t0 = Instant::now();
        let report = train(&ntt, &task, &cfg, TrainMode::Full);
        let sps = report.steps as f64 / t0.elapsed().as_secs_f64();
        best = best.max(sps);
    }
    best
}

/// (cores, cpu_model, train steps/s) from the committed
/// `results/BENCH_kernels.json`, parsed with plain string scanning so
/// the bench needs no JSON dependency. `None` when absent or malformed.
fn committed_baseline(root: &std::path::Path) -> Option<(usize, String, f64)> {
    let body = std::fs::read_to_string(root.join("results/BENCH_kernels.json")).ok()?;
    fn field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
        let at = s.find(key)? + key.len();
        Some(s[at..].trim_start())
    }
    let cores: usize = field(&body, "\"cores\":")?
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    let cpu = field(&body, "\"cpu_model\":")?
        .strip_prefix('"')?
        .split('"')
        .next()?
        .to_string();
    // `"steps_per_sec"` first occurs in the `"train"` section (the
    // baseline entry is keyed `"baseline_steps_per_sec"`, which this
    // quoted pattern cannot match inside).
    let sps: f64 = field(&body, "\"steps_per_sec\":")?
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    Some((cores, cpu, sps))
}

fn current_cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let quick = quick_mode();
    let micro_iters: u64 = if quick { 2_000_000 } else { 20_000_000 };
    let (steps, reps) = if quick { (2usize, 2usize) } else { (4, 3) };

    eprintln!(
        "obs_overhead: micro {micro_iters} iters, macro {steps} paper-scale steps x{reps}{}",
        if quick { " (quick)" } else { "" }
    );

    // ---- micro: primitive cost with the switch off and on -----------
    let m = micro(micro_iters);
    eprintln!(
        "  counter.inc: {:.2} ns off / {:.2} ns on   span: {:.2} ns off / {:.2} ns on",
        m.counter_off, m.counter_on, m.span_off, m.span_on
    );
    // The "disappears when off" contract: a relaxed load and a branch.
    // 10 ns is ~27 cycles on this 2.7 GHz class of host — an order of
    // magnitude above the expected cost, so the assert survives noise
    // while still catching any accidental lock, clock read, or lookup.
    assert!(
        m.counter_off < 10.0,
        "disabled counter costs {:.2} ns/op — the kill switch is no longer cheap",
        m.counter_off
    );
    assert!(
        m.span_off < 10.0,
        "disabled span costs {:.2} ns/op — it must not read the clock",
        m.span_off
    );

    // ---- macro: instrumented trainer, switch off vs on ---------------
    ntt_obs::set_enabled(false);
    let sps_off = train_steps_per_sec(steps, reps);
    ntt_obs::set_enabled(true);
    let sps_on = train_steps_per_sec(steps, reps);
    let on_off_ratio = sps_on / sps_off;
    eprintln!(
        "  train: {sps_off:.3} steps/s disabled, {sps_on:.3} enabled ({:.2}% delta)",
        (on_off_ratio - 1.0) * 100.0
    );

    // ---- gate vs the committed baseline (same-host only) -------------
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut gated = false;
    let mut baseline_sps = f64::NAN;
    match committed_baseline(&root) {
        Some((b_cores, b_cpu, b_sps)) => {
            baseline_sps = b_sps;
            if b_cores == cores && b_cpu == current_cpu_model() {
                gated = true;
                let floor = 0.98 * b_sps;
                assert!(
                    sps_off >= floor,
                    "instrumented-but-disabled training ({sps_off:.3} steps/s) fell below \
                     98% of the committed baseline ({b_sps:.3}) — observability is \
                     no longer free when off"
                );
                eprintln!("  gate: {sps_off:.3} >= 0.98 x {b_sps:.3} committed baseline ✓");
            } else {
                eprintln!(
                    "  gate skipped: host ({cores} cores, {}) differs from committed \
                     baseline host ({b_cores} cores, {b_cpu}) — recording only",
                    current_cpu_model()
                );
            }
        }
        None => eprintln!("  gate skipped: no committed results/BENCH_kernels.json baseline"),
    }

    // ---- artifact -----------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"obs_overhead\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {},",
        ntt_bench::report::host_context_json()
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"micro_ns_per_op\": {{");
    let _ = writeln!(json, "    \"counter_disabled\": {:.3},", m.counter_off);
    let _ = writeln!(json, "    \"counter_enabled\": {:.3},", m.counter_on);
    let _ = writeln!(json, "    \"span_disabled\": {:.3},", m.span_off);
    let _ = writeln!(json, "    \"span_enabled\": {:.3}", m.span_on);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"train\": {{");
    let _ = writeln!(json, "    \"steps\": {steps},");
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"steps_per_sec_disabled\": {sps_off:.4},");
    let _ = writeln!(json, "    \"steps_per_sec_enabled\": {sps_on:.4},");
    let _ = writeln!(json, "    \"enabled_over_disabled\": {on_off_ratio:.4},");
    let _ = writeln!(
        json,
        "    \"committed_baseline_steps_per_sec\": {},",
        if baseline_sps.is_nan() {
            "null".into()
        } else {
            format!("{baseline_sps:.4}")
        }
    );
    let _ = writeln!(json, "    \"gated\": {gated}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    let dir = root.join("results");
    let path = dir.join("BENCH_obs.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
