//! Fleet executor scaling: the same 8-shard sweep on 1 worker vs all
//! cores. The ratio is the dataset-generation speedup the fleet buys —
//! the "collecting data is expensive" economics of §1 attacked with
//! parallelism instead of smaller datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntt_fleet::{run_fleet_traces, FleetConfig, SweepSpec};
use ntt_sim::scenarios::{Scenario, ScenarioConfig};
use ntt_sim::SimTime;

fn sweep() -> SweepSpec {
    let mut base = ScenarioConfig::tiny(7);
    base.duration = SimTime::from_millis(500);
    base.drain = SimTime::from_millis(200);
    SweepSpec::new(base)
        .scenarios(vec![
            Scenario::Pretrain,
            Scenario::Case1,
            Scenario::ParkingLot { hops: 4 },
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2,
            },
        ])
        .load_factors(vec![0.7, 1.0])
        .runs_per_cell(1)
}

fn fleet_scaling(c: &mut Criterion) {
    let spec = sweep();
    // Count events once so throughput is comparable across thread counts.
    let (_, probe) = run_fleet_traces(&spec, &FleetConfig::with_threads(1));
    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(5);
    group.throughput(Throughput::Elements(probe.total_events()));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1usize, 2, cores.max(4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    criterion::black_box(run_fleet_traces(
                        &spec,
                        &FleetConfig::with_threads(threads),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_scaling);
criterion_main!(benches);
