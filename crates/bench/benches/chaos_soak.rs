//! Chaos soak: the robustness acceptance run. A seeded fault plan
//! crashes and stalls batcher workers while hundreds of concurrent
//! requests are in flight, and the harness asserts the self-healing
//! contract end to end:
//!
//! * **no hangs** — the soak completing at all is the proof: every
//!   ticket resolves, to a value or a typed error, never blocks;
//! * **full accounting** — served + failed == submitted, exactly;
//! * **self-healing** — every injected panic is matched by one worker
//!   respawn (restart counter == panic count) and the pool stays
//!   healthy;
//! * **typed shedding** — a stalled pool behind a bounded queue rejects
//!   with `Overloaded`, and everything it did accept still resolves;
//! * **replayability** — the same plan seed produces the identical
//!   sorted fault trace on a second pass;
//! * **free when off** — with no plan installed, every chaos site costs
//!   one relaxed load and a branch (the `ntt-obs` kill-switch
//!   discipline), asserted at single-digit ns/op.
//!
//! Writes `results/CHAOS.json` (seed, per-site injection accounting,
//! soak outcome) — the artifact a CI failure replays from.
//!
//! Run: `cargo bench -p ntt-bench --bench chaos_soak [-- --quick]`

use ntt_bench::report::host_context_json;
use ntt_chaos::{ChaosPlan, FaultKind, Rule};
use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_nn::Head;
use ntt_serve::{BatchConfig, Batcher, InferenceEngine, ServeError, Ticket};
use ntt_tensor::Tensor;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The default plan seed. `results/CHAOS.json` records the seed each
/// run used; replay a CI failure exactly with
/// `NTT_CHAOS_SEED=<seed> cargo bench -p ntt-bench --bench chaos_soak`.
const SOAK_SEED: u64 = 2026;

fn soak_seed() -> u64 {
    match std::env::var("NTT_CHAOS_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("NTT_CHAOS_SEED must be a u64, got {s:?}")),
        Err(_) => SOAK_SEED,
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("NTT_BENCH_QUICK").is_ok()
}

fn tiny_engine(seed: u64) -> Arc<InferenceEngine> {
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // 64-pkt windows
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        seed,
        ..NttConfig::default()
    };
    Arc::new(InferenceEngine::from_parts(
        Ntt::new(cfg),
        vec![Box::new(DelayHead::new(16, 1)) as Box<dyn Head>],
        Normalizer::identity(NUM_FEATURES),
    ))
}

/// Mean ns per call of `f` over `iters` calls.
fn ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// The "free when off" gate: with no plan installed every chaos site is
/// one relaxed load and a branch. 10 ns is an order of magnitude above
/// the expected cost — the assert survives scheduler noise while still
/// catching any accidental lock, map lookup, or clock read.
fn off_gate(iters: u64) -> (f64, f64) {
    ntt_chaos::uninstall();
    let fail_off = ns_per_op(iters, || {
        black_box(ntt_chaos::should_fail(black_box("chaos_bench.site")));
    });
    let panic_off = ns_per_op(iters, || {
        ntt_chaos::maybe_panic(black_box("chaos_bench.site"));
    });
    assert!(
        fail_off < 10.0,
        "disabled should_fail costs {fail_off:.2} ns/op — the chaos kill switch is no longer cheap"
    );
    assert!(
        panic_off < 10.0,
        "disabled maybe_panic costs {panic_off:.2} ns/op — the chaos kill switch is no longer cheap"
    );
    (fail_off, panic_off)
}

struct SoakOutcome {
    served: usize,
    died: usize,
    restarts: u64,
    trace: Vec<ntt_chaos::ChaosEvent>,
    report_json: String,
}

/// Drive `n` requests through a self-healing batcher under the seeded
/// panic/stall plan. Panics (failing the bench) if any invariant of the
/// robustness contract breaks.
fn soak(engine: &Arc<InferenceEngine>, n: usize, workers: usize, seed: u64) -> SoakOutcome {
    let guard = ntt_chaos::scoped(
        ChaosPlan::new(seed)
            // ~1 in 16 batch claims crashes the worker mid-batch.
            .rule(Rule::new("serve.worker.panic", FaultKind::Panic).rate(1, 16))
            // ~1 in 8 claims stalls 1ms before serving (slow consumer).
            .rule(Rule::new("serve.worker.stall", FaultKind::Delay { millis: 1 }).rate(1, 8))
            // ~1 in 32 forward passes runs slow (contended model).
            .rule(Rule::new("serve.predict.delay", FaultKind::Delay { millis: 1 }).rate(1, 32)),
    );
    let batcher = Batcher::new(
        Arc::clone(engine),
        BatchConfig {
            // One request per claim: the fault schedule's hit count is
            // exactly `n` at every worker count, so the run replays.
            max_batch: 1,
            workers,
            head: "delay",
            queue_cap: 0, // unbounded: this phase measures crash recovery
            max_restarts: 10_000,
            deadline: None,
            gather: None,
        },
    );
    let row = engine.seq_len() * NUM_FEATURES;
    let pool = Tensor::randn(&[64, engine.seq_len(), NUM_FEATURES], 29);
    let tickets: Vec<Ticket> = (0..n)
        .map(|i| {
            let w = pool.data()[(i % 64) * row..((i % 64) + 1) * row].to_vec();
            batcher
                .submit(w, None)
                .expect("admission (unbounded queue)")
        })
        .collect();
    let mut served = 0usize;
    let mut died = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(v) => {
                assert!(v.is_finite(), "served answer must be a real prediction");
                served += 1;
            }
            Err(ServeError::WorkerDied) => died += 1,
            Err(e) => panic!("soak saw an unexpected error: {e}"),
        }
    }
    // Full accounting: every submission resolved exactly once.
    assert_eq!(served + died, n, "completed + failed must equal submitted");
    assert!(died > 0, "a 1/16 panic rate over {n} claims must fire");
    assert!(served > n / 2, "most requests must survive the chaos");
    // A dying worker fails its ticket (channel drop during unwind)
    // *before* its supervisor bumps the restart counter, so let the
    // final respawn land before reading stats.
    let t0 = Instant::now();
    while (batcher.stats().restarts as usize) < died && t0.elapsed().as_secs() < 10 {
        std::thread::yield_now();
    }
    let stats = batcher.stats();
    assert!(batcher.is_healthy(), "ample budget: no terminal poison");
    assert_eq!(
        stats.restarts as usize, died,
        "every panic must be healed by exactly one respawn"
    );
    let report_json = ntt_chaos::report().to_json();
    drop(batcher);
    SoakOutcome {
        served,
        died,
        restarts: stats.restarts,
        trace: guard.finish(),
        report_json,
    }
}

/// Overload phase: a stalled single worker behind a bounded queue must
/// shed with `Overloaded` and still resolve everything it accepted.
fn shed_phase(engine: &Arc<InferenceEngine>, n: usize, seed: u64) -> (usize, usize) {
    let guard = ntt_chaos::scoped(ChaosPlan::new(seed).rule(
        // Every claim stalls: the queue can only back up.
        Rule::new("serve.worker.stall", FaultKind::Delay { millis: 5 }).rate(1, 1),
    ));
    let batcher = Batcher::new(
        Arc::clone(engine),
        BatchConfig {
            max_batch: 1,
            workers: 1,
            head: "delay",
            queue_cap: 8,
            max_restarts: 0,
            deadline: None,
            gather: None,
        },
    );
    let row = engine.seq_len() * NUM_FEATURES;
    let w = vec![0.125f32; row];
    let mut accepted: Vec<Ticket> = Vec::new();
    let mut shed = 0usize;
    for _ in 0..n {
        match batcher.submit(w.clone(), None) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { cap }) => {
                assert_eq!(cap, 8);
                shed += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(shed > 0, "{n} submits against an 8-deep stalled queue shed");
    let kept = accepted.len();
    for t in accepted {
        assert!(
            t.wait().expect("accepted requests are served").is_finite(),
            "accepted work must still complete under overload"
        );
    }
    drop(batcher);
    drop(guard);
    (kept, shed)
}

fn main() {
    let quick = quick_mode();
    let seed = soak_seed();
    let gate_iters: u64 = if quick { 2_000_000 } else { 20_000_000 };
    let requests: usize = if quick { 400 } else { 2_000 };
    let workers = 4usize;

    eprintln!(
        "chaos_soak: seed {seed}, {requests} requests x {workers} workers{}",
        if quick { " (quick)" } else { "" }
    );

    // Injected worker panics are the *point* of this bench; keep their
    // backtraces out of the log so real failures stay visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos: injected panic") {
            default_hook(info);
        }
    }));

    // ---- free-when-off gate -----------------------------------------
    let (fail_off, panic_off) = off_gate(gate_iters);
    eprintln!("  off: should_fail {fail_off:.2} ns/op, maybe_panic {panic_off:.2} ns/op ✓");

    // ---- crash-recovery soak, run twice to pin replayability --------
    let engine = tiny_engine(31);
    let t0 = Instant::now();
    let a = soak(&engine, requests, workers, seed);
    let soak_secs = t0.elapsed().as_secs_f64();
    let b = soak(&engine, requests, workers, seed);
    assert_eq!(
        a.trace, b.trace,
        "same seed must replay the identical sorted fault trace"
    );
    assert_eq!(a.restarts, b.restarts);
    let panics = a.trace.iter().filter(|e| e.kind == "panic").count();
    eprintln!(
        "  soak: {} served + {} died = {requests} in {soak_secs:.2}s, \
         {} respawns for {panics} injected panics, trace replays ✓",
        a.served, a.died, a.restarts
    );

    // ---- bounded-queue shedding -------------------------------------
    let (kept, shed) = shed_phase(&engine, if quick { 200 } else { 600 }, seed);
    eprintln!("  shed: {kept} accepted, {shed} shed with typed Overloaded ✓");

    // ---- artifact ---------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"chaos_soak\",\n");
    let _ = writeln!(json, "  \"host\": {},", host_context_json());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"off_ns_per_op\": {{");
    let _ = writeln!(json, "    \"should_fail\": {fail_off:.3},");
    let _ = writeln!(json, "    \"maybe_panic\": {panic_off:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"soak\": {{");
    let _ = writeln!(json, "    \"requests\": {requests},");
    let _ = writeln!(json, "    \"workers\": {workers},");
    let _ = writeln!(json, "    \"served\": {},", a.served);
    let _ = writeln!(json, "    \"died\": {},", a.died);
    let _ = writeln!(json, "    \"worker_restarts\": {},", a.restarts);
    let _ = writeln!(json, "    \"seconds\": {soak_secs:.3},");
    let _ = writeln!(json, "    \"trace_replays\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"shed\": {{");
    let _ = writeln!(json, "    \"accepted\": {kept},");
    let _ = writeln!(json, "    \"shed\": {shed},");
    let _ = writeln!(json, "    \"queue_cap\": 8");
    let _ = writeln!(json, "  }},");
    // Per-site injection accounting from the soak's own plan.
    let _ = writeln!(json, "  \"chaos_report\": {}", a.report_json);
    json.push_str("}\n");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("CHAOS.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
