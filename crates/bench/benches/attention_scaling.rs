//! §2 claim: attention cost scales quadratically with sequence length —
//! the motivation for the NTT's aggregation layer. This bench sweeps
//! the sequence length at fixed model width; plotting time against T
//! should show the superlinear growth the paper argues makes raw
//! 1024-packet sequences impractical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntt_nn::MultiHeadAttention;
use ntt_tensor::{Tape, Tensor};

fn attention_scaling(c: &mut Criterion) {
    let d_model = 32;
    let mha = MultiHeadAttention::new("bench", d_model, 4, 0);
    let mut group = c.benchmark_group("attention_scaling");
    group.sample_size(10);
    for t in [16usize, 48, 96, 192, 384] {
        let x = Tensor::randn(&[1, t, d_model], t as u64);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let y = mha.forward(&tape, tape.input(x.clone()));
                std::hint::black_box(y.value());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, attention_scaling);
criterion_main!(benches);
