//! Ablation bench: forward-pass cost of the three aggregation modes at
//! equal history coverage (DESIGN.md §5). Multi-timescale covers a
//! 256-packet history at 48-slot encoder cost; "no aggregation" covers
//! only 48 packets; fixed aggregation covers 240 but loses packet-level
//! recency. This quantifies the compute side of Table 1's trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntt_core::{Aggregation, Ntt, NttConfig};
use ntt_data::NUM_FEATURES;
use ntt_tensor::{Tape, Tensor};

fn agg_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_forward");
    group.sample_size(10);
    for (label, agg) in [
        ("multiscale_256", Aggregation::MultiScale { block: 5 }),
        ("fixed_240", Aggregation::Fixed { block: 5 }),
        ("none_48", Aggregation::None),
    ] {
        let cfg = NttConfig {
            aggregation: agg,
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let x = Tensor::randn(&[8, cfg.seq_len(), NUM_FEATURES], 1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let y = model.forward(&tape, tape.input(x.clone()));
                std::hint::black_box(y.value());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, agg_forward);
criterion_main!(benches);
