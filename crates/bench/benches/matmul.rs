//! Matmul kernel throughput — the compute substrate under every
//! training number in Tables 1-3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntt_tensor::kernels::gemm_nn;
use ntt_tensor::Tensor;

fn matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [32usize, 64, 128, 256] {
        let a = Tensor::randn(&[n * n], 1).into_data();
        let b = Tensor::randn(&[n * n], 2).into_data();
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut c = vec![0.0f32; n * n];
                gemm_nn(&a, &b, &mut c, n, n, n);
                std::hint::black_box(c)
            })
        });
    }
    group.finish();
}

fn train_step(c: &mut Criterion) {
    // One full forward+backward+Adam step of the quick-scale NTT —
    // the unit cost behind every training-time row in Tables 2/3.
    use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
    use ntt_nn::{Adam, LrSchedule, Module};
    use ntt_tensor::{Tape, Tensor};
    let cfg = NttConfig {
        aggregation: Aggregation::MultiScale { block: 5 },
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        ..NttConfig::default()
    };
    let model = Ntt::new(cfg);
    let head = DelayHead::new(32, 0);
    let mut params = model.params();
    params.extend(head.params());
    let mut opt = Adam::new(params, LrSchedule::Constant(1e-3));
    let x = Tensor::randn(&[32, cfg.seq_len(), ntt_data::NUM_FEATURES], 3);
    let y = Tensor::randn(&[32, 1], 4);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    group.bench_function("quick_scale_b32", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let pred = head.forward(&tape, model.forward(&tape, tape.input(x.clone())));
            let loss = pred.mse_loss(&y);
            tape.backward(loss);
            opt.step();
        })
    });
    group.finish();
}

criterion_group!(benches, matmul, train_step);
criterion_main!(benches);
