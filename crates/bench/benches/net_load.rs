//! Wire-tier load curve: a real `NetServer` on loopback hammered by N
//! closed-loop client connections at swept concurrency. Two studies:
//!
//! * **Load curve** — requests/s, latency p50/p99, and shed rate as
//!   offered load sweeps from 1 to 32 connections against a pool with
//!   a bounded queue. The shape to expect: throughput rises then
//!   plateaus at pool capacity, p99 climbs as queueing sets in, and
//!   past saturation the bounded queue converts overload into typed
//!   `Overloaded`/`DeadlineExceeded` sheds instead of latency collapse
//!   — the wire inherits the Batcher's admission-control story intact.
//! * **Adaptive vs fixed** — the SLO controller against a fixed
//!   oversized `max_batch`, both with a gather window, at *low* load
//!   (2 connections). Fixed-32 makes every request wait out the gather
//!   window hoping for 30 peers that never come; the controller
//!   observes under-filled batches missing the target and halves
//!   `max_batch` until the wait collapses. On a 1-core host the bench
//!   **asserts** the adaptive p99 beats fixed by ≥20%; on multi-core
//!   the ratio is recorded only (core count changes queueing shape,
//!   not the claim).
//!
//! Latency is measured per request at the client (wall clock around
//! one lockstep round trip), so it includes framing, loopback TCP, and
//! queueing — what a remote caller actually experiences.
//!
//! Writes `results/BENCH_net.json`.
//!
//! Run: `cargo bench -p ntt-bench --bench net_load [-- --quick]`

use ntt_bench::report::host_context_json;
use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_net::adaptive::SloConfig;
use ntt_net::{ErrorCode, NetClient, NetConfig, NetServer};
use ntt_serve::{BatchConfig, InferenceEngine, ModelRegistry};
use ntt_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("NTT_BENCH_QUICK").is_ok()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// The latency-tier shape (48-packet windows, d_model 8): forwards in
/// the tens of microseconds, so the wire and queueing — the things this
/// bench studies — are a visible share of each request.
fn tiny_registry() -> (Arc<ModelRegistry>, Vec<f32>) {
    let cfg = NttConfig {
        aggregation: Aggregation::None, // 48-pkt windows
        d_model: 8,
        n_heads: 1,
        n_layers: 1,
        d_ff: 16,
        seed: 3,
        ..NttConfig::default()
    };
    let window = Tensor::randn(&[1, cfg.seq_len(), NUM_FEATURES], 17)
        .data()
        .to_vec();
    let head: Box<dyn ntt_nn::Head> = Box::new(DelayHead::new(cfg.d_model, 3));
    let engine = InferenceEngine::from_parts(
        Ntt::new(cfg),
        vec![head],
        Normalizer::identity(NUM_FEATURES),
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("pretrain", engine);
    (registry, window)
}

struct LoadPoint {
    conns: usize,
    sent: usize,
    ok: usize,
    shed: usize,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn main() {
    let quick = quick_mode();
    let (registry, window) = tiny_registry();
    let per_conn = if quick { 60 } else { 250 };
    let conn_sweep: &[usize] = if quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "net_load: loopback TCP, {} connection points, {per_conn} requests/conn{}",
        conn_sweep.len(),
        if quick { " (quick)" } else { "" }
    );

    // ---- study 1: the load curve ------------------------------------
    // One server for the whole sweep: pool of 1 worker, batch 8, queue
    // bounded at 8 — past ~8 outstanding requests the queue must shed.
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&registry),
        NetConfig {
            pool: BatchConfig {
                max_batch: 8,
                workers: 1,
                queue_cap: 8,
                head: "delay",
                ..BatchConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    // Warmup: fill the engine arena and fault in the pool.
    {
        let mut c = NetClient::connect_tcp(addr).expect("warmup connect");
        for _ in 0..16 {
            let _ = c.predict("pretrain", "delay", &window, None, None);
        }
    }
    let mut curve = Vec::new();
    for &conns in conn_sweep {
        let t = Instant::now();
        let mut point = drive_with_window(addr, conns, per_conn, &window);
        let span = t.elapsed().as_secs_f64();
        point.rps = point.ok as f64 / span;
        eprintln!(
            "  {:>2} conns: {:>8.1} req/s  p50 {:>7.0} µs  p99 {:>7.0} µs  shed {:>5.1}% ({}/{})",
            point.conns,
            point.rps,
            point.p50_us,
            point.p99_us,
            100.0 * point.shed as f64 / point.sent as f64,
            point.shed,
            point.sent
        );
        // Exact accounting at every load point: nothing vanishes.
        assert_eq!(point.ok + point.shed, point.sent, "requests unaccounted");
        curve.push(point);
    }
    drop(server);

    // ---- study 2: adaptive vs fixed max_batch at low load -----------
    let gather = Duration::from_millis(4);
    let slo = SloConfig {
        p99_target: Duration::from_millis(2),
        min_batch: 1,
        max_batch: 32,
        tick: Duration::from_millis(10),
    };
    let low_conns = 2usize;
    let adaptive_per_conn = if quick { 150 } else { 400 };
    let mut sides = Vec::new();
    for (label, slo_cfg) in [("fixed32", None), ("adaptive", Some(slo.clone()))] {
        let server = NetServer::bind_tcp(
            "127.0.0.1:0",
            Arc::clone(&registry),
            NetConfig {
                pool: BatchConfig {
                    max_batch: 32,
                    workers: 1,
                    head: "delay",
                    gather: Some(gather),
                    ..BatchConfig::default()
                },
                slo: slo_cfg,
                ..NetConfig::default()
            },
        )
        .expect("bind");
        let addr = server.tcp_addr().expect("addr");
        // Warmup doubles as controller settling time: ~100 requests of
        // trickle traffic gives the 10ms-tick controller dozens of
        // observations to walk 32 down before measurement starts.
        {
            let mut c = NetClient::connect_tcp(addr).expect("connect");
            for _ in 0..100 {
                let _ = c.predict("pretrain", "delay", &window, None, None);
            }
        }
        let t = Instant::now();
        let mut point = drive_with_window(addr, low_conns, adaptive_per_conn, &window);
        let span = t.elapsed().as_secs_f64();
        point.rps = point.ok as f64 / span;
        let tuned = server.pool_max_batch("pretrain", "delay").unwrap_or(0);
        eprintln!(
            "  {label:>8}: {:>8.1} req/s  p50 {:>7.0} µs  p99 {:>7.0} µs  (final max_batch {tuned})",
            point.rps, point.p50_us, point.p99_us
        );
        sides.push((label, point, tuned));
    }
    let fixed_p99 = sides[0].1.p99_us;
    let adaptive_p99 = sides[1].1.p99_us;
    let ratio = adaptive_p99 / fixed_p99;
    // The controller's whole job at low load: stop paying the gather
    // window. Asserted on 1-core hosts where queueing is deterministic
    // enough to gate on; recorded everywhere.
    if cores == 1 {
        assert!(
            adaptive_p99 < 0.8 * fixed_p99,
            "adaptive p99 ({adaptive_p99:.0} µs) is not ≥20% under fixed-32 \
             ({fixed_p99:.0} µs) at low load"
        );
        assert!(
            sides[1].2 < 32,
            "controller never moved max_batch off 32 during the run"
        );
        eprintln!("  adaptive beats fixed ✓ (p99 ratio {ratio:.2})");
    } else {
        eprintln!("  ({cores} cores: adaptive gate not asserted — p99 ratio {ratio:.2} recorded)");
    }

    // ---- machine-readable artifact ----------------------------------
    let mut json = String::from("{\n  \"bench\": \"net\",\n");
    let _ = writeln!(json, "  \"host\": {},", host_context_json());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"pool\": {{\"max_batch\": 8, \"workers\": 1, \"queue_cap\": 8}},"
    );
    let _ = writeln!(json, "  \"load_curve\": [");
    for (i, p) in curve.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"connections\": {}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \
             \"requests_per_sec\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}",
            p.conns,
            p.sent,
            p.ok,
            p.shed,
            p.rps,
            p.p50_us,
            p.p99_us,
            if i + 1 == curve.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"adaptive_vs_fixed\": {{\"connections\": {low_conns}, \
         \"gather_ms\": {}, \"slo_p99_target_ms\": {}, \"asserted\": {},",
        gather.as_millis(),
        slo.p99_target.as_millis(),
        cores == 1
    );
    for (i, (label, p, tuned)) in sides.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"requests_per_sec\": {:.2}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"final_max_batch\": {tuned}}}{}",
            p.rps,
            p.p50_us,
            p.p99_us,
            if i + 1 == sides.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  , \"p99_ratio\": {ratio:.3}}}");
    json.push_str("}\n");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_net.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}

/// Closed-loop offered load: `conns` connections, each with exactly one
/// outstanding request, each sending `per_conn` requests with a
/// deadline. Per-request wall-clock latency is collected client-side
/// (successes only — a shed answers fast by design and would flatter
/// the percentiles). `rps` is left 0 for the caller to fill from the
/// wall-clock span around this call.
fn drive_with_window(
    addr: std::net::SocketAddr,
    conns: usize,
    per_conn: usize,
    window: &[f32],
) -> LoadPoint {
    let results: Vec<(usize, usize, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                s.spawn(move || {
                    let mut client = NetClient::connect_tcp(addr).expect("connect");
                    let (mut ok, mut shed) = (0usize, 0usize);
                    let mut lat_us = Vec::with_capacity(per_conn);
                    for _ in 0..per_conn {
                        let t = Instant::now();
                        match client.predict(
                            "pretrain",
                            "delay",
                            window,
                            None,
                            Some(Duration::from_millis(50)),
                        ) {
                            Ok(_) => {
                                lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                                ok += 1;
                            }
                            Err(e) => match e.code() {
                                Some(ErrorCode::Overloaded) | Some(ErrorCode::DeadlineExceeded) => {
                                    shed += 1
                                }
                                _ => panic!("unexpected failure under load: {e}"),
                            },
                        }
                    }
                    (ok, shed, lat_us)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok: usize = results.iter().map(|r| r.0).sum();
    let shed: usize = results.iter().map(|r| r.1).sum();
    let mut lat_us: Vec<f64> = results.into_iter().flat_map(|r| r.2).collect();
    lat_us.sort_by(|a, b| a.total_cmp(b));
    LoadPoint {
        conns,
        sent: conns * per_conn,
        ok,
        shed,
        rps: 0.0,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
    }
}
