//! Serving-layer throughput: single-stream latency, batched forward
//! throughput versus batch size, and the serving-system comparison the
//! `Batcher` exists for — interactive single-request serving versus
//! concurrent coalesced serving.
//!
//! Custom harness (no criterion): serving is deterministic per window,
//! so fixed-iteration timed loops are the honest measurement. Three
//! model shapes are measured:
//! * the **quick-scale serving shape** (64-packet windows, d_model 32)
//!   for engine-level latency percentiles and batched-forward
//!   throughput. On one core these forwards are compute-bound, so the
//!   batch-size curve is nearly flat — recorded to keep that honest;
//! * the **paper-scale shape** (`NttConfig::default()`: 1024-packet
//!   windows, d_model 64, 2 layers) for the batched-forward curve that
//!   actually exercised the cache-spill the fused attention tile
//!   removes. On a 1-core host the bench **asserts** batched
//!   windows/s no longer falls with batch size (batch 8 ≥ batch 1 and
//!   batch 32 ≥ batch 1) — recorded only on multi-core, where
//!   scheduler overlap muddies the single-threaded claim;
//! * the **latency-tier shape** (48-packet windows, d_model 8), where
//!   per-request costs (thread wakeups, request plumbing) are a large
//!   share of each ~60 µs forward. This is where micro-batching earns
//!   its keep, mTCP-style: 8 concurrent streams coalescing through one
//!   worker amortize the per-request synchronization that a
//!   one-at-a-time closed loop pays in full. The bench **asserts** the
//!   coalesced path beats single-request throughput (batch ≥ 8) —
//!   the acceptance gate for the serving subsystem.
//!
//! Writes `results/BENCH_serve.json`.
//!
//! Run: `cargo bench -p ntt-bench --bench serve_throughput [-- --quick]`

use ntt_bench::report::host_context_json;
use ntt_core::{env_threads, Aggregation, DelayHead, Ntt, NttConfig};
use ntt_data::{Normalizer, NUM_FEATURES};
use ntt_nn::Head;
use ntt_serve::{BatchConfig, Batcher, BatcherMetrics, InferenceEngine};
use ntt_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Scale {
    /// Timed single-stream predictions (latency percentiles).
    single_iters: usize,
    /// Windows per batched-forward measurement point (quick shape).
    batched_windows: usize,
    /// Windows per batched-forward point at paper scale (each forward
    /// is ~50x the quick shape's work, so the budget is smaller).
    paper_windows: usize,
    /// Requests per interactive-serving pass.
    serving_requests: usize,
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("NTT_BENCH_QUICK").is_ok()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn engine_for(cfg: NttConfig) -> Arc<InferenceEngine> {
    let head: Box<dyn Head> = Box::new(DelayHead::new(cfg.d_model, 3));
    Arc::new(InferenceEngine::from_parts(
        Ntt::new(cfg),
        vec![head],
        Normalizer::identity(NUM_FEATURES),
    ))
}

/// Batched forward throughput vs batch size through one engine (best of
/// two passes per point to filter 1-core scheduler jitter).
fn batched_sweep(
    engine: &Arc<InferenceEngine>,
    batch_sizes: &[usize],
    windows: usize,
    label: &str,
) -> Vec<(usize, f64)> {
    let seq = engine.seq_len();
    let mut out = Vec::new();
    for &b in batch_sizes {
        let x = Tensor::randn(&[b, seq, NUM_FEATURES], 19 + b as u64);
        engine.predict("delay", &x, None); // warmup for this shape
        let reps = (windows / b).max(2);
        let mut wps = 0.0f64;
        for _pass in 0..2 {
            let t = Instant::now();
            for _ in 0..reps {
                engine.predict("delay", &x, None);
            }
            wps = wps.max((reps * b) as f64 / t.elapsed().as_secs_f64());
        }
        eprintln!("  {label} batch {b:>2}: {wps:>8.1} windows/s");
        out.push((b, wps));
    }
    out
}

/// Interactive **single-request** serving: a closed loop with one
/// outstanding request — submit, block on the answer, repeat. Every
/// window pays the full request round trip (queue, worker wakeup,
/// response wakeup) by itself.
fn serve_single(engine: &Arc<InferenceEngine>, pool: &Tensor, n: usize) -> f64 {
    let row = engine.seq_len() * NUM_FEATURES;
    let batcher = Batcher::new(
        Arc::clone(engine),
        BatchConfig {
            max_batch: 8,
            workers: 1,
            head: "delay",
            ..BatchConfig::default()
        },
    );
    for i in 0..16 {
        let w = pool.data()[(i % 64) * row..((i % 64) + 1) * row].to_vec();
        batcher.submit(w, None).unwrap().wait().unwrap(); // warmup
    }
    let t = Instant::now();
    for i in 0..n {
        let w = pool.data()[(i % 64) * row..((i % 64) + 1) * row].to_vec();
        batcher.submit(w, None).unwrap().wait().unwrap();
    }
    n as f64 / t.elapsed().as_secs_f64()
}

/// Interactive **batched** serving: `streams` concurrent closed loops
/// over one batcher. While the worker runs one forward, the other
/// streams' requests accumulate and coalesce — the per-request
/// synchronization amortizes across the batch.
fn serve_concurrent(
    engine: &Arc<InferenceEngine>,
    pool: &Tensor,
    n: usize,
    streams: usize,
) -> (f64, usize, BatcherMetrics) {
    let row = engine.seq_len() * NUM_FEATURES;
    let batcher = Arc::new(Batcher::new(
        Arc::clone(engine),
        BatchConfig {
            max_batch: streams,
            workers: 1,
            head: "delay",
            ..BatchConfig::default()
        },
    ));
    let per = (n / streams).max(1);
    let t = Instant::now();
    std::thread::scope(|s| {
        for sid in 0..streams {
            let batcher = Arc::clone(&batcher);
            s.spawn(move || {
                for i in 0..per {
                    let j = (sid * per + i) % 64;
                    let w = pool.data()[j * row..(j + 1) * row].to_vec();
                    batcher.submit(w, None).unwrap().wait().unwrap();
                }
            });
        }
    });
    let wps = (streams * per) as f64 / t.elapsed().as_secs_f64();
    (wps, batcher.stats().largest_batch, batcher.metrics())
}

fn main() {
    let quick = quick_mode();
    let scale = if quick {
        Scale {
            single_iters: 150,
            batched_windows: 320,
            paper_windows: 64,
            serving_requests: 1200,
        }
    } else {
        Scale {
            single_iters: 400,
            batched_windows: 1024,
            paper_windows: 192,
            serving_requests: 2500,
        }
    };
    let threads = env_threads(0);

    // ---- shape A: quick-scale serving (engine-level numbers) --------
    let cfg_a = NttConfig {
        aggregation: Aggregation::MultiScale { block: 1 }, // 64-pkt windows
        seed: 3,
        ..NttConfig::reduced(3)
    };
    let seq_a = cfg_a.seq_len();
    let engine_a = engine_for(cfg_a);
    eprintln!(
        "serve_throughput: shape A seq {seq_a} d{}, shape P paper-scale, shape B seq 48 d8, \
         NTT_THREADS={threads}{}",
        cfg_a.d_model,
        if quick { " (quick)" } else { "" }
    );

    // Single-stream latency through the engine (per-request tensor
    // assembly included — that is what one served window costs).
    let row_a = seq_a * NUM_FEATURES;
    let pool_a = Tensor::randn(&[64, seq_a, NUM_FEATURES], 17);
    let one = |i: usize| {
        Tensor::from_vec(
            pool_a.data()[(i % 64) * row_a..((i % 64) + 1) * row_a].to_vec(),
            &[1, seq_a, NUM_FEATURES],
        )
    };
    for i in 0..8 {
        engine_a.predict("delay", &one(i), None); // warmup (arena fill)
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(scale.single_iters);
    for i in 0..scale.single_iters {
        let t = Instant::now();
        engine_a.predict("delay", &one(i), None);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&lat_us, 0.50), percentile(&lat_us, 0.99));
    eprintln!("  A single-stream: p50 {p50:.0} µs, p99 {p99:.0} µs");

    // Batched forward throughput vs batch size.
    let batch_sizes = [1usize, 2, 4, 8, 16, 32];
    let batched = batched_sweep(&engine_a, &batch_sizes, scale.batched_windows, "A");

    // ---- shape P: paper-scale batched forwards ----------------------
    // The model shape the paper actually deploys (`NttConfig::default()`:
    // 1024-packet windows, d_model 64, 2 layers). Before the fused
    // attention tile, this curve *fell* with batch size — the
    // `[B, H, T, T]` score tensors spilled cache between the unfused
    // kernel phases. The fused tile never materializes them, so batching
    // must now win on FLOPs.
    let cfg_p = NttConfig {
        seed: 3,
        ..NttConfig::default()
    };
    let (seq_p, d_p) = (cfg_p.seq_len(), cfg_p.d_model);
    let engine_p = engine_for(cfg_p);
    let paper_batched = batched_sweep(&engine_p, &batch_sizes, scale.paper_windows, "P");

    // Batched-throughput monotonicity gate: asserted only on 1-core
    // hosts, where the curve is a pure single-thread cache/FLOP story;
    // on multi-core the kernel-level threading already overlaps work
    // and the comparison stops isolating what it gates.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wps_at = |pts: &[(usize, f64)], b: usize| {
        pts.iter()
            .find(|(bs, _)| *bs == b)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    };
    let (p1, p8, p32) = (
        wps_at(&paper_batched, 1),
        wps_at(&paper_batched, 8),
        wps_at(&paper_batched, 32),
    );
    if cores == 1 {
        assert!(
            p8 >= p1,
            "paper-scale batch 8 ({p8:.1} windows/s) fell below batch 1 ({p1:.1})"
        );
        assert!(
            p32 >= p1,
            "paper-scale batch 32 ({p32:.1} windows/s) fell below batch 1 ({p1:.1})"
        );
        eprintln!(
            "  paper-scale batching is monotone ✓ (batch 8 {:.2}x, batch 32 {:.2}x of batch 1)",
            p8 / p1,
            p32 / p1
        );
    } else {
        eprintln!(
            "  ({cores} cores: paper-scale monotonicity gate not asserted — \
             batch 8 {:.2}x, batch 32 {:.2}x recorded only)",
            p8 / p1,
            p32 / p1
        );
    }

    // ---- shape B: interactive serving, single vs coalesced ----------
    let cfg_b = NttConfig {
        aggregation: Aggregation::None, // 48-pkt windows
        d_model: 8,
        n_heads: 1,
        n_layers: 1,
        d_ff: 16,
        seed: 3,
        ..NttConfig::default()
    };
    let engine_b = engine_for(cfg_b);
    let pool_b = Tensor::randn(&[64, cfg_b.seq_len(), NUM_FEATURES], 23);
    let streams = 8usize;
    // Interleaved best-of-three passes per side: the comparison is
    // between modes of one system, so both sides see the same machine
    // weather and the max filters scheduler noise out of each.
    let (mut single_wps, mut conc_wps, mut largest) = (0.0f64, 0.0f64, 0usize);
    // Per-request latency decomposition, straight from the Batcher's own
    // queue-wait / service-time histograms (not harness wall-clock math)
    // — merged across the rounds so percentiles cover every request.
    let mut lat = BatcherMetrics::default();
    for _round in 0..3 {
        single_wps = single_wps.max(serve_single(&engine_b, &pool_b, scale.serving_requests));
        let (wps, big, m) = serve_concurrent(&engine_b, &pool_b, scale.serving_requests, streams);
        conc_wps = conc_wps.max(wps);
        largest = largest.max(big);
        lat.queue_wait_ns.merge(&m.queue_wait_ns);
        lat.service_ns.merge(&m.service_ns);
        lat.batch_size.merge(&m.batch_size);
    }
    let ratio = conc_wps / single_wps;
    let us = |h: &ntt_obs::HistogramSnapshot, q: f64| h.quantile(q) / 1e3;
    eprintln!(
        "  B single-request serving : {single_wps:>8.1} windows/s (closed loop, 1 outstanding)"
    );
    eprintln!(
        "  B coalesced serving      : {conc_wps:>8.1} windows/s ({streams} streams, largest batch {largest})"
    );
    eprintln!(
        "  B coalesced latency      : queue-wait p50 {:.1} µs p99 {:.1} µs, \
         service p50 {:.1} µs p99 {:.1} µs ({} requests)",
        us(&lat.queue_wait_ns, 0.50),
        us(&lat.queue_wait_ns, 0.99),
        us(&lat.service_ns, 0.50),
        us(&lat.service_ns, 0.99),
        lat.queue_wait_ns.count,
    );

    // ---- the acceptance gate ----------------------------------------
    // The coalescing margin comes from wakeup amortization, which is a
    // *1-core* phenomenon: on a multi-core host the closed loop overlaps
    // submitter and worker on separate cores and the comparison stops
    // measuring what it gates. Assert only where the claim is defined;
    // elsewhere record the ratio and warn, so the bench never turns
    // hardware weather into a red build.
    if cores == 1 {
        assert!(
            largest >= 8,
            "concurrent streams never coalesced to batch 8 (largest {largest})"
        );
        assert!(
            ratio > 1.0,
            "coalesced serving ({conc_wps:.1} windows/s) failed to beat single-request \
             serving ({single_wps:.1} windows/s)"
        );
        eprintln!(
            "  coalesced serving beats single-request serving ✓ ({ratio:.2}x at batch {largest})"
        );
    } else {
        eprintln!(
            "  ({cores} cores: coalescing gate not asserted — ratio {ratio:.2}x recorded only)"
        );
    }

    // ---- robustness counters ----------------------------------------
    // The self-healing counters the chaos plane exercises. A clean bench
    // run must come out all-zero (no chaos plan is installed here): any
    // nonzero value means the serving path shed, expired, or respawned
    // under plain load, which is itself a finding worth recording.
    let restarts = ntt_obs::counter!("serve.worker_restarts").get();
    let shed = ntt_obs::counter!("serve.shed_total").get();
    let expired = ntt_obs::counter!("serve.deadline_exceeded").get();
    let retries = ntt_obs::counter!("fleet.shard_retries").get();
    let depth = ntt_obs::gauge!("serve.queue_depth").get();
    eprintln!(
        "  robustness: {restarts} worker restarts, {shed} shed, {expired} deadline-exceeded, \
         {retries} shard retries, queue depth {depth:.0}"
    );

    // ---- machine-readable artifact ----------------------------------
    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(json, "  \"host\": {},", host_context_json());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"engine_shape\": {{\"d_model\": {}, \"seq_len\": {seq_a}}},",
        cfg_a.d_model
    );
    let _ = writeln!(
        json,
        "  \"single_stream\": {{\"predictions\": {}, \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}},",
        scale.single_iters
    );
    let write_curve = |json: &mut String, key: &str, pts: &[(usize, f64)]| {
        let _ = writeln!(json, "  \"{key}\": [");
        for (i, (b, wps)) in pts.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"batch\": {b}, \"windows_per_sec\": {wps:.2}}}{}",
                if i + 1 == pts.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "  ],");
    };
    write_curve(&mut json, "batched", &batched);
    let _ = writeln!(
        json,
        "  \"paper_shape\": {{\"d_model\": {d_p}, \"seq_len\": {seq_p}}},"
    );
    write_curve(&mut json, "paper_batched", &paper_batched);
    let _ = writeln!(
        json,
        "  \"paper_batch_monotone\": {{\"asserted\": {}, \"batch8_over_batch1\": {:.3}, \
         \"batch32_over_batch1\": {:.3}}},",
        cores == 1,
        p8 / p1,
        p32 / p1
    );
    let _ = writeln!(
        json,
        "  \"serving_shape\": {{\"d_model\": {}, \"seq_len\": {}}},",
        cfg_b.d_model,
        cfg_b.seq_len()
    );
    let _ = writeln!(
        json,
        "  \"serving\": {{\"requests\": {}, \"streams\": {streams}, \"largest_batch\": {largest}, \
         \"single_request_windows_per_sec\": {single_wps:.2}, \
         \"batched_windows_per_sec\": {conc_wps:.2}, \"speedup\": {ratio:.3}}},",
        scale.serving_requests
    );
    // Sourced from the Batcher's internal `ntt_obs` histograms.
    let _ = writeln!(
        json,
        "  \"serving_latency\": {{\"requests\": {}, \
         \"queue_wait_us\": {{\"p50\": {:.1}, \"p99\": {:.1}}}, \
         \"service_us\": {{\"p50\": {:.1}, \"p99\": {:.1}}}, \
         \"mean_batch\": {:.2}}},",
        lat.queue_wait_ns.count,
        us(&lat.queue_wait_ns, 0.50),
        us(&lat.queue_wait_ns, 0.99),
        us(&lat.service_ns, 0.50),
        us(&lat.service_ns, 0.99),
        lat.batch_size.mean(),
    );
    // Self-healing counters (all zero on a clean, chaos-free run).
    let _ = writeln!(
        json,
        "  \"robustness\": {{\"worker_restarts\": {restarts}, \"shed_total\": {shed}, \
         \"deadline_exceeded\": {expired}, \"shard_retries\": {retries}, \
         \"queue_depth\": {depth:.0}}}"
    );
    json.push_str("}\n");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_serve.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}
