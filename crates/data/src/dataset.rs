//! Trace → training-sequence datasets.
//!
//! Converts simulator traces into the two tasks of §4:
//! * [`DelayDataset`] — sliding windows of `seq_len` packets; the target
//!   is the (masked) end-to-end delay of the most recent packet. Used
//!   both for pre-training and the delay fine-tuning task.
//! * [`MctDataset`] — windows anchored at the first packet of each
//!   message; the target is the log message completion time, with the
//!   message size as an extra decoder input.
//!
//! Splits are temporal within each run (early 80% train, late 20% test),
//! normalization statistics are fitted on training data only, and the
//! paper's "10% datasets" are seeded subsamples.

use crate::features::{FeatureMask, CH_DELAY, CH_RECEIVER, CH_SIZE, CH_TIME, NUM_FEATURES};
use crate::normalize::Normalizer;
use ntt_sim::RunTrace;
use ntt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One packet as the model sees it (receiver-side observation).
#[derive(Debug, Clone, Copy)]
pub struct PacketView {
    /// Arrival time in seconds (f64: absolute times need the precision;
    /// only window-relative differences are cast to f32).
    pub t: f64,
    /// Wire size in bytes.
    pub size: f32,
    /// Dense receiver index (the paper's receiver-ID feature).
    pub receiver: f32,
    /// End-to-end delay in seconds.
    pub delay: f32,
    /// Whether the delivered copy was a retransmission — i.e. an
    /// earlier copy was dropped. Not a model input feature (the paper's
    /// four channels stay as they are); it is the target of the
    /// drop-count task (§5 "telemetry data like packet drops").
    pub retransmit: bool,
}

/// Anchor for one completed message.
#[derive(Debug, Clone, Copy)]
pub struct MsgAnchor {
    /// Index (into the run's packet list) of the message's first
    /// delivered packet.
    pub anchor: usize,
    /// Message completion time in seconds.
    pub mct_secs: f64,
    /// Message size in bytes.
    pub msg_size: u64,
}

/// One simulation run, preprocessed.
pub struct RunData {
    pub pkts: Vec<PacketView>,
    pub anchors: Vec<MsgAnchor>,
}

/// All runs of a dataset (shared by delay and MCT datasets).
pub struct TraceData {
    pub runs: Vec<RunData>,
}

impl RunData {
    /// Preprocess one simulator trace. This is the streaming-ingestion
    /// unit: `ntt-fleet` folds each finished shard through this and
    /// drops the raw trace immediately, so peak memory scales with the
    /// compact [`RunData`] form rather than every raw [`RunTrace`].
    pub fn from_trace(tr: &RunTrace) -> RunData {
        let pkts: Vec<PacketView> = tr
            .packets
            .iter()
            .map(|p| PacketView {
                t: p.recv_ns as f64 / 1e9,
                size: p.size_bytes as f32,
                receiver: p.receiver_group as f32,
                delay: (p.delay_ns as f64 / 1e9) as f32,
                retransmit: p.retransmit,
            })
            .collect();
        // First-arrival index per (flow, msg) for MCT anchoring.
        let mut first: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        for (i, p) in tr.packets.iter().enumerate() {
            first.entry((p.flow, p.msg_id)).or_insert(i);
        }
        let anchors = tr
            .messages
            .iter()
            .filter_map(|m| {
                let a = *first.get(&(m.flow, m.msg_id))?;
                let mct = m.mct_ns() as f64 / 1e9;
                (mct > 0.0).then_some(MsgAnchor {
                    anchor: a,
                    mct_secs: mct,
                    msg_size: m.size_bytes,
                })
            })
            .collect();
        RunData { pkts, anchors }
    }
}

impl TraceData {
    /// Preprocess simulator traces.
    pub fn from_traces(traces: &[RunTrace]) -> Arc<Self> {
        Self::from_runs(traces.iter().map(RunData::from_trace).collect())
    }

    /// Assemble a dataset from already-preprocessed runs (the streaming
    /// path: runs arrive one at a time from the fleet executor).
    pub fn from_runs(runs: Vec<RunData>) -> Arc<Self> {
        Arc::new(TraceData { runs })
    }

    /// Total packets across runs.
    pub fn n_packets(&self) -> usize {
        self.runs.iter().map(|r| r.pkts.len()).sum()
    }

    /// Total message anchors across runs.
    pub fn n_messages(&self) -> usize {
        self.runs.iter().map(|r| r.anchors.len()).sum()
    }
}

/// Dataset construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Input sequence length in packets (paper: 1024).
    pub seq_len: usize,
    /// Take a delay window ending at every `stride`-th packet.
    pub stride: usize,
    /// Fraction of each run (by time) reserved for testing.
    pub test_fraction: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            seq_len: 1024,
            stride: 32,
            test_fraction: 0.2,
        }
    }
}

/// Featurize one window of packets exactly as the training pipeline
/// does: times relative to the window's first packet, per-channel
/// z-scores from `norm`, optional §3 masking of the most recent
/// packet's delay (the pre-training target — at serving time the value
/// being predicted), then the feature-ablation `mask`. This is the
/// **single** featurization path: the datasets call it per window, and
/// `ntt-serve` sessions call it on live packet streams, so a served
/// model can never see features scaled differently than it trained on.
pub fn featurize_window(
    pkts: &[PacketView],
    norm: &Normalizer,
    mask: FeatureMask,
    mask_last_delay: bool,
) -> Vec<f32> {
    assert!(!pkts.is_empty(), "featurizing an empty window");
    let t0 = pkts[0].t;
    let mut out = Vec::with_capacity(pkts.len() * NUM_FEATURES);
    for p in pkts {
        out.push(norm.apply_one(CH_TIME, (p.t - t0) as f32));
        out.push(norm.apply_one(CH_SIZE, p.size));
        out.push(norm.apply_one(CH_RECEIVER, p.receiver));
        out.push(norm.apply_one(CH_DELAY, p.delay));
    }
    if mask_last_delay {
        // The pre-training task masks the most recent packet's delay
        // (§3); zero is the post-normalization mean.
        let last = out.len() - NUM_FEATURES;
        out[last + CH_DELAY] = 0.0;
    }
    mask.apply(&mut out);
    out
}

fn window_features(
    pkts: &[PacketView],
    end: usize,
    seq_len: usize,
    norm: &Normalizer,
    mask: FeatureMask,
    mask_last_delay: bool,
) -> Vec<f32> {
    let start = end + 1 - seq_len;
    featurize_window(&pkts[start..=end], norm, mask, mask_last_delay)
}

/// Fit the feature normalizer over (a sample of) training windows.
fn fit_feature_norm(data: &TraceData, samples: &[(u32, u32)], seq_len: usize) -> Normalizer {
    let budget = 200usize.min(samples.len().max(1));
    let step = (samples.len() / budget).max(1);
    let mut rows = Vec::new();
    for (run, end) in samples.iter().step_by(step) {
        let pkts = &data.runs[*run as usize].pkts;
        let start = *end as usize + 1 - seq_len;
        let t0 = pkts[start].t;
        for p in &pkts[start..=*end as usize] {
            rows.push((p.t - t0) as f32);
            rows.push(p.size);
            rows.push(p.receiver);
            rows.push(p.delay);
        }
    }
    if rows.is_empty() {
        return Normalizer::identity(NUM_FEATURES);
    }
    Normalizer::fit(&rows, NUM_FEATURES)
}

/// Delay-prediction dataset (pre-training task and fine-tuning task 1).
#[derive(Clone)]
pub struct DelayDataset {
    data: Arc<TraceData>,
    samples: Vec<(u32, u32)>,
    pub seq_len: usize,
    pub norm: Normalizer,
    pub mask: FeatureMask,
}

impl DelayDataset {
    /// Build train/test datasets. The normalizer is fitted on the
    /// training windows; pass `Some(norm)` to reuse pre-training
    /// statistics when fine-tuning.
    pub fn build(
        data: Arc<TraceData>,
        cfg: DatasetConfig,
        norm: Option<Normalizer>,
    ) -> (DelayDataset, DelayDataset) {
        assert!(cfg.seq_len >= 1 && cfg.stride >= 1);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (ri, run) in data.runs.iter().enumerate() {
            let n = run.pkts.len();
            if n < cfg.seq_len {
                continue;
            }
            let split = ((n as f64) * (1.0 - cfg.test_fraction)) as usize;
            for end in ((cfg.seq_len - 1)..n).step_by(cfg.stride) {
                let s = (ri as u32, end as u32);
                if end < split {
                    train.push(s);
                } else {
                    test.push(s);
                }
            }
        }
        let norm = norm.unwrap_or_else(|| fit_feature_norm(&data, &train, cfg.seq_len));
        let mk = |samples| DelayDataset {
            data: Arc::clone(&data),
            samples,
            seq_len: cfg.seq_len,
            norm: norm.clone(),
            mask: FeatureMask::all(),
        };
        (mk(train), mk(test))
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no windows exist.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The paper's "10%" datasets: keep a seeded random fraction.
    pub fn subsample(&self, fraction: f64, seed: u64) -> DelayDataset {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = self.samples.clone();
        samples.shuffle(&mut rng);
        samples.truncate(((samples.len() as f64) * fraction).round().max(1.0) as usize);
        samples.sort_unstable();
        DelayDataset {
            data: Arc::clone(&self.data),
            samples,
            seq_len: self.seq_len,
            norm: self.norm.clone(),
            mask: self.mask,
        }
    }

    /// Same windows with an ablated feature set.
    pub fn with_mask(&self, mask: FeatureMask) -> DelayDataset {
        DelayDataset {
            mask,
            ..self.clone()
        }
    }

    /// Materialize a batch: `(x [B, T, F], y [B, 1])`, both normalized.
    pub fn batch(&self, idxs: &[usize]) -> (Tensor, Tensor) {
        let b = idxs.len();
        let mut x = Vec::with_capacity(b * self.seq_len * NUM_FEATURES);
        let mut y = Vec::with_capacity(b);
        for &i in idxs {
            let (run, end) = self.samples[i];
            let pkts = &self.data.runs[run as usize].pkts;
            x.extend(window_features(
                pkts,
                end as usize,
                self.seq_len,
                &self.norm,
                self.mask,
                true,
            ));
            y.push(self.norm.apply_one(CH_DELAY, pkts[end as usize].delay));
        }
        (
            Tensor::from_vec(x, &[b, self.seq_len, NUM_FEATURES]),
            Tensor::from_vec(y, &[b, 1]),
        )
    }

    /// Raw (seconds) delay target of window `i`.
    pub fn target_raw(&self, i: usize) -> f32 {
        let (run, end) = self.samples[i];
        self.data.runs[run as usize].pkts[end as usize].delay
    }

    /// Raw packet views of window `i` (for baselines).
    pub fn window_packets(&self, i: usize) -> &[PacketView] {
        let (run, end) = self.samples[i];
        let end = end as usize;
        &self.data.runs[run as usize].pkts[end + 1 - self.seq_len..=end]
    }

    /// Convert a normalized prediction back to seconds.
    pub fn denorm_delay(&self, z: f32) -> f32 {
        self.norm.invert_one(CH_DELAY, z)
    }

    /// Std of the delay channel (to convert normalized MSE to seconds²).
    pub fn delay_std(&self) -> f32 {
        self.norm.std_of(CH_DELAY)
    }

    /// Variance of this dataset's raw delay targets (seconds²). MSEs
    /// divided by this are comparable across models regardless of which
    /// normalizer each model trained with (1.0 = predicting the mean).
    pub fn target_variance(&self) -> f64 {
        let n = self.samples.len().max(1) as f64;
        let mean = (0..self.samples.len())
            .map(|i| self.target_raw(i) as f64)
            .sum::<f64>()
            / n;
        (0..self.samples.len())
            .map(|i| {
                let d = self.target_raw(i) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n
    }
}

/// Message-completion-time dataset (fine-tuning task 2).
#[derive(Clone)]
pub struct MctDataset {
    data: Arc<TraceData>,
    /// (run, anchor packet index, ln mct, ln size)
    samples: Vec<(u32, u32, f32, f32)>,
    pub seq_len: usize,
    pub norm: Normalizer,
    /// 2-channel normalizer over (ln mct, ln size).
    pub target_norm: Normalizer,
    pub mask: FeatureMask,
}

impl MctDataset {
    /// Build train/test MCT datasets. `norm` is the *feature* normalizer
    /// (reuse the delay dataset's); target stats are fitted on train.
    pub fn build(
        data: Arc<TraceData>,
        cfg: DatasetConfig,
        norm: Normalizer,
    ) -> (MctDataset, MctDataset) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (ri, run) in data.runs.iter().enumerate() {
            let n = run.pkts.len();
            if n < cfg.seq_len {
                continue;
            }
            let split = ((n as f64) * (1.0 - cfg.test_fraction)) as usize;
            for a in &run.anchors {
                if a.anchor < cfg.seq_len - 1 {
                    continue; // not enough history yet
                }
                let s = (
                    ri as u32,
                    a.anchor as u32,
                    (a.mct_secs.max(1e-9)).ln() as f32,
                    (a.msg_size.max(1) as f64).ln() as f32,
                );
                if a.anchor < split {
                    train.push(s);
                } else {
                    test.push(s);
                }
            }
        }
        let rows: Vec<f32> = train.iter().flat_map(|s| [s.2, s.3]).collect();
        let target_norm = if rows.is_empty() {
            Normalizer::identity(2)
        } else {
            Normalizer::fit(&rows, 2)
        };
        let mk = |samples| MctDataset {
            data: Arc::clone(&data),
            samples,
            seq_len: cfg.seq_len,
            norm: norm.clone(),
            target_norm: target_norm.clone(),
            mask: FeatureMask::all(),
        };
        (mk(train), mk(test))
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Seeded random subsample (the "10%" fine-tuning datasets).
    pub fn subsample(&self, fraction: f64, seed: u64) -> MctDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = self.samples.clone();
        samples.shuffle(&mut rng);
        samples.truncate(((samples.len() as f64) * fraction).round().max(1.0) as usize);
        MctDataset {
            data: Arc::clone(&self.data),
            samples,
            seq_len: self.seq_len,
            norm: self.norm.clone(),
            target_norm: self.target_norm.clone(),
            mask: self.mask,
        }
    }

    /// Same anchors with an ablated feature set.
    pub fn with_mask(&self, mask: FeatureMask) -> MctDataset {
        MctDataset {
            mask,
            ..self.clone()
        }
    }

    /// Materialize a batch:
    /// `(x [B, T, F], msg_size [B, 1], y [B, 1])` — size and target on
    /// normalized log scales.
    pub fn batch(&self, idxs: &[usize]) -> (Tensor, Tensor, Tensor) {
        let b = idxs.len();
        let mut x = Vec::with_capacity(b * self.seq_len * NUM_FEATURES);
        let mut sizes = Vec::with_capacity(b);
        let mut y = Vec::with_capacity(b);
        for &i in idxs {
            let (run, anchor, log_mct, log_size) = self.samples[i];
            let pkts = &self.data.runs[run as usize].pkts;
            x.extend(window_features(
                pkts,
                anchor as usize,
                self.seq_len,
                &self.norm,
                self.mask,
                false,
            ));
            sizes.push(self.target_norm.apply_one(1, log_size));
            y.push(self.target_norm.apply_one(0, log_mct));
        }
        (
            Tensor::from_vec(x, &[b, self.seq_len, NUM_FEATURES]),
            Tensor::from_vec(sizes, &[b, 1]),
            Tensor::from_vec(y, &[b, 1]),
        )
    }

    /// Raw ln(MCT) of sample `i` (for baselines, unnormalized).
    pub fn target_log_raw(&self, i: usize) -> f32 {
        self.samples[i].2
    }

    /// All (run, anchor) pairs, exposing history for baselines.
    pub fn anchor_of(&self, i: usize) -> (usize, usize) {
        (self.samples[i].0 as usize, self.samples[i].1 as usize)
    }

    /// ln(MCT)s of messages completed *before* the anchor of sample `i`
    /// (what an online baseline could have observed), in completion
    /// order. Completion order is approximated by anchor order.
    pub fn history_log_mcts(&self, i: usize) -> Vec<f32> {
        let (run, anchor) = self.anchor_of(i);
        self.data.runs[run]
            .anchors
            .iter()
            .filter(|a| a.anchor < anchor)
            .map(|a| (a.mct_secs.max(1e-9)).ln() as f32)
            .collect()
    }

    /// Std of the normalized log-MCT target channel.
    pub fn mct_std(&self) -> f32 {
        self.target_norm.std_of(0)
    }

    /// Variance of this dataset's raw ln(MCT) targets; see
    /// [`DelayDataset::target_variance`] for the comparability rationale.
    pub fn target_log_variance(&self) -> f64 {
        let n = self.samples.len().max(1) as f64;
        let mean = self.samples.iter().map(|s| s.2 as f64).sum::<f64>() / n;
        self.samples
            .iter()
            .map(|s| {
                let d = s.2 as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n
    }
}

/// Shuffled mini-batch index iterator.
pub struct BatchIter {
    order: Vec<usize>,
    pos: usize,
    batch_size: usize,
}

impl BatchIter {
    /// Iterate `len` samples in batches of `batch_size`, shuffled with
    /// `seed` (shuffling off when `shuffle` is false, e.g. evaluation).
    pub fn new(len: usize, batch_size: usize, seed: u64, shuffle: bool) -> Self {
        assert!(batch_size > 0);
        let mut order: Vec<usize> = (0..len).collect();
        if shuffle {
            order.shuffle(&mut StdRng::seed_from_u64(seed));
        }
        BatchIter {
            order,
            pos: 0,
            batch_size,
        }
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;
    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.order[self.pos..end].to_vec();
        self.pos = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};

    fn tiny_data() -> Arc<TraceData> {
        let traces = vec![
            run(Scenario::Pretrain, &ScenarioConfig::tiny(11)),
            run(Scenario::Pretrain, &ScenarioConfig::tiny(12)),
        ];
        TraceData::from_traces(&traces)
    }

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            seq_len: 64,
            stride: 4,
            test_fraction: 0.2,
        }
    }

    #[test]
    fn build_splits_temporally() {
        let data = tiny_data();
        let (train, test) = DelayDataset::build(Arc::clone(&data), small_cfg(), None);
        assert!(train.len() > 50, "train {}", train.len());
        assert!(test.len() > 5, "test {}", test.len());
        assert!(train.len() > test.len());
    }

    #[test]
    fn batch_shapes_and_masking() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(data, small_cfg(), None);
        let (x, y) = train.batch(&[0, 1, 2]);
        assert_eq!(x.shape(), &[3, 64, NUM_FEATURES]);
        assert_eq!(y.shape(), &[3, 1]);
        // The last packet's delay channel must be masked to 0.
        for b in 0..3 {
            assert_eq!(x.at(&[b, 63, CH_DELAY]), 0.0);
        }
        // Other packets' delay channels are not all zero.
        let any_nonzero = (0..63).any(|t| x.at(&[0, t, CH_DELAY]) != 0.0);
        assert!(any_nonzero);
    }

    #[test]
    fn features_are_roughly_standardized() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(data, small_cfg(), None);
        let idxs: Vec<usize> = (0..train.len().min(32)).collect();
        let (x, _) = train.batch(&idxs);
        // Delay channel over non-masked packets: mean near 0, std near 1.
        let mut vals = Vec::new();
        for b in 0..idxs.len() {
            for t in 0..63 {
                vals.push(x.at(&[b, t, CH_DELAY]));
            }
        }
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 1.0, "delay channel mean {mean}");
    }

    #[test]
    fn subsample_keeps_fraction_and_is_seeded() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(data, small_cfg(), None);
        let ten = train.subsample(0.1, 7);
        assert_eq!(ten.len(), ((train.len() as f64) * 0.1).round() as usize);
        let again = train.subsample(0.1, 7);
        assert_eq!(ten.len(), again.len());
        assert_eq!(ten.target_raw(0), again.target_raw(0));
    }

    #[test]
    fn mask_ablation_zeroes_channel_in_batches() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(data, small_cfg(), None);
        let ablated = train.with_mask(FeatureMask::without_size());
        let (x, _) = ablated.batch(&[0, 1]);
        for b in 0..2 {
            for t in 0..64 {
                assert_eq!(x.at(&[b, t, CH_SIZE]), 0.0);
            }
        }
    }

    #[test]
    fn denorm_roundtrips_target() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(data, small_cfg(), None);
        let (_, y) = train.batch(&[5]);
        let raw = train.denorm_delay(y.at(&[0, 0]));
        assert!((raw - train.target_raw(5)).abs() < 1e-5);
    }

    #[test]
    fn mct_dataset_builds_with_history() {
        let data = tiny_data();
        let (dtrain, _) = DelayDataset::build(Arc::clone(&data), small_cfg(), None);
        let (train, test) = MctDataset::build(data, small_cfg(), dtrain.norm.clone());
        assert!(train.len() > 10, "train {}", train.len());
        assert!(!test.is_empty());
        let (x, s, y) = train.batch(&[0, 1]);
        assert_eq!(x.shape(), &[2, 64, NUM_FEATURES]);
        assert_eq!(s.shape(), &[2, 1]);
        assert_eq!(y.shape(), &[2, 1]);
        // History exists for late anchors.
        let last = train.len() - 1;
        assert!(!train.history_log_mcts(last).is_empty());
    }

    #[test]
    fn batch_iter_covers_everything_once() {
        let mut seen = [0u32; 10];
        for batch in BatchIter::new(10, 3, 0, true) {
            for i in batch {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Unshuffled iteration is in order.
        let batches: Vec<Vec<usize>> = BatchIter::new(5, 2, 0, false).collect();
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn reusing_norm_transfers_statistics() {
        let data = tiny_data();
        let (train, _) = DelayDataset::build(Arc::clone(&data), small_cfg(), None);
        let (ft_train, _) =
            DelayDataset::build(Arc::clone(&data), small_cfg(), Some(train.norm.clone()));
        assert_eq!(train.norm, ft_train.norm);
    }
}
