//! The [`TaskDataset`] trait: what the generic training engine needs
//! from a task's data, decoupled from any concrete dataset type.
//!
//! Every supervised task in the paper's workflow is "windows of packet
//! features in, one scalar target out, with at most one auxiliary
//! per-sample input" (the MCT task's message size). This trait captures
//! exactly that shape so `ntt-core`'s generic `HeadTask` can drive any
//! dataset — the two paper tasks, the drop-count task below, or a
//! downstream crate's own — through one training loop.

use crate::dataset::{DatasetConfig, DelayDataset, MctDataset, TraceData};
use ntt_tensor::Tensor;
use std::sync::Arc;

/// A supervised task's data: indexable samples that materialize into
/// `(windows, optional aux input, targets)` batches.
///
/// `Sync` because the data-parallel trainer shares one dataset across
/// worker threads, each materializing its own microbatch.
pub trait TaskDataset: Sync {
    /// Short stable label for logs, reports, and checkpoint metadata.
    fn label(&self) -> &'static str;

    /// Number of samples.
    fn len(&self) -> usize;

    /// True when there is nothing to train on.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Std of the raw-unit target, for converting normalized MSE back
    /// to task units in evaluation reports.
    fn target_std(&self) -> f32;

    /// Materialize a batch: `(x [B, T, F], aux [B, 1] if the task has
    /// one, y [B, 1])` — all normalized.
    fn batch_xy(&self, idx: &[usize]) -> (Tensor, Option<Tensor>, Tensor);
}

impl TaskDataset for DelayDataset {
    fn label(&self) -> &'static str {
        "delay"
    }

    fn len(&self) -> usize {
        DelayDataset::len(self)
    }

    fn target_std(&self) -> f32 {
        self.delay_std()
    }

    fn batch_xy(&self, idx: &[usize]) -> (Tensor, Option<Tensor>, Tensor) {
        let (x, y) = self.batch(idx);
        (x, None, y)
    }
}

impl TaskDataset for MctDataset {
    fn label(&self) -> &'static str {
        "mct"
    }

    fn len(&self) -> usize {
        MctDataset::len(self)
    }

    fn target_std(&self) -> f32 {
        self.mct_std()
    }

    fn batch_xy(&self, idx: &[usize]) -> (Tensor, Option<Tensor>, Tensor) {
        let (x, sizes, y) = self.batch(idx);
        (x, Some(sizes), y)
    }
}

/// Per-window drop-count regression — the third task, built on data the
/// simulator already traces (§5: "telemetry data like packet drops").
///
/// A delivered retransmission implies an earlier copy of that packet
/// was dropped, so the number of retransmitted packets in a window is a
/// receiver-side observable proxy for upstream loss. Windows are the
/// *pre-training* windows (same features, same masking), so a
/// delay-pre-trained trunk transfers to this task decoder-only — that
/// is the point of shipping it.
#[derive(Clone)]
pub struct DropDataset {
    base: DelayDataset,
    /// Raw retransmit count per window.
    counts: Vec<f32>,
    /// Target statistics frozen on the training split.
    target_mean: f32,
    target_std: f32,
}

impl DropDataset {
    /// Build train/test drop-count datasets over already-built delay
    /// windows (target statistics fitted on the training windows only).
    pub fn build(train: &DelayDataset, test: &DelayDataset) -> (DropDataset, DropDataset) {
        let counts = |ds: &DelayDataset| -> Vec<f32> {
            (0..DelayDataset::len(ds))
                .map(|i| ds.window_packets(i).iter().filter(|p| p.retransmit).count() as f32)
                .collect()
        };
        let train_counts = counts(train);
        let n = train_counts.len().max(1) as f32;
        let mean = train_counts.iter().sum::<f32>() / n;
        let var = train_counts
            .iter()
            .map(|c| (c - mean) * (c - mean))
            .sum::<f32>()
            / n;
        let std = if var.sqrt() < 1e-6 { 1.0 } else { var.sqrt() };
        let mk = |base: &DelayDataset, counts: Vec<f32>| DropDataset {
            base: base.clone(),
            counts,
            target_mean: mean,
            target_std: std,
        };
        let test_counts = counts(test);
        (mk(train, train_counts), mk(test, test_counts))
    }

    /// Convenience: build straight from preprocessed traces.
    pub fn from_traces(data: Arc<TraceData>, cfg: DatasetConfig) -> (DropDataset, DropDataset) {
        let (train, test) = DelayDataset::build(data, cfg, None);
        Self::build(&train, &test)
    }

    /// Raw (unnormalized) retransmit count of window `i`.
    pub fn count_raw(&self, i: usize) -> f32 {
        self.counts[i]
    }

    /// Mean raw count of the *training* split (frozen at build time) —
    /// what the naive predict-the-mean baseline legitimately knows.
    pub fn target_mean(&self) -> f32 {
        self.target_mean
    }
}

impl TaskDataset for DropDataset {
    fn label(&self) -> &'static str {
        "drop"
    }

    fn len(&self) -> usize {
        self.counts.len()
    }

    fn target_std(&self) -> f32 {
        self.target_std
    }

    fn batch_xy(&self, idx: &[usize]) -> (Tensor, Option<Tensor>, Tensor) {
        let (x, _) = self.base.batch(idx);
        let y: Vec<f32> = idx
            .iter()
            .map(|&i| (self.counts[i] - self.target_mean) / self.target_std)
            .collect();
        let b = idx.len();
        (x, None, Tensor::from_vec(y, &[b, 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};

    fn windows() -> (DelayDataset, DelayDataset) {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(11))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 64,
            stride: 4,
            test_fraction: 0.2,
        };
        DelayDataset::build(data, cfg, None)
    }

    #[test]
    fn trait_impls_agree_with_inherent_batches() {
        let (train, _) = windows();
        let (x, aux, y) = TaskDataset::batch_xy(&train, &[0, 1]);
        let (xi, yi) = train.batch(&[0, 1]);
        assert_eq!(x, xi);
        assert_eq!(y, yi);
        assert!(aux.is_none());
        assert_eq!(TaskDataset::label(&train), "delay");
        assert_eq!(TaskDataset::len(&train), train.len());
        assert_eq!(TaskDataset::target_std(&train), train.delay_std());
    }

    #[test]
    fn drop_dataset_targets_are_standardized_window_counts() {
        let (train, test) = windows();
        let (dtrain, dtest) = DropDataset::build(&train, &test);
        assert_eq!(TaskDataset::len(&dtrain), train.len());
        assert_eq!(TaskDataset::len(&dtest), test.len());
        // Targets invert back to the raw counts.
        let (x, aux, y) = dtrain.batch_xy(&[0, 1, 2]);
        assert_eq!(x.shape()[0], 3);
        assert!(aux.is_none());
        for (b, &i) in [0usize, 1, 2].iter().enumerate() {
            let raw = y.at(&[b, 0]) * dtrain.target_std() + dtrain.target_mean;
            assert!((raw - dtrain.count_raw(i)).abs() < 1e-4);
        }
        // Test split reuses training statistics (no leakage).
        assert_eq!(dtrain.target_mean, dtest.target_mean);
        assert_eq!(dtrain.target_std(), dtest.target_std());
    }

    #[test]
    fn drop_counts_match_window_packets() {
        let (train, test) = windows();
        let (dtrain, _) = DropDataset::build(&train, &test);
        for i in (0..train.len()).step_by(17) {
            let manual = train
                .window_packets(i)
                .iter()
                .filter(|p| p.retransmit)
                .count() as f32;
            assert_eq!(dtrain.count_raw(i), manual);
        }
    }
}
