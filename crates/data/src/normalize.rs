//! Z-score normalization with statistics frozen on the training set.
//!
//! Statistics are computed once (on training data) and then applied to
//! both splits — test-set leakage through normalization would
//! overstate every result in EXPERIMENTS.md.

/// Per-channel mean/std.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fit per-channel statistics over `rows` of `channels` values each.
    /// Channels with (near-)zero variance get std 1 so they pass through
    /// as constant offsets instead of dividing by zero.
    pub fn fit(rows: &[f32], channels: usize) -> Self {
        assert!(channels > 0 && !rows.is_empty(), "nothing to fit");
        assert_eq!(rows.len() % channels, 0, "ragged rows");
        let n = (rows.len() / channels) as f64;
        let mut mean = vec![0.0f64; channels];
        for row in rows.chunks(channels) {
            for (m, &v) in mean.iter_mut().zip(row.iter()) {
                *m += v as f64;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0f64; channels];
        for row in rows.chunks(channels) {
            for ((s, &v), m) in var.iter_mut().zip(row.iter()).zip(mean.iter()) {
                let d = v as f64 - m;
                *s += d * d;
            }
        }
        let std = var
            .iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd as f32
                }
            })
            .collect();
        Normalizer {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std,
        }
    }

    /// Identity normalizer for `channels` channels.
    pub fn identity(channels: usize) -> Self {
        Normalizer {
            mean: vec![0.0; channels],
            std: vec![1.0; channels],
        }
    }

    /// Rebuild from stored statistics (checkpoint deserialization —
    /// sharing a model means sharing the scaler it was trained with).
    pub fn from_stats(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len(), "ragged statistics");
        assert!(!mean.is_empty(), "empty statistics");
        Normalizer { mean, std }
    }

    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// Per-channel means (checkpoint serialization).
    pub fn means(&self) -> &[f32] {
        &self.mean
    }

    /// Per-channel stds (checkpoint serialization).
    pub fn stds(&self) -> &[f32] {
        &self.std
    }

    /// Mean of one channel.
    pub fn mean_of(&self, ch: usize) -> f32 {
        self.mean[ch]
    }

    /// Std of one channel.
    pub fn std_of(&self, ch: usize) -> f32 {
        self.std[ch]
    }

    /// Normalize a flat buffer of rows in place.
    pub fn apply(&self, rows: &mut [f32]) {
        let c = self.channels();
        debug_assert_eq!(rows.len() % c, 0);
        for row in rows.chunks_mut(c) {
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Normalize a single channel value.
    pub fn apply_one(&self, ch: usize, v: f32) -> f32 {
        (v - self.mean[ch]) / self.std[ch]
    }

    /// Invert normalization for a single channel value.
    pub fn invert_one(&self, ch: usize, v: f32) -> f32 {
        v * self.std[ch] + self.mean[ch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_produces_zero_mean_unit_std() {
        // Two channels with different scales.
        let rows: Vec<f32> = (0..200)
            .flat_map(|i| vec![i as f32, i as f32 * 100.0 + 5.0])
            .collect();
        let n = Normalizer::fit(&rows, 2);
        let mut x = rows.clone();
        n.apply(&mut x);
        for ch in 0..2 {
            let vals: Vec<f32> = x.chunks(2).map(|r| r[ch]).collect();
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch{ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "ch{ch} var {var}");
        }
    }

    #[test]
    fn roundtrip_single_values() {
        let rows = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let n = Normalizer::fit(&rows, 2);
        for v in [0.5f32, 7.3, -2.0] {
            let z = n.apply_one(1, v);
            assert!((n.invert_one(1, z) - v).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_channel_does_not_explode() {
        let rows = vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0];
        let n = Normalizer::fit(&rows, 2);
        assert_eq!(n.std_of(0), 1.0);
        let mut x = rows.clone();
        n.apply(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn identity_is_noop() {
        let n = Normalizer::identity(3);
        let mut x = vec![1.0, 2.0, 3.0];
        n.apply(&mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn rejects_ragged_input() {
        Normalizer::fit(&[1.0, 2.0, 3.0], 2);
    }
}
