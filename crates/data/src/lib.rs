//! # ntt-data
//!
//! Packet-trace → training-sequence pipeline for the Network Traffic
//! Transformer reproduction (HotNets '22).
//!
//! Turns [`ntt_sim`] traces into the paper's two tasks: masked
//! last-packet **delay prediction** (pre-training, §3) and **message
//! completion time** prediction (fine-tuning, §4), with temporal
//! train/test splits, train-set-only normalization, feature-ablation
//! masks (Table 1), and seeded "10%" subsampling (Tables 2/3).
//!
//! ```
//! use ntt_data::{DatasetConfig, DelayDataset, TraceData};
//! use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
//!
//! let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(1));
//! let data = TraceData::from_traces(&[trace]);
//! let cfg = DatasetConfig { seq_len: 64, stride: 8, test_fraction: 0.2 };
//! let (train, test) = DelayDataset::build(data, cfg, None);
//! let (x, y) = train.batch(&[0]);
//! assert_eq!(x.shape(), &[1, 64, ntt_data::NUM_FEATURES]);
//! assert_eq!(y.shape(), &[1, 1]);
//! assert!(test.len() > 0);
//! ```

mod dataset;
mod features;
mod normalize;
mod task;

pub use dataset::{
    featurize_window, BatchIter, DatasetConfig, DelayDataset, MctDataset, MsgAnchor, PacketView,
    RunData, TraceData,
};
pub use features::{FeatureMask, CH_DELAY, CH_RECEIVER, CH_SIZE, CH_TIME, NUM_FEATURES};
pub use normalize::Normalizer;
pub use task::{DropDataset, TaskDataset};
