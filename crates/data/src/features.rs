//! Per-packet feature layout and ablation masks.
//!
//! The NTT proof-of-concept uses four features per packet (§3):
//! relative timestamp, packet size, receiver ID (an IP-address proxy),
//! and end-to-end delay. Table 1's "without packet size" / "without
//! delay" ablations remove one channel; we implement removal by zeroing
//! the channel, which conveys no information while keeping shapes
//! stable across all model variants.

/// Feature channel indices within a packet feature vector.
pub const CH_TIME: usize = 0;
pub const CH_SIZE: usize = 1;
pub const CH_RECEIVER: usize = 2;
pub const CH_DELAY: usize = 3;
/// Number of per-packet features.
pub const NUM_FEATURES: usize = 4;

/// Which feature channels are visible to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    pub time: bool,
    pub size: bool,
    pub receiver: bool,
    pub delay: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask {
            time: true,
            size: true,
            receiver: true,
            delay: true,
        }
    }
}

impl FeatureMask {
    /// All channels visible (the full NTT).
    pub fn all() -> Self {
        Self::default()
    }

    /// Table 1 ablation: "Without packet size".
    pub fn without_size() -> Self {
        FeatureMask {
            size: false,
            ..Self::default()
        }
    }

    /// Table 1 ablation: "Without delay".
    pub fn without_delay() -> Self {
        FeatureMask {
            delay: false,
            ..Self::default()
        }
    }

    /// Table 3 in-text ablation: "Without addressing information".
    pub fn without_receiver() -> Self {
        FeatureMask {
            receiver: false,
            ..Self::default()
        }
    }

    /// Channel multipliers (1.0 = visible, 0.0 = ablated).
    pub fn multipliers(&self) -> [f32; NUM_FEATURES] {
        [
            if self.time { 1.0 } else { 0.0 },
            if self.size { 1.0 } else { 0.0 },
            if self.receiver { 1.0 } else { 0.0 },
            if self.delay { 1.0 } else { 0.0 },
        ]
    }

    /// Apply in place to a flat `[T * NUM_FEATURES]` feature buffer.
    pub fn apply(&self, features: &mut [f32]) {
        debug_assert_eq!(features.len() % NUM_FEATURES, 0);
        let m = self.multipliers();
        if m == [1.0; NUM_FEATURES] {
            return;
        }
        for packet in features.chunks_mut(NUM_FEATURES) {
            for (v, k) in packet.iter_mut().zip(m.iter()) {
                *v *= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shows_everything() {
        assert_eq!(FeatureMask::all().multipliers(), [1.0; 4]);
    }

    #[test]
    fn ablations_zero_one_channel() {
        assert_eq!(
            FeatureMask::without_size().multipliers(),
            [1.0, 0.0, 1.0, 1.0]
        );
        assert_eq!(
            FeatureMask::without_delay().multipliers(),
            [1.0, 1.0, 1.0, 0.0]
        );
        assert_eq!(
            FeatureMask::without_receiver().multipliers(),
            [1.0, 1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn apply_zeros_selected_channels_only() {
        let mut buf = vec![1.0; 2 * NUM_FEATURES];
        FeatureMask::without_delay().apply(&mut buf);
        assert_eq!(buf, vec![1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn apply_full_mask_is_identity() {
        let mut buf: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let before = buf.clone();
        FeatureMask::all().apply(&mut buf);
        assert_eq!(buf, before);
    }
}
