//! Property-based tests of the data pipeline: normalization round-trips,
//! window/zone accounting, batch iteration coverage, subsampling bounds.

use ntt_data::{BatchIter, FeatureMask, Normalizer, NUM_FEATURES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn normalizer_roundtrips_every_channel(
        rows in proptest::collection::vec(-100.0f32..100.0, 8..80),
    ) {
        let channels = 2;
        let rows = {
            let mut r = rows;
            r.truncate(r.len() / channels * channels);
            r
        };
        prop_assume!(rows.len() >= channels * 2);
        let n = Normalizer::fit(&rows, channels);
        for (i, &v) in rows.iter().enumerate() {
            let ch = i % channels;
            let z = n.apply_one(ch, v);
            prop_assert!((n.invert_one(ch, z) - v).abs() < 1e-2, "{v} via {z}");
        }
    }

    #[test]
    fn normalized_data_is_standardized(seed in 0u64..1000, scale in 0.1f32..50.0) {
        let raw: Vec<f32> = (0..400)
            .map(|i| ((i as f32) * 0.37 + seed as f32).sin() * scale + scale)
            .collect();
        let n = Normalizer::fit(&raw, 1);
        let mut z = raw.clone();
        n.apply(&mut z);
        let mean = z.iter().sum::<f32>() / z.len() as f32;
        let var = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / z.len() as f32;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn batch_iter_is_a_permutation(len in 1usize..200, bs in 1usize..17, seed in 0u64..100) {
        let mut seen = vec![0u32; len];
        for batch in BatchIter::new(len, bs, seed, true) {
            prop_assert!(batch.len() <= bs);
            for i in batch {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a permutation");
    }

    #[test]
    fn batch_iter_same_seed_same_order(len in 1usize..64, bs in 1usize..8, seed in 0u64..100) {
        let a: Vec<Vec<usize>> = BatchIter::new(len, bs, seed, true).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(len, bs, seed, true).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn feature_mask_multipliers_are_binary_and_apply_matches(
        time in any::<bool>(), size in any::<bool>(),
        receiver in any::<bool>(), delay in any::<bool>(),
        vals in proptest::collection::vec(-5.0f32..5.0, NUM_FEATURES * 3),
    ) {
        let mask = FeatureMask { time, size, receiver, delay };
        let m = mask.multipliers();
        prop_assert!(m.iter().all(|&v| v == 0.0 || v == 1.0));
        let mut buf = vals.clone();
        mask.apply(&mut buf);
        for (i, (&out, &inp)) in buf.iter().zip(vals.iter()).enumerate() {
            let expect = inp * m[i % NUM_FEATURES];
            prop_assert_eq!(out, expect);
        }
    }
}

/// Zone accounting mirrors ntt-core's aggregation math: this pins the
/// contract the dataset relies on (window length = zones).
#[test]
fn window_zone_accounting() {
    for block in 1..40usize {
        let raw = 16;
        let mid = 16 * block;
        let old = 32 * block;
        assert_eq!(raw + mid + old, 16 + 48 * block);
    }
}
