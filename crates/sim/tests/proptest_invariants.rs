//! Property-based tests of the simulator's core invariants: queue
//! bounds, FIFO order, TCP reliability under arbitrary loss, ACK
//! monotonicity, and event-queue ordering.

use ntt_sim::workload::MsgSizeDist;
use ntt_sim::{
    App, Enqueue, EventQueue, Link, LinkConfig, Node, NodeKind, Packet, SimTime, Simulator,
    TcpConfig, TcpFlow, MSS,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..60)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), ntt_sim::Event::AppWake { app: i });
        }
        let mut prev = 0u64;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= prev);
            prev = t.as_nanos();
        }
    }

    #[test]
    fn link_queue_never_exceeds_capacity(cap in 1usize..20, offers in 2usize..64) {
        let mut link = Link::new(0, 1, LinkConfig {
            rate_bps: 1_000_000,
            prop_delay: SimTime::from_micros(10),
            queue_capacity: cap,
            loss_prob: 0.0,
        });
        let mut accepted = 0u64;
        for s in 0..offers {
            let p = Packet::data(0, s as u64, 100, 0, 1, 0, 100, true);
            if link.offer(p, 1.0) != Enqueue::Dropped {
                accepted += 1;
            }
            prop_assert!(link.queue_len() <= cap, "queue over capacity");
        }
        // One in flight + at most cap waiting.
        prop_assert!(accepted <= cap as u64 + 1);
        prop_assert_eq!(link.stats.dropped_overflow, offers as u64 - accepted);
        // Drain preserves FIFO order.
        let mut last_seq = None;
        while link.busy() {
            let (pkt, _) = link.finish_tx();
            if let Some(prev) = last_seq {
                prop_assert!(pkt.seq > prev, "FIFO violated");
            }
            last_seq = Some(pkt.seq);
        }
    }

    #[test]
    fn tcp_delivers_everything_under_any_loss(loss in 0.0f64..0.35, msg_pkts in 1u64..40, seed in 0u64..1000) {
        // Two hosts, lossy forward path: every chunk must still be
        // delivered exactly once, in order.
        let mut h0 = Node::new(0, NodeKind::Host, "h0");
        let mut h1 = Node::new(1, NodeKind::Host, "h1");
        h0.set_routes(vec![None, Some(0)]);
        h1.set_routes(vec![Some(1), None]);
        let fwd = LinkConfig {
            rate_bps: 10_000_000,
            prop_delay: SimTime::from_millis(1),
            queue_capacity: 1000,
            loss_prob: loss,
        };
        let rev = LinkConfig { loss_prob: 0.0, ..fwd };
        let links = vec![Link::new(0, 1, fwd), Link::new(1, 0, rev)];
        let flows = vec![TcpFlow::new(0, 0, 1, TcpConfig::default())];
        let apps = vec![App::message_source(
            0,
            MsgSizeDist::Fixed { bytes: msg_pkts * MSS as u64 },
            1e6,
            SimTime::from_millis(1),
        )];
        let mut sim = Simulator::new(vec![h0, h1], links, flows, apps, seed);
        sim.trace.record_flow(0);
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(120));
        prop_assert_eq!(sim.trace.messages.len(), 1, "message must complete (loss {})", loss);
        prop_assert_eq!(sim.trace.packets.len(), msg_pkts as usize, "each seq traced once");
        // Receiver state: everything delivered in order.
        prop_assert_eq!(sim.flows[0].rcv_next(), msg_pkts);
        prop_assert!(sim.flows[0].idle());
    }

    #[test]
    fn tcp_ack_stream_is_monotone(seed in 0u64..500, n_pkts in 2u64..30) {
        // Wide initial window so the whole message leaves at once.
        let wide = TcpConfig { init_cwnd: 64.0, ..TcpConfig::default() };
        let mut snd = TcpFlow::new(0, 0, 1, wide);
        let (_, out) = snd.app_submit(SimTime::ZERO, n_pkts * MSS as u64);
        let pkts = out.packets;
        prop_assert_eq!(pkts.len() as u64, n_pkts);
        // Deliver in a seed-shuffled order; cumulative ACKs must never
        // decrease and must end at n_pkts.
        let mut order: Vec<usize> = (0..pkts.len()).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s as usize) % (i + 1));
        }
        let mut rcv = TcpFlow::new(0, 0, 1, TcpConfig::default());
        let mut last = 0u64;
        for (k, &i) in order.iter().enumerate() {
            let r = rcv.on_data(SimTime::from_millis(k as u64 + 1), &pkts[i]);
            prop_assert!(r.ack.ack >= last, "cumulative ACK decreased");
            last = r.ack.ack;
        }
        prop_assert_eq!(last, n_pkts);
    }

    #[test]
    fn homa_sampler_is_positive_and_bounded(seed in 0u64..2000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = MsgSizeDist::HomaLike.sample(&mut rng);
            prop_assert!(s >= 1);
            prop_assert!(s <= 5_784_000);
        }
    }
}
