//! The event queue: the reactor at the heart of the simulator.
//!
//! Events are ordered by `(time, insertion sequence)` — the tiebreaker
//! makes the simulation fully deterministic regardless of heap
//! internals, which is what lets every experiment in this repository be
//! reproduced bit-for-bit from a seed.

use crate::packet::{AppId, FlowId, LinkId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something that will happen at a point in simulated time.
#[derive(Debug)]
pub enum Event {
    /// An application wakes up to generate traffic.
    AppWake { app: AppId },
    /// A link finished serializing the packet at the head of its queue.
    TxComplete { link: LinkId },
    /// A packet finished propagating and arrives at the link's far end.
    Arrival { link: LinkId, packet: Packet },
    /// Retransmission-timer check for a flow. `epoch` guards against
    /// stale timers: the flow ignores checks whose epoch is outdated.
    RtoCheck { flow: FlowId, epoch: u64 },
    /// Periodic queue-occupancy telemetry sample for a link (§5's
    /// "network telemetry" extension).
    Telemetry { link: LinkId },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic min-queue of scheduled events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is
    /// a simulator bug and panics.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: Event) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "time went backwards");
        self.now = s.at;
        Some((s.at, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), Event::AppWake { app: 3 });
        q.schedule(SimTime(10), Event::AppWake { app: 1 });
        q.schedule(SimTime(20), Event::AppWake { app: 2 });
        let mut order = vec![];
        while let Some((t, Event::AppWake { app })) = q.pop() {
            order.push((t.as_nanos(), app));
        }
        assert_eq!(order, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for app in 0..5 {
            q.schedule(SimTime(7), Event::AppWake { app });
        }
        let mut order = vec![];
        while let Some((_, Event::AppWake { app })) = q.pop() {
            order.push(app);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_millis(5), Event::AppWake { app: 0 });
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
        q.schedule_in(SimTime::from_millis(2), Event::AppWake { app: 1 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), Event::AppWake { app: 0 });
        q.pop();
        q.schedule(SimTime(5), Event::AppWake { app: 0 });
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), Event::AppWake { app: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
