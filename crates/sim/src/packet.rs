//! Packets and the identifiers that tie the simulator together.

use crate::time::SimTime;

/// Index of a node (host or switch) in the simulator arena.
pub type NodeId = usize;
/// Index of a unidirectional link in the simulator arena.
pub type LinkId = usize;
/// Index of a transport flow in the simulator arena.
pub type FlowId = usize;
/// Index of an application in the simulator arena.
pub type AppId = usize;
/// Per-flow message counter.
pub type MsgId = u64;

/// Payload-bearing vs acknowledgment packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Carries `seq` and application payload bytes.
    Data,
    /// Carries `ack` = next expected sequence number (cumulative).
    Ack,
}

/// A simulated packet. Packet-granularity sequence numbers: one `seq`
/// per MSS-sized chunk (ns-3-style simplification; byte-level sequence
/// space is an omitted feature, see DESIGN.md §7).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    pub kind: PacketKind,
    /// Data: this packet's sequence number. Ack: unused (0).
    pub seq: u64,
    /// Ack: cumulative acknowledgment (next expected seq). Data: unused.
    pub ack: u64,
    /// Bytes on the wire (payload + fixed header for data, header only
    /// for ACKs).
    pub size_bytes: u32,
    pub src: NodeId,
    pub dst: NodeId,
    /// Time this copy was first placed on the sender's egress queue.
    /// Retransmissions get a fresh timestamp.
    pub sent_at: SimTime,
    /// True if this copy is a retransmission (excluded from RTT sampling
    /// per Karn's algorithm).
    pub retransmit: bool,
    /// Message this chunk belongs to.
    pub msg_id: MsgId,
    /// Total size of that message in bytes.
    pub msg_size: u64,
    /// True for the final chunk of its message.
    pub msg_last: bool,
    /// When the application submitted the owning message (travels with
    /// the packet so the receiver can compute message completion times).
    pub msg_submitted: SimTime,
}

/// Fixed per-packet header overhead (rough Ethernet+IP+TCP).
pub const HEADER_BYTES: u32 = 54;
/// ACK wire size.
pub const ACK_BYTES: u32 = 54;
/// Maximum segment size: payload bytes per data packet.
pub const MSS: u32 = 1446;

impl Packet {
    /// A data packet carrying `payload` bytes.
    #[allow(clippy::too_many_arguments)] // flat constructor mirrors the on-wire record layout
    pub fn data(
        flow: FlowId,
        seq: u64,
        payload: u32,
        src: NodeId,
        dst: NodeId,
        msg_id: MsgId,
        msg_size: u64,
        msg_last: bool,
    ) -> Self {
        assert!(
            payload > 0 && payload <= MSS,
            "payload {payload} out of range"
        );
        Packet {
            flow,
            kind: PacketKind::Data,
            seq,
            ack: 0,
            size_bytes: payload + HEADER_BYTES,
            src,
            dst,
            sent_at: SimTime::ZERO,
            retransmit: false,
            msg_id,
            msg_size,
            msg_last,
            msg_submitted: SimTime::ZERO,
        }
    }

    /// An acknowledgment for `flow`, flowing `src -> dst` (receiver to
    /// sender), acknowledging everything below `ack`.
    pub fn ack(flow: FlowId, ack: u64, src: NodeId, dst: NodeId) -> Self {
        Packet {
            flow,
            kind: PacketKind::Ack,
            seq: 0,
            ack,
            size_bytes: ACK_BYTES,
            src,
            dst,
            sent_at: SimTime::ZERO,
            retransmit: false,
            msg_id: 0,
            msg_size: 0,
            msg_last: false,
            msg_submitted: SimTime::ZERO,
        }
    }

    /// Payload bytes carried (0 for ACKs).
    pub fn payload_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::Data => self.size_bytes - HEADER_BYTES,
            PacketKind::Ack => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_accounts_header() {
        let p = Packet::data(0, 7, MSS, 1, 2, 3, 9000, false);
        assert_eq!(p.size_bytes, MSS + HEADER_BYTES);
        assert_eq!(p.payload_bytes(), MSS);
        assert_eq!(p.kind, PacketKind::Data);
        assert_eq!(p.seq, 7);
    }

    #[test]
    fn ack_packet_is_header_only() {
        let a = Packet::ack(0, 42, 2, 1);
        assert_eq!(a.size_bytes, ACK_BYTES);
        assert_eq!(a.payload_bytes(), 0);
        assert_eq!(a.ack, 42);
        assert_eq!(a.kind, PacketKind::Ack);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_payload() {
        Packet::data(0, 0, MSS + 1, 0, 1, 0, 0, false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_empty_payload() {
        Packet::data(0, 0, 0, 0, 1, 0, 0, false);
    }
}
