//! Trace persistence: TSV export/import for [`RunTrace`].
//!
//! The paper's economics hinge on datasets being collectable once and
//! reused; this module lets generated traces be saved, shared, and
//! reloaded without rerunning the simulator (and lets external traces
//! be injected into the training pipeline by writing the same format).
//!
//! Format: two plain TSV files with headers — `<base>.packets.tsv` and
//! `<base>.messages.tsv`. Columns mirror [`PacketRecord`] and
//! [`MessageRecord`] field-for-field.

use crate::scenarios::RunTrace;
use crate::trace::{MessageRecord, PacketRecord};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

const PACKET_HEADER: &str = "recv_ns\tsent_ns\tdelay_ns\tsize_bytes\tflow\tsender\treceiver\treceiver_group\tseq\tmsg_id\tmsg_size\tmsg_last\tretransmit";
const MESSAGE_HEADER: &str = "flow\tmsg_id\tsize_bytes\tsubmitted_ns\tcompleted_ns";

/// Write a trace as `<base>.packets.tsv` + `<base>.messages.tsv`.
pub fn save_trace(base: impl AsRef<Path>, trace: &RunTrace) -> io::Result<()> {
    let base = base.as_ref();
    let mut pk = String::with_capacity(trace.packets.len() * 64);
    pk.push_str(PACKET_HEADER);
    pk.push('\n');
    for p in &trace.packets {
        let _ = writeln!(
            pk,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            p.recv_ns,
            p.sent_ns,
            p.delay_ns,
            p.size_bytes,
            p.flow,
            p.sender,
            p.receiver,
            p.receiver_group,
            p.seq,
            p.msg_id,
            p.msg_size,
            p.msg_last as u8,
            p.retransmit as u8,
        );
    }
    fs::write(with_suffix(base, ".packets.tsv"), pk)?;

    let mut ms = String::with_capacity(trace.messages.len() * 40);
    ms.push_str(MESSAGE_HEADER);
    ms.push('\n');
    for m in &trace.messages {
        let _ = writeln!(
            ms,
            "{}\t{}\t{}\t{}\t{}",
            m.flow, m.msg_id, m.size_bytes, m.submitted_ns, m.completed_ns
        );
    }
    fs::write(with_suffix(base, ".messages.tsv"), ms)
}

/// Read a trace saved by [`save_trace`] (or produced externally in the
/// same format). The `events`/`drops` counters are not persisted and
/// load as zero.
pub fn load_trace(base: impl AsRef<Path>) -> io::Result<RunTrace> {
    let base = base.as_ref();
    let pk = fs::read_to_string(with_suffix(base, ".packets.tsv"))?;
    let ms = fs::read_to_string(with_suffix(base, ".messages.tsv"))?;

    let mut packets = Vec::new();
    for (lineno, line) in pk.lines().enumerate() {
        if lineno == 0 {
            check_header(line, PACKET_HEADER, "packets")?;
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 13 {
            return Err(bad(format!("packets line {lineno}: {} fields", f.len())));
        }
        packets.push(PacketRecord {
            recv_ns: num(f[0], lineno)?,
            sent_ns: num(f[1], lineno)?,
            delay_ns: num(f[2], lineno)?,
            size_bytes: num(f[3], lineno)? as u32,
            flow: num(f[4], lineno)? as usize,
            sender: num(f[5], lineno)? as usize,
            receiver: num(f[6], lineno)? as usize,
            receiver_group: num(f[7], lineno)? as u32,
            seq: num(f[8], lineno)?,
            msg_id: num(f[9], lineno)?,
            msg_size: num(f[10], lineno)?,
            msg_last: f[11] == "1",
            retransmit: f[12] == "1",
        });
    }

    let mut messages = Vec::new();
    for (lineno, line) in ms.lines().enumerate() {
        if lineno == 0 {
            check_header(line, MESSAGE_HEADER, "messages")?;
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 5 {
            return Err(bad(format!("messages line {lineno}: {} fields", f.len())));
        }
        messages.push(MessageRecord {
            flow: num(f[0], lineno)? as usize,
            msg_id: num(f[1], lineno)?,
            size_bytes: num(f[2], lineno)?,
            submitted_ns: num(f[3], lineno)?,
            completed_ns: num(f[4], lineno)?,
        });
    }

    Ok(RunTrace {
        packets,
        messages,
        events: 0,
        drops: 0,
    })
}

fn with_suffix(base: &Path, suffix: &str) -> std::path::PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(suffix);
    s.into()
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn check_header(line: &str, expect: &str, which: &str) -> io::Result<()> {
    if line != expect {
        return Err(bad(format!("unexpected {which} header: {line:?}")));
    }
    Ok(())
}

fn num(s: &str, lineno: usize) -> io::Result<u64> {
    s.parse()
        .map_err(|e| bad(format!("line {lineno}: bad number {s:?} ({e})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{run, Scenario, ScenarioConfig};

    fn tmp_base(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ntt_trace_{name}_{}", std::process::id()))
    }

    fn cleanup(base: &Path) {
        fs::remove_file(with_suffix(base, ".packets.tsv")).ok();
        fs::remove_file(with_suffix(base, ".messages.tsv")).ok();
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let trace = run(Scenario::Case1, &ScenarioConfig::tiny(77));
        let base = tmp_base("roundtrip");
        save_trace(&base, &trace).unwrap();
        let back = load_trace(&base).unwrap();
        assert_eq!(trace.packets, back.packets);
        assert_eq!(trace.messages, back.messages);
        cleanup(&base);
    }

    #[test]
    fn load_rejects_wrong_header() {
        let base = tmp_base("header");
        fs::write(with_suffix(&base, ".packets.tsv"), "nope\n").unwrap();
        fs::write(with_suffix(&base, ".messages.tsv"), "nope\n").unwrap();
        let err = load_trace(&base).unwrap_err();
        assert!(err.to_string().contains("unexpected packets header"));
        cleanup(&base);
    }

    #[test]
    fn load_rejects_ragged_rows() {
        let base = tmp_base("ragged");
        fs::write(
            with_suffix(&base, ".packets.tsv"),
            format!("{PACKET_HEADER}\n1\t2\t3\n"),
        )
        .unwrap();
        fs::write(
            with_suffix(&base, ".messages.tsv"),
            format!("{MESSAGE_HEADER}\n"),
        )
        .unwrap();
        let err = load_trace(&base).unwrap_err();
        assert!(err.to_string().contains("fields"));
        cleanup(&base);
    }

    #[test]
    fn loaded_trace_feeds_the_training_pipeline() {
        // The reloaded trace must be indistinguishable to downstream
        // consumers: same packets in the same order.
        let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(78));
        let base = tmp_base("pipeline");
        save_trace(&base, &trace).unwrap();
        let back = load_trace(&base).unwrap();
        assert!(back
            .packets
            .windows(2)
            .all(|w| w[0].recv_ns <= w[1].recv_ns));
        assert!(!back.messages.is_empty());
        cleanup(&base);
    }
}
