//! Store-and-forward links with drop-tail FIFO queues.
//!
//! A [`Link`] is unidirectional: it serializes one packet at a time at
//! `rate_bps`, holds up to `queue_capacity` *waiting* packets (the
//! packet being serialized has left the queue, matching ns-3's
//! `DropTailQueue` semantics), and delivers after a fixed propagation
//! delay. Queue overflow drops the arriving packet (drop-tail).
//!
//! Fault injection: `loss_prob` drops packets at enqueue time with the
//! given probability — the smoltcp-style `--drop-chance` knob, used by
//! robustness tests.

use crate::packet::{NodeId, Packet};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    pub rate_bps: u64,
    pub prop_delay: SimTime,
    /// Maximum number of waiting packets (the paper's bottleneck uses
    /// 1000).
    pub queue_capacity: usize,
    /// Random loss probability applied per enqueue (fault injection;
    /// 0.0 = reliable).
    pub loss_prob: f64,
}

impl LinkConfig {
    /// A sensible default: 1 Gbps, 10 us, large queue, no loss.
    pub fn lan() -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay: SimTime::from_micros(10),
            queue_capacity: 10_000,
            loss_prob: 0.0,
        }
    }
}

/// Counters exposed for experiments and invariant tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    pub enqueued: u64,
    pub dropped_overflow: u64,
    pub dropped_fault: u64,
    pub transmitted: u64,
    pub bytes_transmitted: u64,
    /// Running peak of the waiting-queue length.
    pub max_queue_len: usize,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Link was idle: start serializing now.
    StartTx,
    /// Placed at the tail of the waiting queue.
    Queued,
    /// Dropped (queue full or injected fault).
    Dropped,
}

/// A unidirectional link `from -> to`.
pub struct Link {
    pub from: NodeId,
    pub to: NodeId,
    pub cfg: LinkConfig,
    queue: VecDeque<Packet>,
    /// Packet currently being serialized, if any.
    in_flight: Option<Packet>,
    pub stats: LinkStats,
}

impl Link {
    pub fn new(from: NodeId, to: NodeId, cfg: LinkConfig) -> Self {
        Link {
            from,
            to,
            cfg,
            queue: VecDeque::new(),
            in_flight: None,
            stats: LinkStats::default(),
        }
    }

    /// Waiting-queue length (excludes the packet being serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True while a packet is being serialized.
    pub fn busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Offer a packet. `drop_roll` is a uniform [0,1) sample supplied by
    /// the simulator's RNG (keeps all randomness seeded centrally).
    pub fn offer(&mut self, packet: Packet, drop_roll: f64) -> Enqueue {
        if self.cfg.loss_prob > 0.0 && drop_roll < self.cfg.loss_prob {
            self.stats.dropped_fault += 1;
            return Enqueue::Dropped;
        }
        if self.in_flight.is_none() {
            debug_assert!(self.queue.is_empty(), "idle link with non-empty queue");
            self.in_flight = Some(packet);
            self.stats.enqueued += 1;
            return Enqueue::StartTx;
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.stats.dropped_overflow += 1;
            return Enqueue::Dropped;
        }
        self.queue.push_back(packet);
        self.stats.enqueued += 1;
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.queue.len());
        Enqueue::Queued
    }

    /// Serialization time of the packet currently in flight.
    pub fn current_tx_time(&self) -> SimTime {
        let p = self.in_flight.as_ref().expect("no packet in flight");
        SimTime::tx_time(p.size_bytes as u64, self.cfg.rate_bps)
    }

    /// Complete the current transmission: returns the transmitted packet
    /// and, if the queue was non-empty, starts serializing the next one
    /// (returned as `true`).
    pub fn finish_tx(&mut self) -> (Packet, bool) {
        let done = self.in_flight.take().expect("finish_tx on idle link");
        self.stats.transmitted += 1;
        self.stats.bytes_transmitted += done.size_bytes as u64;
        let more = if let Some(next) = self.queue.pop_front() {
            self.in_flight = Some(next);
            true
        } else {
            false
        };
        (done, more)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet::data(0, seq, 1000, 0, 1, 0, 1000, true)
    }

    fn tiny_link(cap: usize) -> Link {
        Link::new(
            0,
            1,
            LinkConfig {
                rate_bps: 8_000_000, // 1 byte per microsecond
                prop_delay: SimTime::from_micros(100),
                queue_capacity: cap,
                loss_prob: 0.0,
            },
        )
    }

    #[test]
    fn idle_link_starts_transmitting_immediately() {
        let mut l = tiny_link(2);
        assert_eq!(l.offer(pkt(0), 1.0), Enqueue::StartTx);
        assert!(l.busy());
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues_then_drops_at_capacity() {
        let mut l = tiny_link(2);
        assert_eq!(l.offer(pkt(0), 1.0), Enqueue::StartTx);
        assert_eq!(l.offer(pkt(1), 1.0), Enqueue::Queued);
        assert_eq!(l.offer(pkt(2), 1.0), Enqueue::Queued);
        assert_eq!(l.offer(pkt(3), 1.0), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_overflow, 1);
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.stats.max_queue_len, 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut l = tiny_link(10);
        l.offer(pkt(0), 1.0);
        l.offer(pkt(1), 1.0);
        l.offer(pkt(2), 1.0);
        let (p0, more) = l.finish_tx();
        assert_eq!(p0.seq, 0);
        assert!(more);
        let (p1, more) = l.finish_tx();
        assert_eq!(p1.seq, 1);
        assert!(more);
        let (p2, more) = l.finish_tx();
        assert_eq!(p2.seq, 2);
        assert!(!more);
        assert!(!l.busy());
    }

    #[test]
    fn tx_time_uses_packet_size() {
        let mut l = tiny_link(1);
        l.offer(pkt(0), 1.0); // 1054 bytes at 1 B/us
        assert_eq!(l.current_tx_time(), SimTime::from_micros(1054));
    }

    #[test]
    fn fault_injection_drops_by_roll() {
        let mut l = Link::new(
            0,
            1,
            LinkConfig {
                loss_prob: 0.5,
                ..LinkConfig::lan()
            },
        );
        assert_eq!(l.offer(pkt(0), 0.4), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_fault, 1);
        assert_eq!(l.offer(pkt(1), 0.6), Enqueue::StartTx);
    }

    #[test]
    #[should_panic(expected = "finish_tx on idle link")]
    fn finish_on_idle_is_a_bug() {
        tiny_link(1).finish_tx();
    }
}
