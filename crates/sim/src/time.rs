//! Simulation time: integer nanoseconds.
//!
//! Discrete-event simulation must never accumulate floating-point error
//! in its clock (two events scheduled "at the same time" must compare
//! equal), so the clock is a `u64` nanosecond counter wrapped in a
//! newtype. Conversions to `f64` seconds exist only at the trace/feature
//! boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (trace/feature boundary only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference (`self - earlier`, clamped at zero).
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Serialization time of `bytes` at `rate_bps` (bits per second),
    /// rounded up so a nonzero payload never serializes in zero time.
    pub fn tx_time(bytes: u64, rate_bps: u64) -> SimTime {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes * 8;
        SimTime((bits * 1_000_000_000).div_ceil(rate_bps))
    }

    /// Scale by an f64 factor (for RTO backoff), rounded.
    pub fn mul_f64(self, k: f64) -> SimTime {
        assert!(k >= 0.0 && k.is_finite());
        SimTime((self.0 as f64 * k).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self} - {rhs}");
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tx_time_matches_bandwidth_math() {
        // 1500 bytes at 30 Mbps = 12000 bits / 30e6 bps = 400 microseconds.
        assert_eq!(
            SimTime::tx_time(1500, 30_000_000),
            SimTime::from_micros(400)
        );
        // Rounds up: 1 byte at 1 Gbps = 8 ns exactly.
        assert_eq!(SimTime::tx_time(1, 1_000_000_000), SimTime(8));
        // Never zero for nonzero payloads.
        assert!(SimTime::tx_time(1, u32::MAX as u64 * 8).as_nanos() > 0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(8));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_millis(2));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(8));
        assert_eq!(a.mul_f64(2.0), SimTime::from_millis(10));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(7), SimTime(7));
    }
}
