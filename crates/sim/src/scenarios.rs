//! The paper's dataset-generation setups (Fig. 4) plus the topology
//! families used by the fleet's scenario grid.
//!
//! Builders:
//! * [`pretrain`] — 60 senders × 1 Mbps of messages through one 30 Mbps
//!   bottleneck (queue 1000 packets) to a single receiver.
//! * [`case1`] — the same topology plus 20 Mbps of TCP cross-traffic
//!   (fine-tuning case 1; cross-traffic packets are *not* traced).
//! * [`case2`] — a larger chain topology with three receivers at
//!   different path depths and a cross-traffic source on every hop, so
//!   packets toward different receivers see different delays and
//!   congestion (fine-tuning case 2).
//! * [`parking_lot`] — the case-2 family generalized to a configurable
//!   hop count: a chain of `hops` bottlenecks with one receiver and one
//!   cross-traffic bundle per hop ([`Scenario::ParkingLot`]).
//! * [`leaf_spine`] — a two-tier datacenter-style fabric: senders on
//!   one leaf, a receiver behind every other leaf, leaf-spine links as
//!   bottlenecks, destination-skewed cross-traffic so each spine path
//!   congests differently ([`Scenario::LeafSpine`]).
//!
//! The extra families exist for the generalization story: a model
//! pre-trained on one dumbbell cannot be expected to transfer, so the
//! fleet (`ntt-fleet`) sweeps (scenario × load × seed) grids across
//! these builders to produce diverse pre-training sets.

use crate::app::App;
use crate::link::LinkConfig;
use crate::packet::NodeId;
use crate::sim::Simulator;
use crate::tcp::{TcpConfig, TcpFlow};
use crate::time::SimTime;
use crate::topology::TopologyBuilder;
use crate::trace::{MessageRecord, PacketRecord};
use crate::workload::MsgSizeDist;

/// Which setup to build: the paper's three Fig. 4 scenarios plus the
/// parameterized topology families the fleet grid sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    Pretrain,
    Case1,
    Case2,
    /// Parking-lot chain with `hops` bottleneck hops, one receiver per
    /// hop (path depths 1..=hops) and cross-traffic on every hop.
    /// `ParkingLot { hops: 3 }` is topologically [`Scenario::Case2`].
    ParkingLot {
        hops: u8,
    },
    /// Two-tier leaf-spine fabric: senders on leaf 0, one receiver
    /// behind each of the other `leaves - 1` leaves, every leaf-spine
    /// link a bottleneck, cross-traffic skewed by destination leaf.
    LeafSpine {
        leaves: u8,
        spines: u8,
    },
}

impl Scenario {
    /// Number of distinct receiver groups this scenario produces.
    /// Degenerate parameters (0 hops, fewer than 2 leaves, 0 spines)
    /// are not clamped anywhere: [`run`] panics on them via the builder
    /// asserts, so a sweep fails fast instead of silently generating
    /// mislabeled or duplicate topologies.
    pub fn n_receiver_groups(&self) -> usize {
        match *self {
            Scenario::Pretrain | Scenario::Case1 => 1,
            Scenario::Case2 => 3,
            Scenario::ParkingLot { hops } => hops as usize,
            Scenario::LeafSpine { leaves, .. } => (leaves as usize).saturating_sub(1),
        }
    }

    /// A short stable label for file names and reports.
    pub fn label(&self) -> String {
        match *self {
            Scenario::Pretrain => "pretrain".into(),
            Scenario::Case1 => "case1".into(),
            Scenario::Case2 => "case2".into(),
            Scenario::ParkingLot { hops } => format!("parkinglot{hops}"),
            Scenario::LeafSpine { leaves, spines } => format!("leafspine{leaves}x{spines}"),
        }
    }
}

/// All tunables of the Fig. 4 setups. `Default` reproduces the paper's
/// numbers.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Foreground message senders (paper: 60).
    pub n_senders: usize,
    /// Average offered rate per sender (paper: 1 Mbps).
    pub sender_rate_bps: f64,
    /// Access link speed for hosts.
    pub access_bps: u64,
    pub access_delay: SimTime,
    /// Bottleneck link speed (paper: 30 Mbps).
    pub bottleneck_bps: u64,
    pub bottleneck_delay: SimTime,
    /// Bottleneck queue capacity in packets (paper: 1000).
    pub bottleneck_queue: usize,
    /// Message size distribution (paper: real-world / Homa-like).
    pub msg_dist: MsgSizeDist,
    /// Traffic generation period per run (paper: 1 minute).
    pub duration: SimTime,
    /// Extra time after `duration` to let in-flight traffic drain.
    pub drain: SimTime,
    /// Application start jitter (paper: randomized start times).
    pub start_jitter: SimTime,
    /// Aggregate cross-traffic rate (cases 1-2; paper: 20 Mbps).
    pub cross_rate_bps: f64,
    /// Number of TCP flows the cross-traffic is split over.
    pub n_cross_flows: usize,
    pub tcp: TcpConfig,
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_senders: 60,
            sender_rate_bps: 1_000_000.0,
            access_bps: 100_000_000,
            access_delay: SimTime::from_micros(50),
            bottleneck_bps: 30_000_000,
            bottleneck_delay: SimTime::from_millis(10),
            bottleneck_queue: 1000,
            msg_dist: MsgSizeDist::HomaLike,
            duration: SimTime::from_secs(60),
            drain: SimTime::from_secs(2),
            start_jitter: SimTime::from_secs(1),
            cross_rate_bps: 20_000_000.0,
            n_cross_flows: 4,
            tcp: TcpConfig::default(),
            seed: 0,
        }
    }
}

impl ScenarioConfig {
    /// A miniaturized config for tests and quick experiments: fewer
    /// senders, shorter runs, proportionally scaled-down links, and a
    /// bounded message-size distribution (the unbounded Homa-like tail
    /// makes 3-second runs statistically unstable). Foreground load is
    /// ~60% of the bottleneck so that adding cross-traffic visibly
    /// shifts the delay distribution.
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            n_senders: 6,
            sender_rate_bps: 400_000.0,
            bottleneck_bps: 4_000_000,
            bottleneck_queue: 100,
            msg_dist: MsgSizeDist::LogUniform {
                min: 2_000,
                max: 200_000,
            },
            duration: SimTime::from_secs(4),
            drain: SimTime::from_secs(1),
            start_jitter: SimTime::from_millis(200),
            cross_rate_bps: 2_000_000.0,
            n_cross_flows: 2,
            seed,
            ..ScenarioConfig::default()
        }
    }
}

/// The trace produced by one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    pub packets: Vec<PacketRecord>,
    pub messages: Vec<MessageRecord>,
    pub events: u64,
    pub drops: u64,
}

fn access_cfg(cfg: &ScenarioConfig) -> LinkConfig {
    LinkConfig {
        rate_bps: cfg.access_bps,
        prop_delay: cfg.access_delay,
        queue_capacity: 10_000,
        loss_prob: 0.0,
    }
}

fn bottleneck_cfg(cfg: &ScenarioConfig) -> LinkConfig {
    LinkConfig {
        rate_bps: cfg.bottleneck_bps,
        prop_delay: cfg.bottleneck_delay,
        queue_capacity: cfg.bottleneck_queue,
        loss_prob: 0.0,
    }
}

/// Shared assembly: attach `n_senders` message apps, one per flow
/// `sender -> receivers[i % len]`, plus cross-traffic flows.
struct Assembly {
    topo: TopologyBuilder,
    flows: Vec<TcpFlow>,
    apps: Vec<App>,
    foreground: Vec<usize>,
    receivers: Vec<NodeId>,
}

impl Assembly {
    fn finish(self, cfg: &ScenarioConfig) -> Simulator {
        let (nodes, links) = self.topo.build();
        let mut sim = Simulator::new(nodes, links, self.flows, self.apps, cfg.seed);
        for f in &self.foreground {
            sim.trace.record_flow(*f);
        }
        for (group, r) in self.receivers.iter().enumerate() {
            sim.trace.set_receiver_group(*r, group as u32);
        }
        sim
    }
}

/// Attach foreground senders (hosts + flows + apps) at `edge_switch`,
/// targeting `receivers` round-robin.
fn add_senders(a: &mut Assembly, cfg: &ScenarioConfig, edge_switch: NodeId, receivers: &[NodeId]) {
    for i in 0..cfg.n_senders {
        let host = a.topo.add_host(format!("sender{i}"));
        a.topo.connect(host, edge_switch, access_cfg(cfg));
        let dst = receivers[i % receivers.len()];
        let flow_id = a.flows.len();
        a.flows.push(TcpFlow::new(flow_id, host, dst, cfg.tcp));
        a.foreground.push(flow_id);
        a.apps.push(App::message_source(
            flow_id,
            cfg.msg_dist,
            cfg.sender_rate_bps,
            cfg.duration,
        ));
    }
}

/// Attach `n` cross-traffic flows from fresh hosts at `src_switch` to
/// fresh sinks at `dst_switch`, sharing `rate_bps` equally.
fn add_cross(
    a: &mut Assembly,
    cfg: &ScenarioConfig,
    src_switch: NodeId,
    dst_switch: NodeId,
    n: usize,
    rate_bps: f64,
) {
    if n == 0 || rate_bps <= 0.0 {
        return;
    }
    let per_flow = rate_bps / n as f64;
    for i in 0..n {
        let src = a.topo.add_host(format!("cross_src{}_{i}", src_switch));
        let dst = a.topo.add_host(format!("cross_dst{}_{i}", dst_switch));
        a.topo.connect(src, src_switch, access_cfg(cfg));
        a.topo.connect(dst, dst_switch, access_cfg(cfg));
        let flow_id = a.flows.len();
        a.flows.push(TcpFlow::new(flow_id, src, dst, cfg.tcp));
        a.apps.push(App::cbr_source(
            flow_id,
            crate::packet::MSS as u64,
            per_flow,
            cfg.duration,
        ));
    }
}

/// Pre-training setup: senders -> SW_L =bottleneck=> SW_R -> receiver.
pub fn pretrain(cfg: &ScenarioConfig) -> Simulator {
    build_dumbbell(cfg, false)
}

/// Fine-tuning case 1: pre-training topology + cross-traffic over the
/// same bottleneck.
pub fn case1(cfg: &ScenarioConfig) -> Simulator {
    build_dumbbell(cfg, true)
}

fn build_dumbbell(cfg: &ScenarioConfig, cross: bool) -> Simulator {
    let mut a = Assembly {
        topo: TopologyBuilder::new(),
        flows: Vec::new(),
        apps: Vec::new(),
        foreground: Vec::new(),
        receivers: Vec::new(),
    };
    let sw_l = a.topo.add_switch("sw_l");
    let sw_r = a.topo.add_switch("sw_r");
    a.topo.connect(sw_l, sw_r, bottleneck_cfg(cfg));
    let recv = a.topo.add_host("receiver");
    a.topo.connect(sw_r, recv, access_cfg(cfg));
    a.receivers.push(recv);
    add_senders(&mut a, cfg, sw_l, &[recv]);
    if cross {
        add_cross(
            &mut a,
            cfg,
            sw_l,
            sw_r,
            cfg.n_cross_flows,
            cfg.cross_rate_bps,
        );
    }
    a.finish(cfg)
}

/// Fine-tuning case 2: a chain SW0 => SW1 => SW2 => SW3 with receivers
/// R1@SW1, R2@SW2, R3@SW3 (different path depths) and cross-traffic
/// entering at every hop. Equivalent to [`parking_lot`] with 3 hops.
pub fn case2(cfg: &ScenarioConfig) -> Simulator {
    parking_lot(cfg, 3)
}

/// Parking-lot chain with a configurable number of bottleneck hops:
/// SW0 => SW1 => ... => SWhops, receiver Ri behind SWi (path depth i),
/// senders at SW0 targeting the receivers round-robin, and one
/// cross-traffic bundle per hop sharing `cross_rate_bps` equally.
pub fn parking_lot(cfg: &ScenarioConfig, hops: usize) -> Simulator {
    assert!(hops >= 1, "a parking lot needs at least one hop");
    let mut a = Assembly {
        topo: TopologyBuilder::new(),
        flows: Vec::new(),
        apps: Vec::new(),
        foreground: Vec::new(),
        receivers: Vec::new(),
    };
    let sw = a.topo.chain(hops + 1, bottleneck_cfg(cfg));
    for (i, &s) in sw[1..].iter().enumerate() {
        let r = a.topo.add_host(format!("recv{}", i + 1));
        a.topo.connect(s, r, access_cfg(cfg));
        a.receivers.push(r);
    }
    let receivers = a.receivers.clone();
    add_senders(&mut a, cfg, sw[0], &receivers);
    // One cross-traffic bundle per hop, each taking a share of the rate.
    let per_hop = cfg.cross_rate_bps / hops as f64;
    let flows_per_hop = cfg.n_cross_flows.div_ceil(hops);
    for h in 0..hops {
        add_cross(&mut a, cfg, sw[h], sw[h + 1], flows_per_hop, per_hop);
    }
    a.finish(cfg)
}

/// Two-tier leaf-spine fabric. Senders sit on leaf 0; each other leaf
/// hosts one receiver, so every foreground path is leaf0 => spine =>
/// leaf (the spine is chosen per destination leaf by deterministic BFS
/// tie-breaking, see [`TopologyBuilder::leaf_spine`]). Leaf-spine links
/// use the bottleneck config. Cross-traffic toward receiver leaf `k` is
/// *skewed by leaf index* (a share proportional to `k`) and enters at
/// the spine that serves leaf `k`, so it loads exactly that group's
/// egress hop — different receiver groups see different congestion
/// without coupling through the shared sender uplink.
pub fn leaf_spine(cfg: &ScenarioConfig, leaves: usize, spines: usize) -> Simulator {
    assert!(leaves >= 2, "need at least one receiver leaf");
    let mut a = Assembly {
        topo: TopologyBuilder::new(),
        flows: Vec::new(),
        apps: Vec::new(),
        foreground: Vec::new(),
        receivers: Vec::new(),
    };
    let (leaf_ids, spine_ids) = a.topo.leaf_spine(leaves, spines, bottleneck_cfg(cfg));
    for (i, &leaf) in leaf_ids[1..].iter().enumerate() {
        let r = a.topo.add_host(format!("recv{}", i + 1));
        a.topo.connect(leaf, r, access_cfg(cfg));
        a.receivers.push(r);
    }
    let receivers = a.receivers.clone();
    add_senders(&mut a, cfg, leaf_ids[0], &receivers);
    // Cross-traffic share of receiver leaf k (1-based): k / sum(1..n),
    // injected at leaf k's serving spine (BFS tie-breaking routes leaf
    // k's traffic via spine k % spines, see TopologyBuilder::leaf_spine).
    let n_recv = leaves - 1;
    let weight_sum = (n_recv * (n_recv + 1) / 2) as f64;
    let flows_per_leaf = cfg.n_cross_flows.div_ceil(n_recv).max(1);
    for k in 1..leaves {
        let share = cfg.cross_rate_bps * k as f64 / weight_sum;
        let spine = spine_ids[k % spines];
        add_cross(&mut a, cfg, spine, leaf_ids[k], flows_per_leaf, share);
    }
    a.finish(cfg)
}

/// Build, start apps with jitter, run to completion, and extract the
/// trace — one paper "simulation run".
pub fn run(scenario: Scenario, cfg: &ScenarioConfig) -> RunTrace {
    let mut sim = match scenario {
        Scenario::Pretrain => pretrain(cfg),
        Scenario::Case1 => case1(cfg),
        Scenario::Case2 => case2(cfg),
        Scenario::ParkingLot { hops } => parking_lot(cfg, hops as usize),
        Scenario::LeafSpine { leaves, spines } => leaf_spine(cfg, leaves as usize, spines as usize),
    };
    sim.start_all_apps_jittered(cfg.start_jitter);
    sim.run_until(cfg.duration + cfg.drain);
    let mut packets = std::mem::take(&mut sim.trace.packets);
    packets.sort_by_key(|p| (p.recv_ns, p.flow, p.seq));
    let mut messages = std::mem::take(&mut sim.trace.messages);
    messages.sort_by_key(|m| (m.completed_ns, m.flow, m.msg_id));
    RunTrace {
        packets,
        messages,
        events: sim.stats.events_processed,
        drops: sim.total_drops(),
    }
}

/// The paper's datasets are 10 runs with different randomized starts:
/// run `n_runs` with seeds `cfg.seed, cfg.seed+1, ...`.
///
/// Deprecated shim: `ntt_fleet::run_many_parallel` produces
/// byte-identical traces (same sequential seed schedule) while fanning
/// the runs out across cores, and `ntt_fleet::SweepSpec` generalizes it
/// to whole scenario grids. Every in-tree call site has been migrated;
/// this thin serial loop remains only so downstream code keeps
/// compiling for one release cycle.
#[deprecated(
    since = "0.1.0",
    note = "use ntt_fleet::run_many_parallel (identical traces, parallel) or \
            ntt_fleet::SweepSpec for full scenario grids; \
            this shim will be removed in 0.2"
)]
pub fn run_many(scenario: Scenario, cfg: &ScenarioConfig, n_runs: usize) -> Vec<RunTrace> {
    (0..n_runs)
        .map(|i| {
            let mut c = *cfg;
            c.seed = cfg.seed.wrapping_add(i as u64);
            run(scenario, &c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pretrain_produces_congested_trace() {
        let cfg = ScenarioConfig::tiny(1);
        let trace = run(Scenario::Pretrain, &cfg);
        assert!(
            trace.packets.len() > 300,
            "got {} packets",
            trace.packets.len()
        );
        assert!(!trace.messages.is_empty());
        // Message bursts through the bottleneck: delays must vary.
        let min = trace.packets.iter().map(|p| p.delay_ns).min().unwrap();
        let max = trace.packets.iter().map(|p| p.delay_ns).max().unwrap();
        assert!(max > 3 * min, "no delay dynamics: {min}..{max}");
    }

    #[test]
    fn traces_are_sorted_by_arrival() {
        let trace = run(Scenario::Pretrain, &ScenarioConfig::tiny(2));
        assert!(trace
            .packets
            .windows(2)
            .all(|w| w[0].recv_ns <= w[1].recv_ns));
    }

    #[test]
    fn case1_has_more_delay_than_pretrain_same_seed() {
        let cfg = ScenarioConfig::tiny(3);
        let base = run(Scenario::Pretrain, &cfg);
        let crossed = run(Scenario::Case1, &cfg);
        let mean = |t: &RunTrace| {
            t.packets.iter().map(|p| p.delay_ns as f64).sum::<f64>() / t.packets.len() as f64
        };
        assert!(
            mean(&crossed) > mean(&base),
            "cross traffic should add queueing: {} vs {}",
            mean(&crossed),
            mean(&base)
        );
    }

    #[test]
    fn case1_never_traces_cross_traffic() {
        let cfg = ScenarioConfig::tiny(4);
        let sim = case1(&cfg);
        // Cross flows are those beyond the foreground senders.
        let trace = run(Scenario::Case1, &cfg);
        for p in &trace.packets {
            assert!(p.flow < cfg.n_senders, "cross flow {} traced", p.flow);
        }
        drop(sim);
    }

    #[test]
    fn case2_has_multiple_receiver_groups_with_different_delays() {
        let cfg = ScenarioConfig::tiny(5);
        let trace = run(Scenario::Case2, &cfg);
        let mut per_group: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for p in &trace.packets {
            per_group
                .entry(p.receiver_group)
                .or_default()
                .push(p.delay_ns as f64);
        }
        assert_eq!(per_group.len(), 3, "three receiver groups");
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let m0 = mean(&per_group[&0]);
        let m2 = mean(&per_group[&2]);
        assert!(
            m2 > m0,
            "deeper receiver should see larger delay: {m0} vs {m2}"
        );
    }

    #[test]
    fn sequential_seed_schedule_varies_but_is_reproducible() {
        // The contract run_many used to provide (and run_many_parallel
        // now does): seeds `cfg.seed, cfg.seed+1, ...`, each run a pure
        // function of its seed.
        let cfg = ScenarioConfig::tiny(7);
        let seeded = |offset: u64| {
            let mut c = cfg;
            c.seed = cfg.seed + offset;
            run(Scenario::Pretrain, &c)
        };
        let (a0, a1) = (seeded(0), seeded(1));
        let (b0, b1) = (seeded(0), seeded(1));
        assert_eq!(a0.packets.len(), b0.packets.len());
        assert_eq!(a1.packets.len(), b1.packets.len());
        assert_ne!(
            a0.packets.len(),
            a1.packets.len(),
            "different seeds should differ (extremely unlikely to tie)"
        );
    }

    #[test]
    fn parking_lot_depth_scales_delay() {
        let cfg = ScenarioConfig::tiny(11);
        let trace = run(Scenario::ParkingLot { hops: 5 }, &cfg);
        let mut per_group: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for p in &trace.packets {
            per_group
                .entry(p.receiver_group)
                .or_default()
                .push(p.delay_ns as f64);
        }
        assert_eq!(per_group.len(), 5, "five receiver groups, one per hop");
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&per_group[&4]) > mean(&per_group[&0]),
            "deepest receiver must see larger mean delay"
        );
    }

    #[test]
    fn case2_is_parking_lot_with_three_hops() {
        let cfg = ScenarioConfig::tiny(12);
        let a = run(Scenario::Case2, &cfg);
        let b = run(Scenario::ParkingLot { hops: 3 }, &cfg);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn leaf_spine_produces_distinct_receiver_groups() {
        let cfg = ScenarioConfig::tiny(13);
        let trace = run(
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2,
            },
            &cfg,
        );
        let groups: std::collections::HashSet<u32> =
            trace.packets.iter().map(|p| p.receiver_group).collect();
        assert_eq!(
            groups.len(),
            3,
            "one group per receiver leaf, saw {groups:?}"
        );
        assert!(
            trace.packets.len() > 300,
            "got {} packets",
            trace.packets.len()
        );
    }

    #[test]
    fn leaf_spine_groups_see_diverse_congestion() {
        // The family exists to diversify conditions: cross-traffic is
        // skewed per destination leaf and spine paths are shared
        // asymmetrically, so per-group delay distributions must spread
        // out. (Which group is slowest is emergent — heavy-tailed
        // message draws move it around — so only the spread is stable.)
        let cfg = ScenarioConfig::tiny(14);
        let trace = run(
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2,
            },
            &cfg,
        );
        let mut per_group: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for p in &trace.packets {
            per_group
                .entry(p.receiver_group)
                .or_default()
                .push(p.delay_ns as f64);
        }
        assert_eq!(per_group.len(), 3);
        let means: Vec<f64> = (0..3)
            .map(|g| {
                let v = &per_group[&(g as u32)];
                v.iter().sum::<f64>() / v.len() as f64
            })
            .collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            / means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 1.2,
            "receiver groups should see distinct congestion, means {means:?}"
        );
    }

    #[test]
    fn new_scenarios_are_deterministic() {
        for sc in [
            Scenario::ParkingLot { hops: 4 },
            Scenario::LeafSpine {
                leaves: 3,
                spines: 2,
            },
        ] {
            let cfg = ScenarioConfig::tiny(15);
            let a = run(sc, &cfg);
            let b = run(sc, &cfg);
            assert_eq!(a.packets, b.packets, "{sc:?} must be reproducible");
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn degenerate_parking_lot_fails_fast() {
        run(Scenario::ParkingLot { hops: 0 }, &ScenarioConfig::tiny(0));
    }

    #[test]
    #[should_panic(expected = "at least one receiver leaf")]
    fn degenerate_leaf_spine_fails_fast() {
        run(
            Scenario::LeafSpine {
                leaves: 1,
                spines: 1,
            },
            &ScenarioConfig::tiny(0),
        );
    }

    #[test]
    fn scenario_labels_and_groups_are_consistent() {
        assert_eq!(Scenario::Pretrain.label(), "pretrain");
        assert_eq!(Scenario::ParkingLot { hops: 5 }.label(), "parkinglot5");
        assert_eq!(
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2
            }
            .label(),
            "leafspine4x2"
        );
        assert_eq!(Scenario::Case2.n_receiver_groups(), 3);
        assert_eq!(Scenario::ParkingLot { hops: 5 }.n_receiver_groups(), 5);
        assert_eq!(
            Scenario::LeafSpine {
                leaves: 4,
                spines: 2
            }
            .n_receiver_groups(),
            3
        );
    }
}
