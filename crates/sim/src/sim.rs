//! The simulator: event dispatch loop tying apps, flows, nodes, and
//! links together.
//!
//! Separation of concerns mirrors an async runtime turned inside-out
//! (reactor = [`EventQueue`], state machines = [`TcpFlow`]/[`Link`]):
//! every component is a passive state machine and this module is the
//! only place where effects (packet routing, timer arming, tracing)
//! happen. All randomness flows through one seeded RNG, so a
//! `(topology, seed)` pair fully determines the trace.

use crate::app::App;
use crate::event::{Event, EventQueue};
use crate::link::{Enqueue, Link};
use crate::node::Node;
use crate::packet::{AppId, FlowId, NodeId, Packet, PacketKind};
use crate::tcp::{SendResult, TcpFlow};
use crate::time::SimTime;
use crate::trace::{MessageRecord, PacketRecord, QueueSample, TraceCollector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Aggregate counters for a finished run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    pub events_processed: u64,
    pub packets_forwarded: u64,
    pub packets_dropped: u64,
}

/// A packet-level network simulator instance.
pub struct Simulator {
    pub queue: EventQueue,
    pub nodes: Vec<Node>,
    pub links: Vec<Link>,
    pub flows: Vec<TcpFlow>,
    pub apps: Vec<App>,
    pub trace: TraceCollector,
    rng: StdRng,
    pub stats: SimStats,
    /// Queue telemetry: link -> sampling interval + collected series.
    telemetry: BTreeMap<usize, (SimTime, Vec<QueueSample>)>,
}

impl Simulator {
    /// Assemble a simulator from parts (usually via
    /// [`crate::topology::TopologyBuilder`] and `crate::scenarios`).
    pub fn new(
        nodes: Vec<Node>,
        links: Vec<Link>,
        flows: Vec<TcpFlow>,
        apps: Vec<App>,
        seed: u64,
    ) -> Self {
        let trace = TraceCollector::new(flows.len(), nodes.len());
        Simulator {
            queue: EventQueue::new(),
            nodes,
            links,
            flows,
            apps,
            trace,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            telemetry: BTreeMap::new(),
        }
    }

    /// Enable periodic queue-occupancy sampling on a link (§5's
    /// telemetry extension). Samples continue until the run's time
    /// bound; retrieve them with [`Simulator::telemetry_of`].
    pub fn enable_queue_telemetry(&mut self, link: usize, interval: SimTime) {
        assert!(link < self.links.len(), "unknown link {link}");
        assert!(interval > SimTime::ZERO, "interval must be positive");
        if self
            .telemetry
            .insert(link, (interval, Vec::new()))
            .is_none()
        {
            self.queue.schedule_in(interval, Event::Telemetry { link });
        }
    }

    /// Collected telemetry for a link (empty if not enabled).
    pub fn telemetry_of(&self, link: usize) -> &[QueueSample] {
        self.telemetry
            .get(&link)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[])
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an application's first wake-up.
    pub fn start_app(&mut self, app: AppId, at: SimTime) {
        assert!(app < self.apps.len(), "unknown app {app}");
        self.queue.schedule(at, Event::AppWake { app });
    }

    /// Schedule every app's first wake at a uniformly random offset in
    /// `[0, jitter)` — the paper's "randomized application start times".
    pub fn start_all_apps_jittered(&mut self, jitter: SimTime) {
        for app in 0..self.apps.len() {
            let off = if jitter == SimTime::ZERO {
                SimTime::ZERO
            } else {
                SimTime(self.rng.gen_range(0..jitter.as_nanos()))
            };
            self.queue.schedule(off, Event::AppWake { app });
        }
    }

    /// Run until the event queue is exhausted or the next event is past
    /// `end`. Events exactly at `end` are processed.
    pub fn run_until(&mut self, end: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            self.stats.events_processed += 1;
            self.handle(now, ev);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::AppWake { app } => {
                let action = self.apps[app].on_wake(now, &mut self.rng);
                if let Some(bytes) = action.submit_bytes {
                    let flow = self.apps[app].flow();
                    let (_, send) = self.flows[flow].app_submit(now, bytes);
                    self.dispatch(flow, send, now);
                }
                if let Some(at) = action.next_wake {
                    self.queue.schedule(at, Event::AppWake { app });
                }
            }
            Event::TxComplete { link } => {
                let (pkt, more) = self.links[link].finish_tx();
                let delay = self.links[link].cfg.prop_delay;
                self.queue
                    .schedule_in(delay, Event::Arrival { link, packet: pkt });
                if more {
                    let tx = self.links[link].current_tx_time();
                    self.queue.schedule_in(tx, Event::TxComplete { link });
                }
            }
            Event::Arrival { link, packet } => {
                let node = self.links[link].to;
                self.receive_at(node, packet, now);
            }
            Event::RtoCheck { flow, epoch } => {
                let send = self.flows[flow].on_rto(now, epoch);
                self.dispatch(flow, send, now);
            }
            Event::Telemetry { link } => {
                let l = &self.links[link];
                let sample = QueueSample {
                    t_ns: now.as_nanos(),
                    queue_len: l.queue_len(),
                    dropped: l.stats.dropped_overflow + l.stats.dropped_fault,
                };
                let (interval, series) = self
                    .telemetry
                    .get_mut(&link)
                    .expect("telemetry not enabled");
                series.push(sample);
                let next = *interval;
                self.queue.schedule_in(next, Event::Telemetry { link });
            }
        }
    }

    /// A packet arrives at `node`: deliver locally or forward.
    fn receive_at(&mut self, node: NodeId, pkt: Packet, now: SimTime) {
        if pkt.dst != node {
            self.stats.packets_forwarded += 1;
            self.transmit_from(node, pkt, now);
            return;
        }
        match pkt.kind {
            PacketKind::Data => {
                let flow = pkt.flow;
                let res = self.flows[flow].on_data(now, &pkt);
                if res.newly_received {
                    self.trace.on_packet(PacketRecord {
                        recv_ns: now.as_nanos(),
                        sent_ns: pkt.sent_at.as_nanos(),
                        delay_ns: now.saturating_since(pkt.sent_at).as_nanos(),
                        size_bytes: pkt.size_bytes,
                        flow,
                        sender: pkt.src,
                        receiver: node,
                        receiver_group: self.trace.group_of(node),
                        seq: pkt.seq,
                        msg_id: pkt.msg_id,
                        msg_size: pkt.msg_size,
                        msg_last: pkt.msg_last,
                        retransmit: pkt.retransmit,
                    });
                }
                for c in res.completed {
                    self.trace.on_message(MessageRecord {
                        flow,
                        msg_id: c.msg_id,
                        size_bytes: c.msg_size,
                        submitted_ns: c.submitted.as_nanos(),
                        completed_ns: now.as_nanos(),
                    });
                }
                self.transmit_from(node, res.ack, now);
            }
            PacketKind::Ack => {
                let flow = pkt.flow;
                let send = self.flows[flow].on_ack(now, pkt.ack);
                self.dispatch(flow, send, now);
            }
        }
    }

    /// Apply a flow's send actions: route its packets, arm its timer.
    fn dispatch(&mut self, flow: FlowId, send: SendResult, now: SimTime) {
        for pkt in send.packets {
            let origin = pkt.src;
            self.transmit_from(origin, pkt, now);
        }
        if let Some(arm) = send.timer {
            self.queue.schedule_in(
                arm.delay,
                Event::RtoCheck {
                    flow,
                    epoch: arm.epoch,
                },
            );
        }
    }

    /// Put a packet on `node`'s next-hop link toward its destination.
    fn transmit_from(&mut self, node: NodeId, pkt: Packet, _now: SimTime) {
        let link_id = self.nodes[node].route(pkt.dst);
        let roll: f64 = self.rng.gen();
        match self.links[link_id].offer(pkt, roll) {
            Enqueue::StartTx => {
                let tx = self.links[link_id].current_tx_time();
                self.queue
                    .schedule_in(tx, Event::TxComplete { link: link_id });
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => {
                self.stats.packets_dropped += 1;
            }
        }
    }

    /// Total packets dropped across all links (overflow + faults).
    pub fn total_drops(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.stats.dropped_overflow + l.stats.dropped_fault)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::NodeKind;
    use crate::packet::MSS;
    use crate::tcp::TcpConfig;
    use crate::workload::MsgSizeDist;

    /// Two hosts, one bidirectional link, one flow, one app.
    fn two_host_sim(msg_bytes: u64, rate_bps: u64) -> Simulator {
        let mut h0 = Node::new(0, NodeKind::Host, "h0");
        let mut h1 = Node::new(1, NodeKind::Host, "h1");
        h0.set_routes(vec![None, Some(0)]);
        h1.set_routes(vec![Some(1), None]);
        let cfg = LinkConfig {
            rate_bps,
            prop_delay: SimTime::from_millis(1),
            queue_capacity: 1000,
            loss_prob: 0.0,
        };
        let links = vec![Link::new(0, 1, cfg), Link::new(1, 0, cfg)];
        let flows = vec![TcpFlow::new(0, 0, 1, TcpConfig::default())];
        let apps = vec![App::message_source(
            0,
            MsgSizeDist::Fixed { bytes: msg_bytes },
            1_000_000.0,
            SimTime::from_millis(1), // one message, then stop
        )];
        let mut sim = Simulator::new(vec![h0, h1], links, flows, apps, 42);
        sim.trace.record_flow(0);
        sim
    }

    #[test]
    fn single_message_is_delivered_and_traced() {
        let mut sim = two_host_sim(MSS as u64 * 5, 10_000_000);
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.trace.messages.len(), 1, "one message completes");
        assert_eq!(sim.trace.packets.len(), 5, "five data packets traced");
        assert_eq!(sim.flows[0].stats.retransmits, 0);
        assert!(sim.flows[0].idle());
        // Delay = queueing + serialization + propagation >= 1 ms prop.
        for p in &sim.trace.packets {
            assert!(p.delay_ns >= 1_000_000, "delay below propagation");
        }
    }

    #[test]
    fn delays_include_serialization_in_order() {
        // At 1.2 Mbps a 1500 B packet serializes in 10 ms >> 1 ms prop:
        // with cwnd=2, packet 1 queues behind packet 0, so its delay is
        // roughly serialization longer.
        let mut sim = two_host_sim(MSS as u64 * 2, 1_200_000);
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.trace.packets.len(), 2);
        let d0 = sim.trace.packets[0].delay_ns;
        let d1 = sim.trace.packets[1].delay_ns;
        assert!(d1 > d0 + 5_000_000, "queueing not visible: {d0} vs {d1}");
    }

    #[test]
    fn mct_covers_submission_to_final_delivery() {
        let mut sim = two_host_sim(MSS as u64 * 10, 10_000_000);
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(5));
        let m = &sim.trace.messages[0];
        let last = sim.trace.packets.iter().map(|p| p.recv_ns).max().unwrap();
        assert_eq!(m.completed_ns, last);
        assert!(m.mct_ns() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = two_host_sim(MSS as u64 * 7, 5_000_000);
            sim.start_app(0, SimTime::ZERO);
            sim.run_until(SimTime::from_secs(5));
            (
                sim.stats.events_processed,
                sim.trace
                    .packets
                    .iter()
                    .map(|p| (p.recv_ns, p.seq))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_telemetry_tracks_occupancy() {
        // Slow link + cwnd burst: the queue must fill and then drain,
        // and the telemetry series must see it happen.
        let mut sim = two_host_sim(MSS as u64 * 30, 1_000_000);
        sim.flows[0] = TcpFlow::new(
            0,
            0,
            1,
            TcpConfig {
                init_cwnd: 30.0,
                ..TcpConfig::default()
            },
        );
        sim.enable_queue_telemetry(0, SimTime::from_millis(10));
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(10));
        let series = sim.telemetry_of(0);
        assert!(
            series.len() > 50,
            "expected many samples, got {}",
            series.len()
        );
        let peak = series.iter().map(|s| s.queue_len).max().unwrap();
        assert!(peak >= 10, "burst should build a queue, peak {peak}");
        assert_eq!(series.last().unwrap().queue_len, 0, "queue drains");
        // Timestamps strictly increase by the interval.
        assert!(series
            .windows(2)
            .all(|w| w[1].t_ns == w[0].t_ns + 10_000_000));
        // Untapped links report nothing.
        assert!(sim.telemetry_of(1).is_empty());
    }

    #[test]
    fn lossy_link_forces_retransmissions_but_delivers() {
        let mut sim = two_host_sim(MSS as u64 * 20, 10_000_000);
        sim.links[0].cfg.loss_prob = 0.2; // forward path drops 20%
        sim.start_app(0, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.trace.messages.len(), 1, "reliability despite loss");
        assert!(sim.flows[0].stats.retransmits > 0);
        assert_eq!(sim.trace.packets.len(), 20, "each seq traced exactly once");
    }
}
