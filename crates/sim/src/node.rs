//! Nodes (hosts and switches) and static routing.

use crate::packet::{LinkId, NodeId};

/// What a node is. Hosts terminate flows; switches only forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Host,
    Switch,
}

/// A network node with a static next-hop table (computed once from the
/// topology by BFS; the paper's networks are static).
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    pub name: String,
    /// `routes[dst]` = link to forward on for packets to `dst`.
    routes: Vec<Option<LinkId>>,
}

impl Node {
    pub fn new(id: NodeId, kind: NodeKind, name: impl Into<String>) -> Self {
        Node {
            id,
            kind,
            name: name.into(),
            routes: Vec::new(),
        }
    }

    /// Install the full next-hop table.
    pub fn set_routes(&mut self, routes: Vec<Option<LinkId>>) {
        self.routes = routes;
    }

    /// Next-hop link toward `dst`. Panics on unroutable destinations —
    /// a static topology with unreachable pairs is a builder bug, not a
    /// runtime condition.
    pub fn route(&self, dst: NodeId) -> LinkId {
        self.routes
            .get(dst)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("node {} ({}) has no route to {dst}", self.id, self.name))
    }

    /// Whether a route to `dst` exists.
    pub fn has_route(&self, dst: NodeId) -> bool {
        matches!(self.routes.get(dst), Some(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_lookup() {
        let mut n = Node::new(0, NodeKind::Switch, "sw0");
        n.set_routes(vec![None, Some(3), Some(7)]);
        assert_eq!(n.route(1), 3);
        assert_eq!(n.route(2), 7);
        assert!(n.has_route(1));
        assert!(!n.has_route(0));
        assert!(!n.has_route(99));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_is_a_builder_bug() {
        let mut n = Node::new(0, NodeKind::Host, "h0");
        n.set_routes(vec![None]);
        n.route(0);
    }
}
