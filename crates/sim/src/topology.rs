//! Topology construction and static shortest-path routing.

use crate::link::{Link, LinkConfig};
use crate::node::{Node, NodeKind};
use crate::packet::{LinkId, NodeId};
use std::collections::VecDeque;

/// Incremental builder for hosts, switches, and links; computes BFS
/// next-hop tables when finished.
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an end host.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::new(id, NodeKind::Host, name));
        id
    }

    /// Add a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::new(id, NodeKind::Switch, name));
        id
    }

    /// Add a unidirectional link `a -> b`.
    pub fn link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert_ne!(a, b, "self-links are not allowed");
        let id = self.links.len();
        self.links.push(Link::new(a, b, cfg));
        id
    }

    /// Add a symmetric pair of links with identical parameters.
    /// Returns `(a->b, b->a)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.link(a, b, cfg), self.link(b, a, cfg))
    }

    /// Asymmetric convenience: distinct configs per direction.
    pub fn connect_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab: LinkConfig,
        ba: LinkConfig,
    ) -> (LinkId, LinkId) {
        (self.link(a, b, ab), self.link(b, a, ba))
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Compute next-hop tables (BFS shortest hop count, deterministic
    /// tie-break by link insertion order) and return the parts.
    pub fn build(mut self) -> (Vec<Node>, Vec<Link>) {
        let n = self.nodes.len();
        // adjacency_in[v] = links arriving at v (for reverse BFS).
        let mut adjacency_in: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for (lid, l) in self.links.iter().enumerate() {
            adjacency_in[l.to].push(lid);
        }
        // For each destination, BFS backwards assigning next hops.
        let mut tables: Vec<Vec<Option<LinkId>>> = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &lid in &adjacency_in[v] {
                    let u = self.links[lid].from;
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        tables[u][dst] = Some(lid);
                        q.push_back(u);
                    }
                }
            }
        }
        for (node, table) in self.nodes.iter_mut().zip(tables) {
            node.set_routes(table);
        }
        (self.nodes, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig::lan()
    }

    #[test]
    fn line_topology_routes_through_middle() {
        // h0 - sw - h1
        let mut t = TopologyBuilder::new();
        let h0 = t.add_host("h0");
        let sw = t.add_switch("sw");
        let h1 = t.add_host("h1");
        let (l0, _) = t.connect(h0, sw, cfg());
        let (l2, _) = t.connect(sw, h1, cfg());
        let (nodes, links) = t.build();
        assert_eq!(nodes[h0].route(h1), l0);
        assert_eq!(nodes[sw].route(h1), l2);
        assert_eq!(links[nodes[h1].route(h0)].to, sw);
    }

    #[test]
    fn shortest_path_wins_over_longer() {
        // Square with a diagonal: 0-1, 1-3, 0-2, 2-3 and direct 0-3.
        let mut t = TopologyBuilder::new();
        let n0 = t.add_switch("0");
        let n1 = t.add_switch("1");
        let n2 = t.add_switch("2");
        let n3 = t.add_switch("3");
        t.connect(n0, n1, cfg());
        t.connect(n1, n3, cfg());
        t.connect(n2, n3, cfg());
        t.connect(n0, n2, cfg());
        let (direct, _) = t.connect(n0, n3, cfg());
        let (nodes, _) = t.build();
        assert_eq!(nodes[n0].route(n3), direct, "one hop beats two");
    }

    #[test]
    fn unreachable_pairs_have_no_route() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        let c = t.add_host("c");
        t.connect(a, b, cfg());
        let (nodes, _) = t.build();
        assert!(nodes[a].has_route(b));
        assert!(!nodes[a].has_route(c));
        assert!(!nodes[c].has_route(a));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_links() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        t.link(a, a, cfg());
    }

    #[test]
    fn routes_are_deterministic_under_ties() {
        // Two equal-length paths 0->1->3 and 0->2->3: the first-inserted
        // link must win, every time.
        let build = || {
            let mut t = TopologyBuilder::new();
            let n0 = t.add_switch("0");
            let n1 = t.add_switch("1");
            let n2 = t.add_switch("2");
            let n3 = t.add_switch("3");
            t.connect(n0, n1, cfg());
            t.connect(n0, n2, cfg());
            t.connect(n1, n3, cfg());
            t.connect(n2, n3, cfg());
            let (nodes, _) = t.build();
            nodes[n0].route(n3)
        };
        assert_eq!(build(), build());
    }
}
