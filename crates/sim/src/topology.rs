//! Topology construction and static shortest-path routing.

use crate::link::{Link, LinkConfig};
use crate::node::{Node, NodeKind};
use crate::packet::{LinkId, NodeId};
use std::collections::VecDeque;

/// Incremental builder for hosts, switches, and links; computes BFS
/// next-hop tables when finished.
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an end host.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::new(id, NodeKind::Host, name));
        id
    }

    /// Add a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::new(id, NodeKind::Switch, name));
        id
    }

    /// Add a unidirectional link `a -> b`.
    pub fn link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert_ne!(a, b, "self-links are not allowed");
        let id = self.links.len();
        self.links.push(Link::new(a, b, cfg));
        id
    }

    /// Add a symmetric pair of links with identical parameters.
    /// Returns `(a->b, b->a)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.link(a, b, cfg), self.link(b, a, cfg))
    }

    /// Asymmetric convenience: distinct configs per direction.
    pub fn connect_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab: LinkConfig,
        ba: LinkConfig,
    ) -> (LinkId, LinkId) {
        (self.link(a, b, ab), self.link(b, a, ba))
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (unidirectional) links added so far.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Add a chain of `n` switches connected consecutively with
    /// symmetric `cfg` links (the "parking lot" backbone). Returns the
    /// switch ids in chain order.
    pub fn chain(&mut self, n: usize, cfg: LinkConfig) -> Vec<NodeId> {
        assert!(n >= 2, "a chain needs at least two switches");
        let sw: Vec<NodeId> = (0..n)
            .map(|i| self.add_switch(format!("chain{i}")))
            .collect();
        for w in sw.windows(2) {
            self.connect(w[0], w[1], cfg);
        }
        sw
    }

    /// Add a two-tier leaf-spine fabric: every leaf switch connects to
    /// every spine switch with symmetric `cfg` links. Returns
    /// `(leaves, spines)`.
    ///
    /// Per-leaf link insertion order is *rotated* (leaf `j` connects to
    /// spines `j % s, (j+1) % s, ...`), so BFS tie-breaking — which
    /// prefers the first-inserted link — deterministically spreads
    /// traffic toward different leaves across different spines instead
    /// of collapsing everything onto spine 0.
    pub fn leaf_spine(
        &mut self,
        leaves: usize,
        spines: usize,
        cfg: LinkConfig,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(leaves >= 2, "a leaf-spine fabric needs at least two leaves");
        assert!(spines >= 1, "a leaf-spine fabric needs at least one spine");
        let leaf_ids: Vec<NodeId> = (0..leaves)
            .map(|i| self.add_switch(format!("leaf{i}")))
            .collect();
        let spine_ids: Vec<NodeId> = (0..spines)
            .map(|i| self.add_switch(format!("spine{i}")))
            .collect();
        for (j, &leaf) in leaf_ids.iter().enumerate() {
            for k in 0..spines {
                let spine = spine_ids[(j + k) % spines];
                self.connect(leaf, spine, cfg);
            }
        }
        (leaf_ids, spine_ids)
    }

    /// Compute next-hop tables (BFS shortest hop count, deterministic
    /// tie-break by link insertion order) and return the parts.
    pub fn build(mut self) -> (Vec<Node>, Vec<Link>) {
        let n = self.nodes.len();
        // adjacency_in[v] = links arriving at v (for reverse BFS).
        let mut adjacency_in: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for (lid, l) in self.links.iter().enumerate() {
            adjacency_in[l.to].push(lid);
        }
        // For each destination, BFS backwards assigning next hops.
        let mut tables: Vec<Vec<Option<LinkId>>> = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &lid in &adjacency_in[v] {
                    let u = self.links[lid].from;
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        tables[u][dst] = Some(lid);
                        q.push_back(u);
                    }
                }
            }
        }
        for (node, table) in self.nodes.iter_mut().zip(tables) {
            node.set_routes(table);
        }
        (self.nodes, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig::lan()
    }

    #[test]
    fn line_topology_routes_through_middle() {
        // h0 - sw - h1
        let mut t = TopologyBuilder::new();
        let h0 = t.add_host("h0");
        let sw = t.add_switch("sw");
        let h1 = t.add_host("h1");
        let (l0, _) = t.connect(h0, sw, cfg());
        let (l2, _) = t.connect(sw, h1, cfg());
        let (nodes, links) = t.build();
        assert_eq!(nodes[h0].route(h1), l0);
        assert_eq!(nodes[sw].route(h1), l2);
        assert_eq!(links[nodes[h1].route(h0)].to, sw);
    }

    #[test]
    fn shortest_path_wins_over_longer() {
        // Square with a diagonal: 0-1, 1-3, 0-2, 2-3 and direct 0-3.
        let mut t = TopologyBuilder::new();
        let n0 = t.add_switch("0");
        let n1 = t.add_switch("1");
        let n2 = t.add_switch("2");
        let n3 = t.add_switch("3");
        t.connect(n0, n1, cfg());
        t.connect(n1, n3, cfg());
        t.connect(n2, n3, cfg());
        t.connect(n0, n2, cfg());
        let (direct, _) = t.connect(n0, n3, cfg());
        let (nodes, _) = t.build();
        assert_eq!(nodes[n0].route(n3), direct, "one hop beats two");
    }

    #[test]
    fn unreachable_pairs_have_no_route() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        let c = t.add_host("c");
        t.connect(a, b, cfg());
        let (nodes, _) = t.build();
        assert!(nodes[a].has_route(b));
        assert!(!nodes[a].has_route(c));
        assert!(!nodes[c].has_route(a));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_links() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        t.link(a, a, cfg());
    }

    #[test]
    fn chain_routes_hop_by_hop() {
        let mut t = TopologyBuilder::new();
        let sw = t.chain(5, cfg());
        let h = t.add_host("h");
        t.connect(sw[4], h, cfg());
        let src = t.add_host("src");
        t.connect(src, sw[0], cfg());
        let (nodes, links) = t.build();
        // src -> sw0 -> sw1 -> ... -> sw4 -> h: walk the route table.
        let mut at = src;
        let mut hops = 0;
        while at != h {
            at = links[nodes[at].route(h)].to;
            hops += 1;
            assert!(hops < 10, "routing loop");
        }
        assert_eq!(hops, 6, "src->sw0, 4 chain hops, sw4->h = 6 links");
    }

    #[test]
    fn leaf_spine_spreads_destinations_across_spines() {
        let mut t = TopologyBuilder::new();
        let (leaves, spines) = t.leaf_spine(4, 2, cfg());
        // One host per leaf so routes terminate at hosts.
        let hosts: Vec<_> = (0..4)
            .map(|i| {
                let h = t.add_host(format!("h{i}"));
                t.connect(leaves[i], h, cfg());
                h
            })
            .collect();
        let (nodes, links) = t.build();
        // From leaf 0, traffic toward different remote leaves must not
        // all share one spine.
        let via: Vec<NodeId> = (1..4)
            .map(|j| links[nodes[leaves[0]].route(hosts[j])].to)
            .collect();
        assert!(
            via.iter().any(|v| *v != via[0]),
            "all destinations collapsed onto one spine: {via:?}"
        );
        for v in &via {
            assert!(spines.contains(v), "next hop {v} is not a spine");
        }
    }

    #[test]
    fn routes_are_deterministic_under_ties() {
        // Two equal-length paths 0->1->3 and 0->2->3: the first-inserted
        // link must win, every time.
        let build = || {
            let mut t = TopologyBuilder::new();
            let n0 = t.add_switch("0");
            let n1 = t.add_switch("1");
            let n2 = t.add_switch("2");
            let n3 = t.add_switch("3");
            t.connect(n0, n1, cfg());
            t.connect(n0, n2, cfg());
            t.connect(n1, n3, cfg());
            t.connect(n2, n3, cfg());
            let (nodes, _) = t.build();
            nodes[n0].route(n3)
        };
        assert_eq!(build(), build());
    }
}
