//! Simplified TCP Reno, as an explicit state machine.
//!
//! Implements the mechanisms the paper's dynamics depend on — window-based
//! congestion control (slow start + AIMD), cumulative ACKs, duplicate-ACK
//! fast retransmit, and RTO with Karn's rule and exponential backoff —
//! at packet granularity (one sequence number per MSS chunk).
//!
//! Omitted (DESIGN.md §7): SACK, byte-level sequence space, full Reno
//! fast-recovery window inflation, delayed ACKs, Nagle, window scaling.
//!
//! Following the smoltcp philosophy, the flow never touches the network:
//! every entry point is a pure state transition returning the packets to
//! transmit and the timer to arm. The simulator owns scheduling.

use crate::packet::{FlowId, MsgId, NodeId, Packet, PacketKind, MSS};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial congestion window (packets).
    pub init_cwnd: f64,
    /// Initial slow-start threshold (packets).
    pub init_ssthresh: f64,
    /// RTO before any RTT sample exists.
    pub rto_init: SimTime,
    pub rto_min: SimTime,
    pub rto_max: SimTime,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            init_cwnd: 2.0,
            init_ssthresh: 64.0,
            rto_init: SimTime::from_millis(200),
            rto_min: SimTime::from_millis(10),
            rto_max: SimTime::from_secs(4),
        }
    }
}

/// An MSS-or-smaller application chunk awaiting or in transmission.
#[derive(Debug, Clone)]
pub struct Chunk {
    pub payload: u32,
    pub msg_id: MsgId,
    pub msg_size: u64,
    pub msg_last: bool,
    /// When the application submitted the owning message.
    pub submitted: SimTime,
}

#[derive(Debug, Clone)]
struct Sent {
    chunk: Chunk,
    last_sent: SimTime,
    retransmitted: bool,
}

/// Request to (re)arm the retransmission timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerArm {
    pub delay: SimTime,
    pub epoch: u64,
}

/// Sender-side result: packets to hand to routing + timer action.
#[derive(Debug, Default)]
pub struct SendResult {
    pub packets: Vec<Packet>,
    pub timer: Option<TimerArm>,
}

/// A message that finished delivering in order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedMsg {
    pub msg_id: MsgId,
    pub msg_size: u64,
    pub submitted: SimTime,
}

/// Receiver-side result of processing one data packet.
#[derive(Debug)]
pub struct RecvResult {
    /// Cumulative acknowledgment to send back.
    pub ack: Packet,
    /// True if this packet's sequence number was seen for the first time
    /// (the simulator traces it in that case).
    pub newly_received: bool,
    /// Messages completed by this arrival (in-order delivery of their
    /// final chunk).
    pub completed: Vec<CompletedMsg>,
}

/// Counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    pub packets_sent: u64,
    pub retransmits: u64,
    pub timeouts: u64,
    pub fast_retransmits: u64,
    pub packets_delivered: u64,
    pub msgs_submitted: u64,
    pub msgs_completed: u64,
}

/// One bidirectional transport association (sender state toward `dst`,
/// receiver state at `dst`). Data flows `src -> dst`; ACKs flow back.
pub struct TcpFlow {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    cfg: TcpConfig,

    // ---- sender ----
    snd_next: u64,
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    backlog: VecDeque<Chunk>,
    in_flight: VecDeque<Sent>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimTime,
    timer_epoch: u64,
    next_msg_id: MsgId,

    // ---- receiver ----
    rcv_next: u64,
    ooo: BTreeMap<u64, Chunk>,

    pub stats: FlowStats,
}

impl TcpFlow {
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, cfg: TcpConfig) -> Self {
        TcpFlow {
            id,
            src,
            dst,
            cfg,
            snd_next: 0,
            snd_una: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: cfg.init_ssthresh,
            dup_acks: 0,
            backlog: VecDeque::new(),
            in_flight: VecDeque::new(),
            srtt: None,
            rttvar: 0.0,
            rto: cfg.rto_init,
            timer_epoch: 0,
            next_msg_id: 0,
            rcv_next: 0,
            ooo: BTreeMap::new(),
            stats: FlowStats::default(),
        }
    }

    /// Congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Packets sent but not yet cumulatively acknowledged.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Application chunks waiting for window space.
    pub fn backlog_chunks(&self) -> usize {
        self.backlog.len()
    }

    /// Smoothed RTT estimate in seconds, if sampled yet.
    pub fn srtt_secs(&self) -> Option<f64> {
        self.srtt
    }

    /// Next sequence number the receiver expects (test/diagnostic).
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }

    /// True when nothing is queued or unacknowledged.
    pub fn idle(&self) -> bool {
        self.backlog.is_empty() && self.in_flight.is_empty()
    }

    // ------------------------------------------------------------------
    // Sender side
    // ------------------------------------------------------------------

    /// Application submits a message of `size_bytes`; it is chunked into
    /// MSS segments and transmission starts as the window allows.
    /// Returns the assigned message id and the send actions.
    pub fn app_submit(&mut self, now: SimTime, size_bytes: u64) -> (MsgId, SendResult) {
        assert!(size_bytes > 0, "empty message");
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.msgs_submitted += 1;
        let mut remaining = size_bytes;
        while remaining > 0 {
            let payload = remaining.min(MSS as u64) as u32;
            remaining -= payload as u64;
            self.backlog.push_back(Chunk {
                payload,
                msg_id,
                msg_size: size_bytes,
                msg_last: remaining == 0,
                submitted: now,
            });
        }
        (msg_id, self.pump(now))
    }

    /// Process a cumulative acknowledgment.
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> SendResult {
        if ack > self.snd_next {
            // Acknowledging unsent data would be a simulator bug.
            panic!(
                "flow {}: ack {ack} beyond snd_next {}",
                self.id, self.snd_next
            );
        }
        if ack > self.snd_una {
            let newly = (ack - self.snd_una) as usize;
            // RTT sample from the oldest acked segment (Karn: skip if it
            // was ever retransmitted).
            if let Some(front) = self.in_flight.front() {
                if !front.retransmitted {
                    let sample = now.saturating_since(front.last_sent).as_secs_f64();
                    self.update_rtt(sample);
                }
            }
            for _ in 0..newly.min(self.in_flight.len()) {
                self.in_flight.pop_front();
            }
            self.snd_una = ack;
            self.dup_acks = 0;
            // Window growth: slow start below ssthresh, else AIMD.
            for _ in 0..newly {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0;
                } else {
                    self.cwnd += 1.0 / self.cwnd;
                }
            }
            return self.pump(now);
        }
        // Duplicate ACK (only meaningful while data is outstanding).
        if !self.in_flight.is_empty() && ack == self.snd_una {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                return self.retransmit_front(now);
            }
        }
        SendResult::default()
    }

    /// Retransmission-timer expiry. Stale epochs are ignored.
    pub fn on_rto(&mut self, now: SimTime, epoch: u64) -> SendResult {
        if epoch != self.timer_epoch || self.in_flight.is_empty() {
            return SendResult::default();
        }
        self.stats.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        // Exponential backoff, clamped.
        self.rto = self.rto.mul_f64(2.0).min(self.cfg.rto_max);
        self.retransmit_front(now)
    }

    fn retransmit_front(&mut self, now: SimTime) -> SendResult {
        let seq = self.snd_una;
        let chunk = {
            let front = self
                .in_flight
                .front_mut()
                .expect("retransmit with empty in-flight");
            front.retransmitted = true;
            front.last_sent = now;
            front.chunk.clone()
        };
        let mut pkt = self.make_packet(seq, &chunk, now);
        pkt.retransmit = true;
        self.stats.retransmits += 1;
        self.stats.packets_sent += 1;
        SendResult {
            packets: vec![pkt],
            timer: Some(self.arm_timer()),
        }
    }

    /// Send as much backlog as the window allows.
    fn pump(&mut self, now: SimTime) -> SendResult {
        let mut packets = Vec::new();
        let window = self.cwnd.floor().max(1.0) as usize;
        while self.in_flight.len() < window {
            let Some(chunk) = self.backlog.pop_front() else {
                break;
            };
            let seq = self.snd_next;
            self.snd_next += 1;
            let pkt = self.make_packet(seq, &chunk, now);
            self.in_flight.push_back(Sent {
                chunk,
                last_sent: now,
                retransmitted: false,
            });
            self.stats.packets_sent += 1;
            packets.push(pkt);
        }
        let timer = if self.in_flight.is_empty() {
            // Nothing outstanding: invalidate any pending timer.
            self.timer_epoch += 1;
            None
        } else if packets.is_empty() {
            None
        } else {
            Some(self.arm_timer())
        };
        SendResult { packets, timer }
    }

    fn arm_timer(&mut self) -> TimerArm {
        self.timer_epoch += 1;
        TimerArm {
            delay: self.rto,
            epoch: self.timer_epoch,
        }
    }

    fn make_packet(&self, seq: u64, chunk: &Chunk, now: SimTime) -> Packet {
        let mut p = Packet::data(
            self.id,
            seq,
            chunk.payload,
            self.src,
            self.dst,
            chunk.msg_id,
            chunk.msg_size,
            chunk.msg_last,
        );
        p.sent_at = now;
        p.msg_submitted = chunk.submitted;
        p
    }

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
        let rto = SimTime::from_secs_f64(self.srtt.unwrap() + 4.0 * self.rttvar);
        self.rto = rto.max(self.cfg.rto_min).min(self.cfg.rto_max);
    }

    // ------------------------------------------------------------------
    // Receiver side
    // ------------------------------------------------------------------

    /// Process an arriving data packet at the receiver.
    pub fn on_data(&mut self, now: SimTime, pkt: &Packet) -> RecvResult {
        assert_eq!(pkt.kind, PacketKind::Data);
        assert_eq!(pkt.flow, self.id);
        let mut completed = Vec::new();
        let newly_received = if pkt.seq < self.rcv_next || self.ooo.contains_key(&pkt.seq) {
            false // duplicate
        } else if pkt.seq == self.rcv_next {
            self.deliver(pkt.chunk_meta(), now, &mut completed);
            // Drain any buffered continuation.
            while let Some(chunk) = self.ooo.remove(&self.rcv_next) {
                self.deliver(chunk, now, &mut completed);
            }
            true
        } else {
            self.ooo.insert(pkt.seq, pkt.chunk_meta());
            true
        };
        if newly_received {
            self.stats.packets_delivered += 1;
        }
        RecvResult {
            ack: Packet::ack(self.id, self.rcv_next, self.dst, self.src),
            newly_received,
            completed,
        }
    }

    fn deliver(&mut self, chunk: Chunk, now: SimTime, completed: &mut Vec<CompletedMsg>) {
        self.rcv_next += 1;
        if chunk.msg_last {
            self.stats.msgs_completed += 1;
            let _ = now; // completion timestamp recorded by the caller
            completed.push(CompletedMsg {
                msg_id: chunk.msg_id,
                msg_size: chunk.msg_size,
                submitted: chunk.submitted,
            });
        }
    }
}

impl Packet {
    /// Receiver-side view of the chunk this data packet carries.
    fn chunk_meta(&self) -> Chunk {
        Chunk {
            payload: self.payload_bytes(),
            msg_id: self.msg_id,
            msg_size: self.msg_size,
            msg_last: self.msg_last,
            submitted: self.msg_submitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> TcpFlow {
        TcpFlow::new(0, 0, 1, TcpConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn submit_chunks_message_into_mss_segments() {
        let mut f = flow();
        let (msg_id, out) = f.app_submit(t(0), MSS as u64 * 3 + 10);
        assert_eq!(msg_id, 0);
        // init_cwnd = 2: two packets leave, two chunks wait.
        assert_eq!(out.packets.len(), 2);
        assert_eq!(f.backlog_chunks(), 2);
        assert_eq!(f.in_flight(), 2);
        assert!(out.timer.is_some());
        // Last chunk carries the remainder and msg_last.
        let (_, out2) = f.app_submit(t(1), 10);
        assert!(out2.packets.is_empty(), "window is full");
    }

    #[test]
    fn cumulative_ack_advances_and_grows_window_slow_start() {
        let mut f = flow();
        let (_, out) = f.app_submit(t(0), MSS as u64 * 10);
        assert_eq!(out.packets.len(), 2);
        let r = f.on_ack(t(10), 2);
        assert_eq!(f.cwnd(), 4.0, "slow start doubles per window");
        assert_eq!(r.packets.len(), 4);
        assert_eq!(f.in_flight(), 4);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut f = flow();
        // Force CA: drop ssthresh to 2.
        f.ssthresh = 2.0;
        f.app_submit(t(0), MSS as u64 * 100);
        let cwnd0 = f.cwnd();
        f.on_ack(t(5), 1);
        let cwnd1 = f.cwnd();
        assert!((cwnd1 - (cwnd0 + 1.0 / cwnd0)).abs() < 1e-9);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut f = flow();
        f.app_submit(t(0), MSS as u64 * 8);
        f.on_ack(t(5), 2); // window now 4, sends more
        let cwnd_before = f.cwnd();
        // Three duplicate ACKs for seq 2.
        assert!(f.on_ack(t(6), 2).packets.is_empty());
        assert!(f.on_ack(t(7), 2).packets.is_empty());
        let r = f.on_ack(t(8), 2);
        assert_eq!(r.packets.len(), 1, "fast retransmit of snd_una");
        assert_eq!(r.packets[0].seq, 2);
        assert!(r.packets[0].retransmit);
        assert!(f.cwnd() < cwnd_before, "multiplicative decrease");
        assert_eq!(f.stats.fast_retransmits, 1);
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut f = flow();
        let (_, out) = f.app_submit(t(0), MSS as u64 * 4);
        let arm = out.timer.unwrap();
        let rto_before = f.rto;
        let r = f.on_rto(t(500), arm.epoch);
        assert_eq!(r.packets.len(), 1);
        assert_eq!(r.packets[0].seq, 0);
        assert_eq!(f.cwnd(), 1.0);
        assert!(f.rto > rto_before, "exponential backoff");
        assert_eq!(f.stats.timeouts, 1);
    }

    #[test]
    fn stale_rto_epochs_are_ignored() {
        let mut f = flow();
        let (_, out) = f.app_submit(t(0), MSS as u64 * 4);
        let arm = out.timer.unwrap();
        // ACK everything outstanding: epoch is invalidated (in-flight
        // drains in two windows).
        let r = f.on_ack(t(5), 2);
        let arm2 = r.timer;
        let r2 = f.on_ack(t(6), 4);
        assert!(r2.packets.is_empty());
        let stale = f.on_rto(t(500), arm.epoch);
        assert!(stale.packets.is_empty(), "stale epoch must be ignored");
        if let Some(a2) = arm2 {
            let stale2 = f.on_rto(t(501), a2.epoch);
            assert!(stale2.packets.is_empty(), "no outstanding data");
        }
        assert_eq!(f.stats.timeouts, 0);
    }

    #[test]
    fn receiver_delivers_in_order_and_acks_cumulatively() {
        let mut snd = flow();
        let (_, out) = snd.app_submit(t(0), MSS as u64 * 2);
        let mut rcv = flow();
        let r0 = rcv.on_data(t(1), &out.packets[0]);
        assert_eq!(r0.ack.ack, 1);
        assert!(r0.newly_received);
        let r1 = rcv.on_data(t(2), &out.packets[1]);
        assert_eq!(r1.ack.ack, 2);
        assert_eq!(r1.completed.len(), 1, "two-chunk message completes");
        assert_eq!(r1.completed[0].msg_size, MSS as u64 * 2);
    }

    #[test]
    fn out_of_order_arrival_is_buffered_then_drained() {
        let mut snd = flow();
        snd.cwnd = 8.0;
        let (_, out) = snd.app_submit(t(0), MSS as u64 * 3);
        assert_eq!(out.packets.len(), 3);
        let mut rcv = flow();
        // Deliver 2, 0, 1.
        let r2 = rcv.on_data(t(1), &out.packets[2]);
        assert_eq!(r2.ack.ack, 0, "hole: still expecting 0");
        assert!(r2.newly_received);
        let r0 = rcv.on_data(t(2), &out.packets[0]);
        assert_eq!(r0.ack.ack, 1);
        let r1 = rcv.on_data(t(3), &out.packets[1]);
        assert_eq!(r1.ack.ack, 3, "drains buffered seq 2");
        assert_eq!(r1.completed.len(), 1);
    }

    #[test]
    fn duplicate_data_is_not_double_delivered() {
        let mut snd = flow();
        let (_, out) = snd.app_submit(t(0), 500);
        let mut rcv = flow();
        let r = rcv.on_data(t(1), &out.packets[0]);
        assert!(r.newly_received);
        assert_eq!(r.completed.len(), 1);
        let rdup = rcv.on_data(t(2), &out.packets[0]);
        assert!(!rdup.newly_received);
        assert!(rdup.completed.is_empty());
        assert_eq!(rcv.stats.packets_delivered, 1);
        assert_eq!(rdup.ack.ack, 1, "dup still acked cumulatively");
    }

    #[test]
    fn rtt_estimator_sets_rto() {
        let mut f = flow();
        f.app_submit(t(0), MSS as u64);
        f.on_ack(t(50), 1);
        let srtt = f.srtt_secs().expect("sampled");
        assert!((srtt - 0.05).abs() < 1e-9);
        // rto = srtt + 4*rttvar = 0.05 + 4*0.025 = 0.15
        assert_eq!(f.rto, SimTime::from_millis(150));
    }

    #[test]
    fn karn_skips_retransmitted_samples() {
        let mut f = flow();
        let (_, out) = f.app_submit(t(0), MSS as u64 * 2);
        let arm = out.timer.unwrap();
        f.on_rto(t(400), arm.epoch); // retransmit seq 0
        f.on_ack(t(800), 1); // covers a retransmitted segment
        assert!(f.srtt_secs().is_none(), "no sample from retransmits");
    }

    #[test]
    fn ack_monotonicity_invariant() {
        // Receiver ACKs never decrease, whatever the arrival order.
        let mut snd = flow();
        snd.cwnd = 16.0;
        let (_, out) = snd.app_submit(t(0), MSS as u64 * 6);
        let mut rcv = flow();
        let order = [5usize, 3, 0, 4, 1, 2];
        let mut last_ack = 0;
        for (i, &idx) in order.iter().enumerate() {
            let r = rcv.on_data(t(i as u64 + 1), &out.packets[idx]);
            assert!(r.ack.ack >= last_ack, "ACK went backwards");
            last_ack = r.ack.ack;
        }
        assert_eq!(last_ack, 6);
    }

    #[test]
    #[should_panic(expected = "beyond snd_next")]
    fn ack_beyond_sent_data_is_a_bug() {
        let mut f = flow();
        f.app_submit(t(0), 500);
        f.on_ack(t(1), 99);
    }
}
