//! # ntt-sim
//!
//! A deterministic packet-level discrete-event network simulator — the
//! ns-3 substitute for the Network Traffic Transformer reproduction
//! ("A New Hope for Network Model Generalization", HotNets '22).
//!
//! ## What is implemented
//! * nanosecond event queue with deterministic tie-breaking
//! * store-and-forward links: rate, propagation delay, drop-tail FIFO
//!   queues sized in packets, optional random-loss fault injection
//! * static BFS shortest-path routing over arbitrary topologies
//! * simplified TCP Reno (slow start, AIMD, dup-ACK fast retransmit,
//!   RTO with Karn's rule + exponential backoff), packet-granularity
//!   sequence numbers
//! * message-based sender apps (Poisson arrivals, heavy-tailed
//!   Homa-like sizes) and CBR-over-TCP cross-traffic
//! * the paper's Fig. 4 dataset scenarios (pre-training, fine-tuning
//!   case 1 and case 2) and receiver-side trace collection
//! * parameterized topology families beyond the paper's fixed setups:
//!   [`Scenario::ParkingLot`] (a chain with a configurable number of
//!   bottleneck hops, one receiver per hop) and [`Scenario::LeafSpine`]
//!   (a two-tier fabric with deterministic spine spreading and
//!   destination-skewed cross-traffic). These feed the scenario grids
//!   of the `ntt-fleet` parallel dataset engine; the
//!   [`TopologyBuilder::chain`] and [`TopologyBuilder::leaf_spine`]
//!   helpers build the underlying graphs for custom setups.
//!
//! ## What is deliberately omitted (DESIGN.md §7)
//! SACK, delayed ACKs, Nagle, window scaling, ECN, byte-granularity
//! sequence space, IP headers/addressing (the paper uses a receiver-ID
//! proxy instead).
//!
//! ```
//! use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
//!
//! let cfg = ScenarioConfig::tiny(42);
//! let trace = run(Scenario::Pretrain, &cfg);
//! assert!(trace.packets.len() > 100);
//! // Every record carries the four NTT input features:
//! let p = &trace.packets[0];
//! let _ = (p.recv_ns, p.size_bytes, p.receiver_group, p.delay_ns);
//! ```

pub mod app;
pub mod event;
pub mod link;
pub mod node;
pub mod packet;
pub mod persist;
pub mod scenarios;
#[allow(clippy::module_inception)] // the crate-defining module shares the crate name by convention
pub mod sim;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;
pub mod workload;

pub use app::App;
pub use event::{Event, EventQueue};
pub use link::{Enqueue, Link, LinkConfig, LinkStats};
pub use node::{Node, NodeKind};
pub use packet::{
    AppId, FlowId, LinkId, MsgId, NodeId, Packet, PacketKind, ACK_BYTES, HEADER_BYTES, MSS,
};
pub use persist::{load_trace, save_trace};
pub use scenarios::{RunTrace, Scenario, ScenarioConfig};
pub use sim::{SimStats, Simulator};
pub use tcp::{TcpConfig, TcpFlow};
pub use time::SimTime;
pub use topology::TopologyBuilder;
pub use trace::{MessageRecord, PacketRecord, QueueSample, TraceCollector};
