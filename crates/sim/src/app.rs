//! Traffic-generating applications.
//!
//! Two kinds, matching Fig. 4:
//! * [`App::MessageSource`] — the paper's foreground senders: Poisson
//!   message arrivals with heavy-tailed sizes, tuned to an average
//!   offered bit rate (1 Mbps each in the pre-training setup).
//! * [`App::CbrSource`] — cross-traffic: app-limited TCP offering a
//!   constant bit rate (the paper's "20 Mbps of TCP flows").

use crate::packet::FlowId;
use crate::time::SimTime;
use crate::workload::{exp_interarrival, MsgSizeDist};
use rand::rngs::StdRng;

/// What an application does when its wake event fires.
#[derive(Debug, PartialEq)]
pub struct AppAction {
    /// Submit a message of this many bytes to the flow (None = idle tick).
    pub submit_bytes: Option<u64>,
    /// When to wake again (None = app finished).
    pub next_wake: Option<SimTime>,
}

/// A traffic source attached to one flow.
pub enum App {
    /// Poisson arrivals of heavy-tailed messages at a target mean rate.
    MessageSource {
        flow: FlowId,
        dist: MsgSizeDist,
        /// Mean seconds between message arrivals.
        mean_gap_secs: f64,
        /// Stop generating after this time (messages in flight still drain).
        active_until: SimTime,
    },
    /// Constant-bit-rate chunks (app-limited TCP cross-traffic).
    CbrSource {
        flow: FlowId,
        chunk_bytes: u64,
        interval: SimTime,
        active_until: SimTime,
    },
}

impl App {
    /// Build a message source offering `rate_bps` on average.
    pub fn message_source(
        flow: FlowId,
        dist: MsgSizeDist,
        rate_bps: f64,
        active_until: SimTime,
    ) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        let mean_gap_secs = dist.mean_bytes() * 8.0 / rate_bps;
        App::MessageSource {
            flow,
            dist,
            mean_gap_secs,
            active_until,
        }
    }

    /// Build a CBR source offering `rate_bps` in `chunk_bytes` pieces.
    pub fn cbr_source(
        flow: FlowId,
        chunk_bytes: u64,
        rate_bps: f64,
        active_until: SimTime,
    ) -> Self {
        assert!(rate_bps > 0.0 && chunk_bytes > 0);
        let interval = SimTime::from_secs_f64(chunk_bytes as f64 * 8.0 / rate_bps);
        App::CbrSource {
            flow,
            chunk_bytes,
            interval,
            active_until,
        }
    }

    /// The flow this app feeds.
    pub fn flow(&self) -> FlowId {
        match self {
            App::MessageSource { flow, .. } | App::CbrSource { flow, .. } => *flow,
        }
    }

    /// Handle a wake event at `now`, drawing randomness from `rng`.
    pub fn on_wake(&self, now: SimTime, rng: &mut StdRng) -> AppAction {
        match self {
            App::MessageSource {
                dist,
                mean_gap_secs,
                active_until,
                ..
            } => {
                if now > *active_until {
                    return AppAction {
                        submit_bytes: None,
                        next_wake: None,
                    };
                }
                let size = dist.sample(rng);
                let gap = exp_interarrival(rng, *mean_gap_secs);
                AppAction {
                    submit_bytes: Some(size),
                    next_wake: Some(now + SimTime::from_secs_f64(gap)),
                }
            }
            App::CbrSource {
                chunk_bytes,
                interval,
                active_until,
                ..
            } => {
                if now > *active_until {
                    return AppAction {
                        submit_bytes: None,
                        next_wake: None,
                    };
                }
                AppAction {
                    submit_bytes: Some(*chunk_bytes),
                    next_wake: Some(now + *interval),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn message_source_rate_tuning() {
        // Fixed 12500-byte messages at 1 Mbps -> one message per 0.1 s.
        let app = App::message_source(
            0,
            MsgSizeDist::Fixed { bytes: 12_500 },
            1_000_000.0,
            SimTime::from_secs(60),
        );
        match app {
            App::MessageSource { mean_gap_secs, .. } => {
                assert!((mean_gap_secs - 0.1).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn message_source_stops_after_deadline() {
        let app = App::message_source(
            0,
            MsgSizeDist::Fixed { bytes: 1000 },
            1e6,
            SimTime::from_secs(1),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let act = app.on_wake(SimTime::from_secs(2), &mut rng);
        assert_eq!(act.submit_bytes, None);
        assert_eq!(act.next_wake, None);
        let act2 = app.on_wake(SimTime::from_millis(500), &mut rng);
        assert!(act2.submit_bytes.is_some());
        assert!(act2.next_wake.unwrap() > SimTime::from_millis(500));
    }

    #[test]
    fn cbr_interval_matches_rate() {
        // 1446 bytes at ~11.568 Mbps -> exactly 1 ms.
        let app = App::cbr_source(1, 1446, 11_568_000.0, SimTime::from_secs(10));
        match app {
            App::CbrSource { interval, .. } => assert_eq!(interval, SimTime::from_millis(1)),
            _ => unreachable!(),
        }
        let mut rng = StdRng::seed_from_u64(0);
        let act = app.on_wake(SimTime::from_secs(1), &mut rng);
        assert_eq!(act.submit_bytes, Some(1446));
        assert_eq!(
            act.next_wake,
            Some(SimTime::from_secs(1) + SimTime::from_millis(1))
        );
    }

    #[test]
    fn cbr_offered_rate_integrates_correctly() {
        let rate = 20_000_000.0; // 20 Mbps
        let app = App::cbr_source(2, 1446, rate, SimTime::from_secs(100));
        let mut rng = StdRng::seed_from_u64(1);
        let mut now = SimTime::ZERO;
        let mut bytes = 0u64;
        while now < SimTime::from_secs(1) {
            let act = app.on_wake(now, &mut rng);
            bytes += act.submit_bytes.unwrap();
            now = act.next_wake.unwrap();
        }
        let bps = bytes as f64 * 8.0;
        assert!((bps - rate).abs() / rate < 0.01, "offered {bps}");
    }
}
