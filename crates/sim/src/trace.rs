//! Trace collection: the datasets of Fig. 4.
//!
//! The collector records one [`PacketRecord`] per *foreground* data
//! packet delivered to a receiver (the paper's fine-tuning datasets "do
//! not contain the cross-traffic packets, only those from the senders"),
//! plus one [`MessageRecord`] per completed message for the MCT task.

use crate::packet::{FlowId, MsgId, NodeId};

/// One delivered data packet, as a receiver-side observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Arrival time at the receiver (ns).
    pub recv_ns: u64,
    /// Time this copy left the sender (ns).
    pub sent_ns: u64,
    /// End-to-end one-way delay of the delivered copy (ns).
    pub delay_ns: u64,
    /// Wire size in bytes.
    pub size_bytes: u32,
    pub flow: FlowId,
    pub sender: NodeId,
    pub receiver: NodeId,
    /// Small dense receiver index — the paper's "receiver ID" feature
    /// (an IP-address proxy).
    pub receiver_group: u32,
    pub seq: u64,
    pub msg_id: MsgId,
    pub msg_size: u64,
    /// True if this packet is the last chunk of its message.
    pub msg_last: bool,
    /// True if the delivered copy was a retransmission.
    pub retransmit: bool,
}

/// One completed message (for message-completion-time prediction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageRecord {
    pub flow: FlowId,
    pub msg_id: MsgId,
    pub size_bytes: u64,
    /// When the application handed the message to the transport (ns).
    pub submitted_ns: u64,
    /// When the final chunk was delivered in order (ns).
    pub completed_ns: u64,
}

impl MessageRecord {
    /// Message completion time in nanoseconds.
    pub fn mct_ns(&self) -> u64 {
        self.completed_ns - self.submitted_ns
    }
}

/// One queue-occupancy telemetry sample (§5 extension: "we may collect
/// telemetry data like packet drops or buffer occupancy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Sample time (ns).
    pub t_ns: u64,
    /// Waiting-queue length at that instant (packets).
    pub queue_len: usize,
    /// Cumulative drops (overflow + fault) on the link so far.
    pub dropped: u64,
}

/// Receiver-side trace accumulator.
#[derive(Default)]
pub struct TraceCollector {
    /// `record[flow]` — whether this flow's packets are traced
    /// (foreground senders yes, cross-traffic no).
    recorded: Vec<bool>,
    /// Dense receiver index per node (u32::MAX = not a traced receiver).
    receiver_group: Vec<u32>,
    pub packets: Vec<PacketRecord>,
    pub messages: Vec<MessageRecord>,
}

impl TraceCollector {
    pub fn new(n_flows: usize, n_nodes: usize) -> Self {
        TraceCollector {
            recorded: vec![false; n_flows],
            receiver_group: vec![u32::MAX; n_nodes],
            packets: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Mark a flow as foreground (traced).
    pub fn record_flow(&mut self, flow: FlowId) {
        if flow >= self.recorded.len() {
            self.recorded.resize(flow + 1, false);
        }
        self.recorded[flow] = true;
    }

    /// Assign the dense receiver index for a node.
    pub fn set_receiver_group(&mut self, node: NodeId, group: u32) {
        if node >= self.receiver_group.len() {
            self.receiver_group.resize(node + 1, u32::MAX);
        }
        self.receiver_group[node] = group;
    }

    /// Whether `flow` is traced.
    pub fn is_recorded(&self, flow: FlowId) -> bool {
        self.recorded.get(flow).copied().unwrap_or(false)
    }

    /// Dense receiver index of `node` (0 if unset — single-receiver
    /// topologies need no explicit assignment).
    pub fn group_of(&self, node: NodeId) -> u32 {
        match self.receiver_group.get(node).copied() {
            Some(g) if g != u32::MAX => g,
            _ => 0,
        }
    }

    /// Record a delivered foreground packet (no-op for untraced flows).
    #[allow(clippy::too_many_arguments)] // flat constructor mirrors the on-wire record layout
    pub fn on_packet(&mut self, rec: PacketRecord) {
        if self.is_recorded(rec.flow) {
            self.packets.push(rec);
        }
    }

    /// Record a completed foreground message.
    pub fn on_message(&mut self, rec: MessageRecord) {
        if self.is_recorded(rec.flow) {
            self.messages.push(rec);
        }
    }

    /// Mean delivered delay in seconds (diagnostic).
    pub fn mean_delay_secs(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets.iter().map(|p| p.delay_ns as f64).sum::<f64>()
            / self.packets.len() as f64
            / 1e9
    }

    /// Delay percentile in seconds (p in [0, 100]).
    pub fn delay_percentile_secs(&self, p: f64) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let mut d: Vec<u64> = self.packets.iter().map(|r| r.delay_ns).collect();
        d.sort_unstable();
        let idx = ((p / 100.0) * (d.len() - 1) as f64).round() as usize;
        d[idx.min(d.len() - 1)] as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: FlowId, delay_ns: u64) -> PacketRecord {
        PacketRecord {
            recv_ns: 1000 + delay_ns,
            sent_ns: 1000,
            delay_ns,
            size_bytes: 1500,
            flow,
            sender: 0,
            receiver: 1,
            receiver_group: 0,
            seq: 0,
            msg_id: 0,
            msg_size: 1500,
            msg_last: true,
            retransmit: false,
        }
    }

    #[test]
    fn only_recorded_flows_are_traced() {
        let mut t = TraceCollector::new(2, 2);
        t.record_flow(0);
        t.on_packet(rec(0, 10));
        t.on_packet(rec(1, 10)); // cross traffic: ignored
        assert_eq!(t.packets.len(), 1);
        assert!(t.is_recorded(0));
        assert!(!t.is_recorded(1));
    }

    #[test]
    fn message_records_compute_mct() {
        let m = MessageRecord {
            flow: 0,
            msg_id: 3,
            size_bytes: 5000,
            submitted_ns: 1_000,
            completed_ns: 51_000,
        };
        assert_eq!(m.mct_ns(), 50_000);
    }

    #[test]
    fn receiver_groups_default_to_zero() {
        let mut t = TraceCollector::new(1, 3);
        assert_eq!(t.group_of(2), 0);
        t.set_receiver_group(2, 5);
        assert_eq!(t.group_of(2), 5);
        assert_eq!(t.group_of(1), 0);
    }

    #[test]
    fn delay_statistics() {
        let mut t = TraceCollector::new(1, 1);
        t.record_flow(0);
        for d in [10_000_000u64, 20_000_000, 30_000_000] {
            t.on_packet(rec(0, d));
        }
        assert!((t.mean_delay_secs() - 0.02).abs() < 1e-9);
        assert!((t.delay_percentile_secs(0.0) - 0.01).abs() < 1e-9);
        assert!((t.delay_percentile_secs(100.0) - 0.03).abs() < 1e-9);
    }

    #[test]
    fn grows_for_late_registrations() {
        let mut t = TraceCollector::new(0, 0);
        t.record_flow(5);
        t.set_receiver_group(7, 2);
        assert!(t.is_recorded(5));
        assert_eq!(t.group_of(7), 2);
    }
}
