//! Message-size and inter-arrival distributions.
//!
//! The paper's senders "generate 1 Mbps of messages each, following
//! real-world traffic distributions [26]" (Homa, SIGCOMM '18). The
//! published Homa workloads are heavy-tailed: most messages are a single
//! packet, a small fraction are megabytes and dominate the byte count.
//! [`MsgSizeDist::HomaLike`] reproduces that *shape* with a piecewise
//! log-uniform CDF (the substitution preserves the bursty, highly
//! variable offered load the paper relies on; exact CDF values are not
//! load-bearing for any claim — see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::Rng;

/// Message size distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MsgSizeDist {
    /// Heavy-tailed, Homa-workload-shaped piecewise distribution.
    HomaLike,
    /// Every message is exactly `bytes`.
    Fixed { bytes: u64 },
    /// Log-uniform between `min` and `max` bytes.
    LogUniform { min: u64, max: u64 },
}

/// (cumulative probability, upper bound in bytes) knots of the
/// Homa-like CDF; log-uniform interpolation inside each segment.
const HOMA_KNOTS: &[(f64, u64)] = &[
    (0.00, 100),
    (0.50, 1_446),     // half the messages fit in one packet
    (0.80, 14_460),    // ~10 packets
    (0.95, 144_600),   // ~100 packets
    (0.99, 1_446_000), // ~1000 packets
    (1.00, 5_784_000), // tail: ~4000 packets
];

impl MsgSizeDist {
    /// Draw one message size in bytes (always >= 1).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            MsgSizeDist::Fixed { bytes } => bytes.max(1),
            MsgSizeDist::LogUniform { min, max } => log_uniform(rng, min.max(1), max.max(2)),
            MsgSizeDist::HomaLike => {
                let u: f64 = rng.gen();
                for w in HOMA_KNOTS.windows(2) {
                    let (p0, b0) = w[0];
                    let (p1, b1) = w[1];
                    if u <= p1 {
                        // Log-uniform within the segment, linear in CDF.
                        let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 0.0 };
                        let lo = (b0 as f64).ln();
                        let hi = (b1 as f64).ln();
                        return (lo + frac * (hi - lo)).exp().round().max(1.0) as u64;
                    }
                }
                HOMA_KNOTS.last().unwrap().1
            }
        }
    }

    /// Mean message size in bytes (analytic for Fixed, numeric otherwise;
    /// used to convert a target bit rate into a Poisson arrival rate).
    pub fn mean_bytes(&self) -> f64 {
        match *self {
            MsgSizeDist::Fixed { bytes } => bytes as f64,
            MsgSizeDist::LogUniform { min, max } => {
                let (a, b) = (min.max(1) as f64, max.max(2) as f64);
                (b - a) / (b.ln() - a.ln())
            }
            MsgSizeDist::HomaLike => {
                // E[X] = sum over segments of P(segment) * E[log-uniform].
                let mut mean = 0.0;
                for w in HOMA_KNOTS.windows(2) {
                    let (p0, b0) = w[0];
                    let (p1, b1) = w[1];
                    let (a, b) = (b0 as f64, b1 as f64);
                    let seg_mean = (b - a) / (b.ln() - a.ln());
                    mean += (p1 - p0) * seg_mean;
                }
                mean
            }
        }
    }
}

fn log_uniform(rng: &mut StdRng, min: u64, max: u64) -> u64 {
    let (lo, hi) = ((min as f64).ln(), (max as f64).ln());
    let u: f64 = rng.gen();
    (lo + u * (hi - lo)).exp().round().max(1.0) as u64
}

/// Draw an exponential inter-arrival gap with the given mean (seconds).
/// Used for Poisson message arrivals.
pub fn exp_interarrival(rng: &mut StdRng, mean_secs: f64) -> f64 {
    assert!(mean_secs > 0.0, "mean inter-arrival must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean_secs * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fixed_is_constant() {
        let mut r = rng(1);
        let d = MsgSizeDist::Fixed { bytes: 5000 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5000);
        }
        assert_eq!(d.mean_bytes(), 5000.0);
    }

    #[test]
    fn log_uniform_respects_bounds() {
        let mut r = rng(2);
        let d = MsgSizeDist::LogUniform {
            min: 100,
            max: 10_000,
        };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((100..=10_000).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn homa_like_is_heavy_tailed() {
        let mut r = rng(3);
        let d = MsgSizeDist::HomaLike;
        let samples: Vec<u64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        let one_pkt = samples.iter().filter(|&&s| s <= 1_446).count() as f64 / 50_000.0;
        assert!(
            (one_pkt - 0.5).abs() < 0.02,
            "single-packet fraction {one_pkt}"
        );
        let big = samples.iter().filter(|&&s| s > 144_600).count() as f64 / 50_000.0;
        assert!((big - 0.05).abs() < 0.01, "large-message fraction {big}");
        // Mean is dominated by the tail: far above the median.
        let mean = samples.iter().sum::<u64>() as f64 / 50_000.0;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[25_000] as f64;
        assert!(mean > 5.0 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn homa_mean_estimate_matches_samples() {
        let mut r = rng(4);
        let d = MsgSizeDist::HomaLike;
        let n = 200_000;
        let emp = (0..n).map(|_| d.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        let analytic = d.mean_bytes();
        let rel = (emp - analytic).abs() / analytic;
        assert!(rel < 0.1, "empirical {emp} vs analytic {analytic}");
    }

    #[test]
    fn exponential_interarrival_mean() {
        let mut r = rng(5);
        let n = 100_000;
        let mean = (0..n).map(|_| exp_interarrival(&mut r, 0.02)).sum::<f64>() / n as f64;
        assert!((mean - 0.02).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn samples_are_deterministic_in_seed() {
        let d = MsgSizeDist::HomaLike;
        let a: Vec<u64> = {
            let mut r = rng(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
