//! Property-based histogram correctness: bucketing must be a monotone
//! partition of `u64`, shard merging must be exact, and snapshot
//! quantiles must track a sorted-vec reference within the documented
//! ±12.5% relative bucket-width bound.

use ntt_obs::{bounds_of, bucket_of, Histogram, BUCKETS};
use proptest::prelude::*;

/// Exact order statistic with the same rank convention the snapshot
/// uses (`rank = ⌈q·n⌉`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Map a raw random word to a log-uniform magnitude (many octaves, the
/// way latencies distribute).
fn log_uniform(raw: u64) -> u64 {
    let shift = (raw >> 58) % 40;
    (1u64 << shift).saturating_add(raw & 1023)
}

proptest! {
    #[test]
    fn bucket_of_lands_inside_its_bounds(v in any::<u64>()) {
        let idx = bucket_of(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bounds_of(idx);
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}] of bucket {}", v, lo, hi, idx);
    }

    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a.min(b), a.max(b));
        prop_assert!(bucket_of(a) <= bucket_of(b));
    }

    #[test]
    fn quantiles_track_sorted_vec_reference(
        raws in proptest::collection::vec(any::<u64>(), 1..400),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        ntt_obs::set_enabled(true);
        let values: Vec<u64> = raws.iter().map(|&r| log_uniform(r)).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [qa, qb, 0.5, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q) as f64;
            let est = snap.quantile(q);
            // The exact order statistic lies in the bucket the estimate
            // is the midpoint of; bucket half-width is ≤12.5% of the
            // value (+0.5 for integer-bound rounding).
            prop_assert!(
                (est - exact).abs() <= exact * 0.125 + 0.5,
                "q={}: estimate {} vs exact {}", q, est, exact
            );
        }
    }

    #[test]
    fn multithreaded_recording_merges_exactly(
        values in proptest::collection::vec(0u64..1_000_000, 8..200),
        threads in 2usize..5,
    ) {
        ntt_obs::set_enabled(true);
        // Reference: the same multiset recorded single-threaded.
        let reference = Histogram::new();
        for &v in &values {
            reference.record(v);
        }
        // Shard the values over real threads (each gets its own stripe).
        let shards = Histogram::new();
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let shards = &shards;
                s.spawn(move || {
                    for &v in chunk {
                        shards.record(v);
                    }
                });
            }
        });
        // Bucket counts are u64 sums — order-independent, so the merged
        // snapshot must equal the single-threaded one exactly.
        prop_assert_eq!(shards.snapshot(), reference.snapshot());
    }
}
