//! Kill-switch semantics, isolated in their own test process: these
//! tests flip the process-global switch, which would race with the
//! in-crate unit tests if they shared a binary.

use std::sync::{Mutex, MutexGuard};

/// Tests here toggle global state; serialize them.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_metrics_record_nothing() {
    let _g = lock();
    ntt_obs::set_enabled(false);
    let c = ntt_obs::counter("kill.counter");
    let g = ntt_obs::gauge("kill.gauge");
    let h = ntt_obs::histogram("kill.hist");
    c.inc();
    c.add(10);
    g.set(5.0);
    h.record(123);
    {
        let s = ntt_obs::span!("kill.span_ns");
        assert!(!s.is_recording(), "span must not arm while disabled");
    }
    assert_eq!(c.get(), 0, "disabled counter must stay 0");
    assert_eq!(g.get(), 0.0, "disabled gauge must stay 0");
    let snap = ntt_obs::snapshot();
    assert_eq!(snap.histogram("kill.hist").unwrap().count, 0);
    assert_eq!(snap.histogram("kill.span_ns").map_or(0, |h| h.count), 0);

    // Flip back on: the same handles come alive.
    ntt_obs::set_enabled(true);
    c.inc();
    g.set(2.5);
    h.record(7);
    {
        let _s = ntt_obs::span!("kill.span_ns");
    }
    assert_eq!(c.get(), 1);
    assert_eq!(g.get(), 2.5);
    let snap = ntt_obs::snapshot();
    assert_eq!(snap.histogram("kill.hist").unwrap().count, 1);
    assert_eq!(snap.histogram("kill.span_ns").unwrap().count, 1);
}

#[test]
fn disabled_snapshot_and_export_still_work() {
    let _g = lock();
    ntt_obs::set_enabled(false);
    ntt_obs::counter("kill.export.counter");
    // Snapshots and exports are cold-path reads; the kill switch only
    // silences *recording*.
    let snap = ntt_obs::snapshot();
    assert_eq!(snap.counter("kill.export.counter"), Some(0));
    assert!(snap.to_json().contains("kill.export.counter"));
    assert!(snap.to_prometheus().contains("kill_export_counter 0"));
    ntt_obs::set_enabled(true);
}

#[test]
fn span_armed_before_disable_still_records() {
    let _g = lock();
    ntt_obs::set_enabled(true);
    let before = ntt_obs::snapshot()
        .histogram("kill.midflight_ns")
        .map_or(0, |h| h.count);
    {
        let _s = ntt_obs::span!("kill.midflight_ns");
        // The switch flips while the span is open: the measurement that
        // already started must not be lost.
        ntt_obs::set_enabled(false);
    }
    ntt_obs::set_enabled(true);
    let after = ntt_obs::snapshot()
        .histogram("kill.midflight_ns")
        .unwrap()
        .count;
    assert_eq!(after, before + 1);
}
