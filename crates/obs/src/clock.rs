//! The workspace's audited wall-clock seam.
//!
//! The deterministic crates (tensor, nn, core, fleet, data, sim) are
//! forbidden from reading the wall clock directly — `ntt-lint` R3
//! rejects `Instant::now()` there, because a clock read is exactly the
//! kind of ambient input that quietly couples results to the host. But
//! those crates still *report* elapsed wall time (trainer throughput,
//! fleet sweep duration), which is legitimate: timings flow into
//! reports and metrics, never back into numerics.
//!
//! [`Stopwatch`] is the one sanctioned way to do that. It lives here,
//! inside the allowlisted obs crate, so every clock read in the
//! workspace is greppable to this file, and the determinism argument
//! ("timings are write-only outputs") has a single choke point to
//! audit.

use std::time::{Duration, Instant};

/// A started wall-clock timer. Obtain one with [`Stopwatch::start`],
/// read it with [`Stopwatch::elapsed`].
///
/// ```
/// let sw = ntt_obs::Stopwatch::start();
/// // ... work ...
/// let wall: std::time::Duration = sw.elapsed();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Read the clock and start timing.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall time since [`Stopwatch::start`]. Monotonic, never panics.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
