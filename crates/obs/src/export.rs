//! Structured event export: JSON and Prometheus-style text exposition.
//!
//! Both formats render a [`MetricsSnapshot`], so an export is always a
//! consistent-by-name-order view (the snapshot is taken once; the
//! exporter never touches live atomics). JSON nests histograms with
//! derived quantiles *and* raw buckets, so downstream tooling can
//! re-derive any quantile; the Prometheus form is a flat `name value`
//! exposition with summary-style quantile labels, suitable for a
//! `/metrics` endpoint or a textfile collector.

use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Escape a string for a JSON value position.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values,
/// which raw JSON cannot carry).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}") // shortest round-trip representation
    } else {
        "null".to_string()
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// (the registry's dots in particular) to underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// The full registry state as one JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"train.steps": 12},
    ///   "gauges": {"train.grad_norm": 1.25},
    ///   "histograms": {
    ///     "train.step_ns": {"count": 12, "sum": 99, "mean": 8.25,
    ///                        "p50": 7.5, "p90": 11.0, "p99": 11.0,
    ///                        "buckets": [[4, 4, 3], [5, 5, 9]]}
    ///   }
    /// }
    /// ```
    ///
    /// Buckets are `[lo, hi, count]` triples (inclusive value bounds) in
    /// ascending order, so any quantile is re-derivable downstream.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc_json(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", esc_json(name), json_f64(*v));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                esc_json(name),
                h.count,
                h.sum,
                json_f64(h.mean()),
                json_f64(h.p50()),
                json_f64(h.p90()),
                json_f64(h.p99()),
            );
            for (j, b) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{}, {}, {}]", b.lo, b.hi, b.count);
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }

    /// Flat Prometheus-style text exposition. Counters and gauges are
    /// plain samples; histograms export summary-style quantiles plus
    /// `_sum`/`_count`:
    ///
    /// ```text
    /// # TYPE train_steps counter
    /// train_steps 12
    /// # TYPE serve_queue_wait_ns summary
    /// serve_queue_wait_ns{quantile="0.5"} 1088
    /// serve_queue_wait_ns{quantile="0.9"} 1856
    /// serve_queue_wait_ns{quantile="0.99"} 1856
    /// serve_queue_wait_ns_sum 13000
    /// serve_queue_wait_ns_count 12
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let v = h.quantile(q);
                if v.is_finite() {
                    let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {v}");
                }
            }
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::histogram::{BucketCount, HistogramSnapshot};
    use crate::registry::MetricsSnapshot;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.count".into(), 7)],
            gauges: vec![("b.gauge".into(), 1.5), ("c.nan".into(), f64::NAN)],
            histograms: vec![(
                "d.hist_ns".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 30,
                    buckets: vec![
                        BucketCount {
                            lo: 8,
                            hi: 9,
                            count: 1,
                        },
                        BucketCount {
                            lo: 20,
                            hi: 23,
                            count: 1,
                        },
                    ],
                },
            )],
        }
    }

    /// Minimal structural JSON validation: balanced delimiters outside
    /// strings, no raw control characters.
    fn assert_balanced_json(s: &str) {
        let (mut depth, mut in_str, mut prev) = (0i32, false, ' ');
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced close in {s}");
            }
            prev = if prev == '\\' && c == '\\' { ' ' } else { c };
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(!in_str, "unterminated string: {s}");
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = sample().to_json();
        assert_balanced_json(&j);
        assert!(j.contains("\"a.count\": 7"));
        assert!(j.contains("\"b.gauge\": 1.5"));
        assert!(j.contains("\"c.nan\": null"), "NaN must export as null");
        assert!(j.contains("[8, 9, 1]"));
        assert!(j.contains("\"count\": 2"));
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        assert_balanced_json(&MetricsSnapshot::default().to_json());
    }

    #[test]
    fn prometheus_flattens_names_and_quantiles() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE a_count counter\na_count 7\n"));
        assert!(p.contains("# TYPE b_gauge gauge\nb_gauge 1.5\n"));
        assert!(p.contains("d_hist_ns{quantile=\"0.5\"} 8.5"));
        assert!(p.contains("d_hist_ns_sum 30"));
        assert!(p.contains("d_hist_ns_count 2"));
        // NaN gauge still exports (Prometheus text allows NaN).
        assert!(p.contains("c_nan NaN"));
    }
}
