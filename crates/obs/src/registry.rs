//! The process-global metrics registry.
//!
//! Registration (name → metric handle) is the cold path: a `RwLock`
//! around a `BTreeMap`, taken once per call site thanks to the caching
//! macros ([`crate::counter!`], [`crate::gauge!`], [`crate::span!`]).
//! The handles themselves are `Arc`s whose hot-path operations are pure
//! atomics — after the first lookup a call site never touches the lock
//! again. Names are `dot.separated` by convention; a [`snapshot`]
//! iterates the map in name order, so two snapshots of identical
//! metric states are byte-identical.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_register<T>(
    name: &str,
    wrap: impl FnOnce(Arc<T>) -> Metric,
    unwrap: impl Fn(&Metric) -> Option<Arc<T>>,
) -> Arc<T>
where
    T: Default,
{
    let reg = registry();
    if let Some(m) = reg.metrics.read().unwrap().get(name) {
        return unwrap(m)
            .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()));
    }
    let mut w = reg.metrics.write().unwrap();
    // Double-checked: another thread may have registered it between the
    // read unlock and the write lock.
    if let Some(m) = w.get(name) {
        return unwrap(m)
            .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()));
    }
    let handle = Arc::new(T::default());
    w.insert(name.to_string(), wrap(Arc::clone(&handle)));
    handle
}

/// Get-or-create the global counter `name`. Panics if `name` is already
/// registered as a different metric type.
pub fn counter(name: &str) -> Arc<Counter> {
    get_or_register(name, Metric::Counter, |m| match m {
        Metric::Counter(c) => Some(Arc::clone(c)),
        _ => None,
    })
}

/// Get-or-create the global gauge `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    get_or_register(name, Metric::Gauge, |m| match m {
        Metric::Gauge(g) => Some(Arc::clone(g)),
        _ => None,
    })
}

/// Get-or-create the global histogram `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    get_or_register(name, Metric::Histogram, |m| match m {
        Metric::Histogram(h) => Some(Arc::clone(h)),
        _ => None,
    })
}

/// One immutable view of every registered metric, in name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshot the whole global registry.
pub fn snapshot() -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for (name, metric) in registry().metrics.read().unwrap().iter() {
        match metric {
            Metric::Counter(c) => out.counters.push((name.clone(), c.get())),
            Metric::Gauge(g) => out.gauges.push((name.clone(), g.get())),
            Metric::Histogram(h) => out.histograms.push((name.clone(), h.snapshot())),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        crate::set_enabled(true);
        let a = counter("registry.test.counter");
        let b = counter("registry.test.counter");
        assert!(Arc::ptr_eq(&a, &b), "same name must be one counter");
        a.add(3);
        assert_eq!(b.get(), 3);
        gauge("registry.test.gauge").set(1.5);
        histogram("registry.test.hist").record(7);
        let s = snapshot();
        assert_eq!(s.counter("registry.test.counter"), Some(3));
        assert_eq!(s.gauge("registry.test.gauge"), Some(1.5));
        assert!(s.histogram("registry.test.hist").unwrap().count >= 1);
        assert_eq!(s.counter("registry.test.nope"), None);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        counter("registry.order.b");
        counter("registry.order.a");
        let s = snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must iterate in name order");
    }

    #[test]
    fn type_collisions_panic() {
        counter("registry.test.collision");
        let r = std::panic::catch_unwind(|| gauge("registry.test.collision"));
        assert!(r.is_err(), "re-registering as a different type must panic");
    }
}
