//! RAII span timers: scope a block, feed a latency histogram.
//!
//! The [`crate::span!`] macro is the intended entry point:
//!
//! ```
//! ntt_obs::set_enabled(true);
//! {
//!     let _step = ntt_obs::span!("doc.train_step_ns");
//!     // ... work ...
//! } // drop records the elapsed nanoseconds
//! assert_eq!(ntt_obs::snapshot().histogram("doc.train_step_ns").unwrap().count, 1);
//! ```
//!
//! While the kill switch is off ([`crate::enabled`] is `false`) a span
//! is one relaxed atomic load and a `None`: the clock is never read and
//! the histogram is never touched, so instrumented-but-disabled code
//! runs at uninstrumented speed (gated by the `obs_overhead` bench).

use crate::histogram::Histogram;
use std::time::Instant;

/// Guard returned by [`crate::span!`]; records on drop.
#[must_use = "a span records when dropped — binding it to _ discards the timing immediately"]
pub struct SpanTimer {
    inner: Option<(&'static Histogram, Instant)>,
}

impl SpanTimer {
    /// Start a span over `hist`. `get` is only invoked (and the clock
    /// only read) when observability is enabled.
    #[inline]
    pub fn start_with(get: impl FnOnce() -> &'static Histogram) -> SpanTimer {
        if crate::enabled() {
            SpanTimer {
                inner: Some((get(), Instant::now())),
            }
        } else {
            SpanTimer { inner: None }
        }
    }

    /// A span that records nothing (the disabled form, for tests).
    pub fn disabled() -> SpanTimer {
        SpanTimer { inner: None }
    }

    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((hist, t0)) = self.inner.take() {
            // `record_always`: the span started while enabled; flipping
            // the switch mid-span must not lose the measurement.
            hist.record_always(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// Time a scope into the named global latency histogram. The registry
/// lookup happens once per call site (cached in a static), so the
/// steady-state cost is the kill-switch branch plus two clock reads —
/// or the branch alone when disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __NTT_OBS_SPAN_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::SpanTimer::start_with(|| {
            &**__NTT_OBS_SPAN_HIST.get_or_init(|| $crate::histogram($name))
        })
    }};
}

/// The named global counter, looked up once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __NTT_OBS_COUNTER: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**__NTT_OBS_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// The named global gauge, looked up once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __NTT_OBS_GAUGE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__NTT_OBS_GAUGE.get_or_init(|| $crate::gauge($name))
    }};
}

/// The named global histogram, looked up once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __NTT_OBS_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__NTT_OBS_HIST.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_records_elapsed_time() {
        crate::set_enabled(true);
        let before = crate::snapshot()
            .histogram("span.test_ns")
            .map_or(0, |h| h.count);
        {
            let s = crate::span!("span.test_ns");
            assert!(s.is_recording());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = crate::snapshot();
        let h = h.histogram("span.test_ns").expect("registered by span!");
        assert_eq!(h.count, before + 1);
        // At least 2ms elapsed; bucket midpoints are within 12.5%.
        assert!(h.quantile(1.0) >= 1.5e6, "p100 {} ns", h.quantile(1.0));
    }

    #[test]
    fn macros_cache_one_handle_per_site() {
        crate::set_enabled(true);
        let c1 = crate::counter!("span.test.site") as *const _;
        let c2 = crate::counter!("span.test.site") as *const _;
        // Two *sites* but one registered metric: both point at the same
        // counter through the registry.
        crate::counter!("span.test.site").inc();
        assert_eq!(crate::snapshot().counter("span.test.site"), Some(1));
        let _ = (c1, c2);
    }
}
