//! Scalar metrics: monotonic counters and last-write-wins gauges.
//!
//! Both are a single `AtomicU64`; the hot-path methods compile to one
//! relaxed branch on the kill switch plus (when enabled) one relaxed
//! atomic op. Gauges store `f64` bit patterns so a snapshot read
//! returns exactly the value the last writer set — important for the
//! workspace's bit-stability discipline (e.g. the trainer's grad-norm
//! gauge must read identically at any thread count).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Add one. No-op while observability is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-write-wins scalar (bit-exact `f64` storage).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0), // 0u64 == 0.0f64
        }
    }

    /// Set the gauge. No-op while observability is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (exactly the bits the last writer stored).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        crate::set_enabled(true);
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_is_bit_exact() {
        crate::set_enabled(true);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        let v = 0.1f64 + 0.2f64; // a value with a non-trivial mantissa
        g.set(v);
        assert_eq!(g.get().to_bits(), v.to_bits());
    }
}
