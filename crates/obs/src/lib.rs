//! # ntt-obs
//!
//! Zero-overhead observability for the NTT workspace: a process-global,
//! lock-light metrics registry with monotonic [`Counter`]s,
//! last-write-wins [`Gauge`]s, and fixed-bucket log-scale
//! [`Histogram`]s; RAII [`span!`] timers that feed those histograms;
//! and snapshot export as JSON ([`MetricsSnapshot::to_json`]) or a flat
//! Prometheus-style text exposition
//! ([`MetricsSnapshot::to_prometheus`]).
//!
//! ```
//! ntt_obs::set_enabled(true);
//! ntt_obs::counter!("demo.requests").inc();
//! ntt_obs::gauge!("demo.queue_depth").set(3.0);
//! {
//!     let _timer = ntt_obs::span!("demo.request_ns");
//!     // ... handle the request ...
//! }
//! let snap = ntt_obs::snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(1));
//! assert!(snap.histogram("demo.request_ns").unwrap().p99() >= 0.0);
//! println!("{}", snap.to_prometheus());
//! ```
//!
//! # Hot-path cost and the kill switch
//!
//! Every hot-path operation is a relaxed atomic: counters and gauges
//! are one `fetch_add`/`store`, a histogram record is two `fetch_add`s
//! into fixed slots (no allocation, no lock, no sorting — quantiles are
//! derived later from the snapshot). Registration by name is the only
//! locked path and the [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`]
//! macros cache it in a per-call-site static, so steady state never
//! touches the registry lock.
//!
//! Setting `NTT_OBS=off` (or `0`/`false`) in the environment flips the
//! process-wide kill switch: every metric op and every span compiles
//! down to **one relaxed load and a branch** — the clock is never read,
//! no atomic is written, and the `obs_overhead` bench gates that
//! instrumented-but-disabled training runs at the uninstrumented
//! baseline. [`set_enabled`] overrides the environment at runtime
//! (benches toggle it to measure both sides).
//!
//! # Determinism
//!
//! Observability never feeds numerics: metrics read clocks and counts
//! but nothing in the workspace reads a metric back into a computation,
//! so enabling/disabling observability cannot change a loss, a
//! gradient, or a served prediction (the serving and training test
//! suites assert bit-identical results with metrics on and off).
//! Deterministic metrics — counters of logical events, gauges of
//! computed values — are themselves bit-stable across thread counts;
//! only wall-clock histograms vary run to run.

mod clock;
mod export;
mod histogram;
mod metric;
mod registry;
mod span;

pub use clock::Stopwatch;
pub use histogram::{bounds_of, bucket_of, BucketCount, Histogram, HistogramSnapshot, BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{counter, gauge, histogram, snapshot, MetricsSnapshot};
pub use span::SpanTimer;

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether observability is live. The hot-path guard: one relaxed load
/// and a compare. First call resolves the `NTT_OBS` environment knob.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = enabled_from_env(std::env::var("NTT_OBS").ok().as_deref());
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// The pure parse of the `NTT_OBS` knob (separated so tests never have
/// to mutate the process environment): metrics default **on**; `off`,
/// `0`, or `false` (any case) disables them.
pub fn enabled_from_env(raw: Option<&str>) -> bool {
    !matches!(
        raw.map(str::trim).map(str::to_ascii_lowercase).as_deref(),
        Some("off" | "0" | "false")
    )
}

/// Override the kill switch at runtime (wins over `NTT_OBS`). Used by
/// benches to measure enabled and disabled cost in one process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parse_defaults_on() {
        assert!(enabled_from_env(None));
        assert!(enabled_from_env(Some("on")));
        assert!(enabled_from_env(Some("1")));
        assert!(enabled_from_env(Some("weird")));
        assert!(!enabled_from_env(Some("off")));
        assert!(!enabled_from_env(Some("OFF")));
        assert!(!enabled_from_env(Some("0")));
        assert!(!enabled_from_env(Some("false")));
        assert!(!enabled_from_env(Some(" off ")));
    }
}
