//! Fixed-bucket log-scale histograms: the latency primitive.
//!
//! A [`Histogram`] counts `u64` observations (by convention nanoseconds,
//! but any unit works) into a **fixed** set of log-scale buckets:
//! values below [`SUBS`] get exact buckets, and every power-of-two
//! octave above that is split into [`SUBS`] sub-buckets, so any bucket's
//! width is at most 25% of its lower bound. Quantiles read from a
//! snapshot land within ±12.5% (relative) of the exact order statistic —
//! plenty for p50/p99 SLO accounting — while recording stays one
//! relaxed `fetch_add` into a fixed slot: no allocation, no lock, no
//! comparison ladder (the bucket index is two shifts and a mask).
//!
//! Recording is striped over [`SHARDS`] per-thread shards so concurrent
//! writers (batcher workers, fleet threads) do not ping-pong one cache
//! line; a snapshot merges the shards by plain addition, which is exact
//! for counters and therefore order-independent.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-buckets per power-of-two octave (4 ⇒ ≤25% bucket width).
pub const SUBS: usize = 4;
const SUB_BITS: usize = SUBS.trailing_zeros() as usize; // 2

/// Total bucket count: `SUBS` exact small-value buckets plus `SUBS`
/// sub-buckets for each octave `2^SUB_BITS ..= 2^63`.
pub const BUCKETS: usize = SUBS + (64 - SUB_BITS) * SUBS;

/// Writer stripes. Eight is enough to keep a handful of worker threads
/// off each other's cache lines without bloating snapshots.
const SHARDS: usize = 8;

/// Bucket index for a value. Monotone in `v`; exact for `v < SUBS`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUBS as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) * SUBS + sub
}

/// Inclusive `[lo, hi]` value range of bucket `idx` (inverse of
/// [`bucket_of`]: every `v` with `bucket_of(v) == idx` lies inside).
pub fn bounds_of(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < SUBS {
        return (idx as u64, idx as u64);
    }
    let octave = idx / SUBS - 1; // 0 => msb == SUB_BITS
    let sub = (idx % SUBS) as u64;
    let shift = octave; // == msb - SUB_BITS
    let lo = (SUBS as u64 + sub) << shift;
    // Parenthesized to avoid u64 overflow in the top bucket, whose `hi`
    // is exactly `u64::MAX`.
    let hi = lo + ((1u64 << shift) - 1);
    (lo, hi)
}

std::thread_local! {
    /// This thread's writer stripe, assigned round-robin on first use.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// Lock-free log-scale histogram. Construct standalone ([`Histogram::new`])
/// or through the global registry ([`crate::histogram`]).
pub struct Histogram {
    /// `SHARDS` stripes of `BUCKETS` counters, flattened.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..SHARDS * BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Count one observation. No-op while observability is disabled
    /// (see [`crate::enabled`]); otherwise two relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Count one observation regardless of the kill switch (snapshots
    /// of already-started spans, tests).
    #[inline]
    pub fn record_always(&self, v: u64) {
        let base = shard_index() * BUCKETS;
        self.buckets[base + bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge the per-thread shards into an immutable snapshot. Shard
    /// merging is plain addition of `u64` counts, so the result does not
    /// depend on which thread recorded what.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0u64;
        let mut buckets = Vec::new();
        for idx in 0..BUCKETS {
            let c: u64 = (0..SHARDS)
                .map(|s| self.buckets[s * BUCKETS + idx].load(Ordering::Relaxed))
                .sum();
            if c > 0 {
                let (lo, hi) = bounds_of(idx);
                buckets.push(BucketCount { lo, hi, count: c });
                count += c;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value this bucket can hold.
    pub lo: u64,
    /// Largest value this bucket can hold (inclusive).
    pub hi: u64,
    pub count: u64,
}

/// Immutable view of a histogram at one instant: non-empty buckets in
/// ascending value order, plus total count and sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket
    /// holding the rank-`⌈q·n⌉` observation — within ±12.5% (relative)
    /// of the exact order statistic. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for b in &self.buckets {
            cum += b.count;
            if cum >= rank {
                return (b.lo as f64 + b.hi as f64) / 2.0;
            }
        }
        let last = self.buckets.last().expect("count > 0 implies buckets");
        (last.lo as f64 + last.hi as f64) / 2.0
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Exact mean of the recorded values (`sum` is exact). `NaN` when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot in (bucket-wise addition — the same exact
    /// merge used across writer shards, usable across processes too).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<BucketCount> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) if x.lo == y.lo => {
                    merged.push(BucketCount {
                        lo: x.lo,
                        hi: x.hi,
                        count: x.count + y.count,
                    });
                    a.next();
                    b.next();
                }
                (Some(x), Some(y)) => {
                    if x.lo < y.lo {
                        merged.push(**x);
                        a.next();
                    } else {
                        merged.push(**y);
                        b.next();
                    }
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_for_small_values() {
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_of(v), v as usize);
        }
        let mut values: Vec<u64> = (0..60)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_of(v);
            assert!(idx >= prev, "bucket_of not monotone at {v}");
            prev = idx;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bounds_invert_bucket_of() {
        for idx in 0..BUCKETS {
            let (lo, hi) = bounds_of(idx);
            assert_eq!(bucket_of(lo), idx, "lo of bucket {idx}");
            assert_eq!(bucket_of(hi), idx, "hi of bucket {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(bounds_of(idx + 1).0, hi.wrapping_add(1), "gap after {idx}");
            } else {
                assert_eq!(hi, u64::MAX, "last bucket must reach u64::MAX");
            }
            // Log-scale contract: width never exceeds 25% of the bound.
            if lo > 0 {
                assert!(hi - lo < lo.div_ceil(4) + 1, "bucket {idx} too wide");
            }
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1_000_210);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 8);
        // Exact small-value buckets.
        assert_eq!(
            s.buckets[0],
            BucketCount {
                lo: 0,
                hi: 0,
                count: 1
            }
        );
        assert!((s.mean() - 1_000_210.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_hit_the_right_buckets() {
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50's exact order statistic is 50; bucket midpoint within 12.5%.
        assert!(
            (s.p50() - 50.0).abs() <= 50.0 * 0.125 + 0.5,
            "p50 {}",
            s.p50()
        );
        assert!(
            (s.p99() - 99.0).abs() <= 99.0 * 0.125 + 0.5,
            "p99 {}",
            s.p99()
        );
        assert!(s.quantile(0.0) >= 1.0);
        assert!(Histogram::new().snapshot().p50().is_nan());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        crate::set_enabled(true);
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 10, 100] {
            a.record(v);
            c.record(v);
        }
        for v in [10u64, 1000] {
            b.record(v);
            c.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, c.snapshot(), "merge must equal recording into one");
    }

    #[test]
    fn concurrent_shards_merge_exactly() {
        crate::set_enabled(true);
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.sum, (0..4000u64).sum::<u64>());
    }
}
