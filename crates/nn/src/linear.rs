//! Fully-connected layer.

use crate::init;
use crate::module::Module;
use ntt_tensor::{Param, Tape, Var};

/// `y = x · W + b`, applied to the last axis of any rank >= 2 input
/// (leading axes are flattened for the product and restored afterwards).
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Xavier-initialized layer. `name` prefixes the parameter names so
    /// checkpoints stay readable.
    pub fn new(name: &str, in_features: usize, out_features: usize, seed: u64) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::xavier_uniform(in_features, out_features, seed),
            ),
            bias: Param::new(
                format!("{name}.bias"),
                ntt_tensor::Tensor::zeros(&[out_features]),
            ),
            in_features,
            out_features,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Apply the layer on the tape. The weight broadcasts over every
    /// leading axis of `x` directly (one fused flat GEMM inside
    /// `matmul`), so no reshape copies are materialized on either side.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let d = *shape.last().expect("linear input must have rank >= 1");
        assert_eq!(
            d, self.in_features,
            "linear: input has {d} features, layer expects {}",
            self.in_features
        );
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        x.matmul(w).add(b)
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn forward_shapes_rank2_and_rank3() {
        let l = Linear::new("l", 4, 6, 0);
        let tape = Tape::new();
        let x2 = tape.input(Tensor::randn(&[5, 4], 1));
        assert_eq!(l.forward(&tape, x2).shape(), vec![5, 6]);
        let x3 = tape.input(Tensor::randn(&[2, 3, 4], 2));
        assert_eq!(l.forward(&tape, x3).shape(), vec![2, 3, 6]);
    }

    #[test]
    fn forward_matches_manual_computation() {
        let l = Linear::new("l", 2, 2, 0);
        l.weight
            .set_value(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        l.bias.set_value(Tensor::from_vec(vec![0.5, -0.5], &[2]));
        let tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let y = l.forward(&tape, x).value();
        // [1,1] @ [[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert!(y.allclose(&Tensor::from_vec(vec![4.5, 5.5], &[1, 2]), 1e-6));
    }

    #[test]
    fn rank3_equals_rowwise_rank2() {
        let l = Linear::new("l", 3, 2, 7);
        let data = Tensor::randn(&[2, 5, 3], 8);
        let tape = Tape::new();
        let y3 = l.forward(&tape, tape.input(data.clone())).value();
        let y2 = l.forward(&tape, tape.input(data.reshape(&[10, 3]))).value();
        assert!(y3.reshape(&[10, 2]).allclose(&y2, 1e-6));
    }

    #[test]
    fn gradients_flow_to_both_params() {
        let l = Linear::new("l", 3, 2, 3);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[4, 3], 4));
        let y = l.forward(&tape, x);
        let loss = y.mse_loss(&Tensor::zeros(&[4, 2]));
        tape.backward(loss);
        assert!(l.weight.grad().norm() > 0.0);
        assert!(l.bias.grad().norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "layer expects")]
    fn rejects_wrong_feature_count() {
        let l = Linear::new("l", 3, 2, 0);
        let tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[4, 5]));
        l.forward(&tape, x);
    }
}
