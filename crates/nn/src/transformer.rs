//! Transformer encoder (stack of attention + feed-forward blocks).
//!
//! Supports both normalization placements:
//! * **Pre-LN** (default): `x + Attn(LN(x))`, `x + FF(LN(x))` — more
//!   stable without a warmup-tuned schedule, the right default for the
//!   small proof-of-concept models in this reproduction.
//! * **Post-LN** (original Vaswani): `LN(x + Attn(x))` — kept selectable
//!   so the design choice is testable (DESIGN.md §5).

use crate::activation::Activation;
use crate::attention::MultiHeadAttention;
use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::module::Module;
use crate::norm::LayerNorm;
use ntt_tensor::{Param, Tape, Var};

/// Where layer norm sits relative to each sublayer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormPlacement {
    PreNorm,
    PostNorm,
}

/// Configuration of one encoder layer / the whole stack.
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    pub d_model: usize,
    pub n_heads: usize,
    /// Hidden width of the position-wise feed-forward block.
    pub d_ff: usize,
    pub n_layers: usize,
    pub dropout: f32,
    pub activation: Activation,
    pub norm: NormPlacement,
}

impl EncoderConfig {
    /// The proof-of-concept scale used throughout this reproduction.
    pub fn small(d_model: usize, n_heads: usize, n_layers: usize) -> Self {
        EncoderConfig {
            d_model,
            n_heads,
            d_ff: d_model * 2,
            n_layers,
            dropout: 0.0,
            activation: Activation::Gelu,
            norm: NormPlacement::PreNorm,
        }
    }
}

/// One encoder block: self-attention + position-wise feed-forward,
/// each with residual connection and layer norm.
pub struct TransformerEncoderLayer {
    attn: MultiHeadAttention,
    ff1: Linear,
    ff2: Linear,
    ln1: LayerNorm,
    ln2: LayerNorm,
    drop_attn: Dropout,
    drop_ff: Dropout,
    activation: Activation,
    norm: NormPlacement,
}

impl TransformerEncoderLayer {
    pub fn new(name: &str, cfg: &EncoderConfig, seed: u64) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), cfg.d_model, cfg.n_heads, seed),
            ff1: Linear::new(&format!("{name}.ff1"), cfg.d_model, cfg.d_ff, seed ^ 0xf1),
            ff2: Linear::new(&format!("{name}.ff2"), cfg.d_ff, cfg.d_model, seed ^ 0xf2),
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.d_model),
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.d_model),
            drop_attn: Dropout::new(cfg.dropout, seed ^ 0xd1),
            drop_ff: Dropout::new(cfg.dropout, seed ^ 0xd2),
            activation: cfg.activation,
            norm: cfg.norm,
        }
    }

    /// `[B, T, D] -> [B, T, D]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        match self.norm {
            NormPlacement::PreNorm => {
                let a = self.ln1.forward(tape, x);
                let a = self.drop_attn.forward(self.attn.forward(tape, a));
                let x = x.add(a);
                let f = self.ln2.forward(tape, x);
                let f = self.ff_block(tape, f);
                x.add(f)
            }
            NormPlacement::PostNorm => {
                let a = self.drop_attn.forward(self.attn.forward(tape, x));
                let x = self.ln1.forward(tape, x.add(a));
                let f = self.ff_block(tape, x);
                self.ln2.forward(tape, x.add(f))
            }
        }
    }

    fn ff_block<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let h = self.activation.forward(self.ff1.forward(tape, x));
        self.drop_ff.forward(self.ff2.forward(tape, h))
    }

    fn set_training(&self, training: bool) {
        self.drop_attn.set_training(training);
        self.drop_ff.set_training(training);
    }
}

impl Module for TransformerEncoderLayer {
    fn params(&self) -> Vec<Param> {
        let mut p = self.attn.params();
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p.extend(self.ln1.params());
        p.extend(self.ln2.params());
        p
    }
}

/// Stack of encoder layers (+ a final layer norm in pre-norm mode,
/// following the GPT-2/ViT convention).
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    final_ln: Option<LayerNorm>,
}

impl TransformerEncoder {
    pub fn new(name: &str, cfg: &EncoderConfig, seed: u64) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    &format!("{name}.layer{i}"),
                    cfg,
                    seed.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        let final_ln = match cfg.norm {
            NormPlacement::PreNorm => {
                Some(LayerNorm::new(&format!("{name}.final_ln"), cfg.d_model))
            }
            NormPlacement::PostNorm => None,
        };
        TransformerEncoder { layers, final_ln }
    }

    /// `[B, T, D] -> [B, T, D]`.
    pub fn forward<'t>(&self, tape: &'t Tape, mut x: Var<'t>) -> Var<'t> {
        for layer in &self.layers {
            x = layer.forward(tape, x);
        }
        match &self.final_ln {
            Some(ln) => ln.forward(tape, x),
            None => x,
        }
    }

    /// Propagate train/eval mode to dropout layers.
    pub fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.layers.iter().flat_map(|l| l.params()).collect();
        if let Some(ln) = &self.final_ln {
            p.extend(ln.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    fn cfg(norm: NormPlacement) -> EncoderConfig {
        EncoderConfig {
            d_model: 16,
            n_heads: 4,
            d_ff: 32,
            n_layers: 2,
            dropout: 0.0,
            activation: Activation::Gelu,
            norm,
        }
    }

    #[test]
    fn shapes_preserved_both_placements() {
        for norm in [NormPlacement::PreNorm, NormPlacement::PostNorm] {
            let enc = TransformerEncoder::new("e", &cfg(norm), 0);
            let tape = Tape::new();
            let x = tape.input(Tensor::randn(&[3, 5, 16], 1));
            assert_eq!(enc.forward(&tape, x).shape(), vec![3, 5, 16]);
        }
    }

    #[test]
    fn output_is_finite_after_deep_stack() {
        let mut c = cfg(NormPlacement::PreNorm);
        c.n_layers = 6;
        let enc = TransformerEncoder::new("e", &c, 2);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 8, 16], 3).map(|v| v * 5.0));
        assert!(!enc.forward(&tape, x).value().has_non_finite());
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let enc = TransformerEncoder::new("e", &cfg(NormPlacement::PreNorm), 4);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 4, 16], 5));
        let y = enc.forward(&tape, x);
        let loss = y.mse_loss(&Tensor::zeros(&[2, 4, 16]));
        tape.backward(loss);
        for p in enc.params() {
            assert!(
                p.grad().norm() > 0.0,
                "no gradient reached {} (dead path)",
                p.name()
            );
        }
    }

    #[test]
    fn param_count_formula() {
        let c = cfg(NormPlacement::PreNorm);
        let enc = TransformerEncoder::new("e", &c, 0);
        let attn = 4 * (16 * 16 + 16);
        let ff = (16 * 32 + 32) + (32 * 16 + 16);
        let lns = 2 * (16 + 16);
        let per_layer = attn + ff + lns;
        assert_eq!(enc.num_params(), 2 * per_layer + 32);
    }

    #[test]
    fn post_norm_also_trains_and_differs_from_pre_norm() {
        // Both placements must produce gradients everywhere and must
        // not be numerically identical (they are different functions).
        let pre = TransformerEncoder::new("p", &cfg(NormPlacement::PreNorm), 9);
        let post = TransformerEncoder::new("q", &cfg(NormPlacement::PostNorm), 9);
        let x = Tensor::randn(&[2, 5, 16], 10);
        let tape = Tape::new();
        let ya = pre.forward(&tape, tape.input(x.clone())).value();
        let yb = post.forward(&tape, tape.input(x.clone())).value();
        assert_ne!(ya, yb);
        let tape2 = Tape::new();
        let y = post.forward(&tape2, tape2.input(x));
        let loss = y.mse_loss(&Tensor::zeros(&[2, 5, 16]));
        tape2.backward(loss);
        for p in post.params() {
            assert!(p.grad().norm() > 0.0, "post-norm dead path at {}", p.name());
        }
    }

    #[test]
    fn encoder_is_deterministic_across_forwards() {
        let enc = TransformerEncoder::new("e", &cfg(NormPlacement::PreNorm), 11);
        let x = Tensor::randn(&[1, 6, 16], 12);
        let tape = Tape::new();
        let a = enc.forward(&tape, tape.input(x.clone())).value();
        let b = enc.forward(&tape, tape.input(x)).value();
        assert_eq!(a, b, "no hidden state between forwards");
    }

    #[test]
    fn dropout_only_acts_in_training_mode() {
        let mut c = cfg(NormPlacement::PreNorm);
        c.dropout = 0.4;
        let enc = TransformerEncoder::new("e", &c, 13);
        let x = Tensor::randn(&[1, 4, 16], 14);
        enc.set_training(false);
        let tape = Tape::new();
        let a = enc.forward(&tape, tape.input(x.clone())).value();
        let b = enc.forward(&tape, tape.input(x.clone())).value();
        assert_eq!(a, b, "eval mode must be deterministic");
        enc.set_training(true);
        let c1 = enc.forward(&tape, tape.input(x.clone())).value();
        let c2 = enc.forward(&tape, tape.input(x)).value();
        assert_ne!(c1, c2, "training mode must sample fresh masks");
        enc.set_training(false);
    }

    #[test]
    fn one_gradient_step_reduces_loss() {
        // Minimal end-to-end sanity: encoder + SGD shrinks a fixed-target loss.
        let enc = TransformerEncoder::new("e", &cfg(NormPlacement::PreNorm), 6);
        let x = Tensor::randn(&[2, 4, 16], 7);
        let target = Tensor::randn(&[2, 4, 16], 8);
        let run = |backprop: bool| {
            let tape = Tape::new();
            let y = enc.forward(&tape, tape.input(x.clone()));
            let loss = y.mse_loss(&target);
            let v = loss.value().item();
            if backprop {
                tape.backward(loss);
            }
            v
        };
        let l0 = run(true);
        for p in enc.params() {
            p.update(|v, g| {
                for (vi, gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi -= 0.05 * gi;
                }
            });
            p.zero_grad();
        }
        let l1 = run(false);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }
}
