//! Activation functions as a small closed enum.

use ntt_tensor::Var;

/// Pointwise nonlinearity. A closed enum (not a trait object) so model
/// configs stay `Copy` and checkpointable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    /// GELU (tanh approximation) — the transformer default.
    Gelu,
    Tanh,
    /// No-op, for heads that end in a regression output.
    Identity,
}

impl Activation {
    /// Apply on the tape.
    pub fn forward<'t>(&self, x: Var<'t>) -> Var<'t> {
        match self {
            Activation::Relu => x.relu(),
            Activation::Gelu => x.gelu(),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn relu_clamps_negatives() {
        let tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        let y = Activation::Relu.forward(x).value();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        let tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![0.0, 1.0, -1.0], &[3]));
        let y = Activation::Gelu.forward(x).value();
        assert!((y.data()[0]).abs() < 1e-6);
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
        assert!((y.data()[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn identity_is_noop() {
        let tape = Tape::new();
        let t = Tensor::randn(&[4], 1);
        let x = tape.input(t.clone());
        assert_eq!(Activation::Identity.forward(x).value(), t);
    }

    #[test]
    fn tanh_saturates() {
        let tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![100.0, -100.0], &[2]));
        let y = Activation::Tanh.forward(x).value();
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
        assert!((y.data()[1] + 1.0).abs() < 1e-6);
    }
}
