//! Optimizers, learning-rate schedules, and gradient clipping.

use ntt_tensor::{Param, ParamGrads, Tensor};
use std::collections::BTreeMap;

/// Learning-rate schedule, evaluated per optimizer step.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Linear warmup to `peak` over `warmup` steps, then cosine decay to
    /// `peak * floor_frac` at `total` steps (the transformer default).
    WarmupCosine {
        peak: f32,
        warmup: usize,
        total: usize,
        floor_frac: f32,
    },
    /// Multiply by `gamma` every `every` steps.
    StepDecay { base: f32, gamma: f32, every: usize },
}

impl LrSchedule {
    /// Learning rate at a zero-based step index.
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::WarmupCosine {
                peak,
                warmup,
                total,
                floor_frac,
            } => {
                if warmup > 0 && step < warmup {
                    return peak * (step + 1) as f32 / warmup as f32;
                }
                let span = total.saturating_sub(warmup).max(1);
                let t = ((step - warmup).min(span)) as f32 / span as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                let floor = peak * floor_frac;
                floor + (peak - floor) * cos
            }
            LrSchedule::StepDecay { base, gamma, every } => {
                base * gamma.powi((step / every.max(1)) as i32)
            }
        }
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (useful for divergence diagnostics).
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params {
        if !p.is_trainable() {
            continue;
        }
        let g = p.grad();
        sq += g
            .data()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>();
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if !p.is_trainable() {
                continue;
            }
            // scale the stored gradient in place
            let g = p.grad().map(|x| x * scale);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
    }
    norm
}

/// [`clip_grad_norm`] for a reduced [`ParamGrads`] bundle (the
/// data-parallel trainer's path: gradients never live in the `Param`
/// slots, so clipping operates on the bundle itself). Returns the
/// pre-clip global L2 norm.
pub fn clip_param_grads(grads: &mut ParamGrads, max_norm: f32) -> f32 {
    let norm = grads.global_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale(max_norm / norm);
    }
    norm
}

/// Adam (Kingma & Ba 2015) with decoupled weight decay (AdamW) and
/// bias-corrected moments. State is keyed by parameter identity, so
/// freezing/unfreezing parameters between phases keeps their moments.
pub struct Adam {
    params: Vec<Param>,
    schedule: LrSchedule,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: usize,
    state: BTreeMap<usize, (Tensor, Tensor)>,
}

impl Adam {
    /// Standard betas (0.9, 0.999); no weight decay.
    pub fn new(params: Vec<Param>, schedule: LrSchedule) -> Self {
        Adam {
            params,
            schedule,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            state: BTreeMap::new(),
        }
    }

    /// Builder: decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.schedule.at(self.step)
    }

    /// Parameters this optimizer manages.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Advance the step counter; returns `(lr, bias corrections)`.
    fn begin_step(&mut self) -> (f32, f32, f32) {
        let lr = self.schedule.at(self.step);
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        (lr, bc1, bc2)
    }

    /// Apply one update from the per-`Param` gradient slots, then zero
    /// them (the single-threaded path).
    pub fn step(&mut self) {
        let (lr, bc1, bc2) = self.begin_step();
        for p in &self.params {
            if !p.is_trainable() {
                p.zero_grad();
                continue;
            }
            let g = p.grad();
            adam_apply(
                &mut self.state,
                AdamHyper {
                    beta1: self.beta1,
                    beta2: self.beta2,
                    eps: self.eps,
                    weight_decay: self.weight_decay,
                },
                p,
                &g,
                (lr, bc1, bc2),
            );
            p.zero_grad();
        }
    }

    /// Apply one update from a reduced [`ParamGrads`] bundle (the
    /// data-parallel path). The `Param` gradient slots are neither read
    /// nor written: gradients live only in the bundle, so there is
    /// nothing to zero afterwards. Parameters managed by this optimizer
    /// but absent from the bundle (frozen, or not on this step's tape)
    /// are left untouched, preserving their moments exactly as the
    /// slot-based path does.
    pub fn step_with(&mut self, grads: &ParamGrads) {
        let (lr, bc1, bc2) = self.begin_step();
        for (p, g) in grads.iter() {
            if !p.is_trainable() {
                continue;
            }
            adam_apply(
                &mut self.state,
                AdamHyper {
                    beta1: self.beta1,
                    beta2: self.beta2,
                    eps: self.eps,
                    weight_decay: self.weight_decay,
                },
                p,
                g,
                (lr, bc1, bc2),
            );
        }
    }
}

/// Adam's Copy hyper-parameters, bundled so the update helper can
/// borrow the moment state mutably while the param list stays borrowed.
#[derive(Clone, Copy)]
struct AdamHyper {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
}

/// Moment update + parameter write for one `(param, grad)` pair;
/// `sched` is `(lr, bias correction 1, bias correction 2)`.
fn adam_apply(
    state: &mut BTreeMap<usize, (Tensor, Tensor)>,
    h: AdamHyper,
    p: &Param,
    g: &Tensor,
    sched: (f32, f32, f32),
) {
    let (lr, bc1, bc2) = sched;
    let (m, v) = state
        .entry(p.key())
        .or_insert_with(|| (Tensor::zeros(g.shape()), Tensor::zeros(g.shape())));
    for ((mi, vi), gi) in m
        .data_mut()
        .iter_mut()
        .zip(v.data_mut().iter_mut())
        .zip(g.data().iter())
    {
        *mi = h.beta1 * *mi + (1.0 - h.beta1) * gi;
        *vi = h.beta2 * *vi + (1.0 - h.beta2) * gi * gi;
    }
    let (md, vd) = (m.data(), v.data());
    p.update(|value, _| {
        for (i, val) in value.data_mut().iter_mut().enumerate() {
            let mhat = md[i] / bc1;
            let vhat = vd[i] / bc2;
            *val -= lr * (mhat / (vhat.sqrt() + h.eps) + h.weight_decay * *val);
        }
    });
}

/// Plain SGD with optional momentum — the simple baseline optimizer.
pub struct Sgd {
    params: Vec<Param>,
    schedule: LrSchedule,
    momentum: f32,
    velocity: BTreeMap<usize, Tensor>,
    step: usize,
}

impl Sgd {
    pub fn new(params: Vec<Param>, schedule: LrSchedule, momentum: f32) -> Self {
        Sgd {
            params,
            schedule,
            momentum,
            velocity: BTreeMap::new(),
            step: 0,
        }
    }

    /// Apply one update from accumulated gradients, then zero them.
    pub fn step(&mut self) {
        let lr = self.schedule.at(self.step);
        self.step += 1;
        for p in &self.params {
            if !p.is_trainable() {
                p.zero_grad();
                continue;
            }
            let g = p.grad();
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.key())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                for (vi, gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi = self.momentum * *vi + gi;
                }
                let vd = v.clone();
                p.update(|value, _| {
                    for (val, vi) in value.data_mut().iter_mut().zip(vd.data()) {
                        *val -= lr * vi;
                    }
                });
            } else {
                p.update(|value, grad| {
                    for (val, gi) in value.data_mut().iter_mut().zip(grad.data()) {
                        *val -= lr * gi;
                    }
                });
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    fn quadratic_loss(p: &Param) -> f32 {
        // loss = mean((w - 3)^2): minimum at w = 3.
        let tape = Tape::new();
        let w = tape.param(p);
        let loss = w.mse_loss(&Tensor::full(&p.shape(), 3.0));
        let v = loss.value().item();
        tape.backward(loss);
        v
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(&[4]));
        let mut opt = Adam::new(vec![p.clone()], LrSchedule::Constant(0.1));
        for _ in 0..300 {
            quadratic_loss(&p);
            opt.step();
        }
        assert!(p.value().allclose(&Tensor::full(&[4], 3.0), 1e-2));
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let mut opt = Sgd::new(vec![p.clone()], LrSchedule::Constant(0.05), 0.9);
        for _ in 0..200 {
            quadratic_loss(&p);
            opt.step();
        }
        assert!(p.value().allclose(&Tensor::full(&[2], 3.0), 1e-2));
    }

    #[test]
    fn frozen_params_are_not_updated_but_grads_cleared() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_trainable(false);
        let mut opt = Adam::new(vec![p.clone()], LrSchedule::Constant(0.1));
        // Manually force a gradient (accumulate_grad skips frozen params).
        p.set_trainable(true);
        p.accumulate_grad(&Tensor::ones(&[2]));
        p.set_trainable(false);
        opt.step();
        assert_eq!(p.value().data(), &[0.0, 0.0]);
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            warmup: 10,
            total: 110,
            floor_frac: 0.1,
        };
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        assert!(s.at(50) < 1.0);
        assert!((s.at(1000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0, 0.0], &[3]));
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((p.grad().norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let q = Param::new("q", Tensor::zeros(&[1]));
        q.accumulate_grad(&Tensor::from_vec(vec![0.5], &[1]));
        clip_grad_norm(std::slice::from_ref(&q), 1.0);
        assert!((q.grad().item() - 0.5).abs() < 1e-7);
    }

    #[test]
    fn step_with_bundle_matches_slot_path_bitwise() {
        // Same model, same gradient, two delivery mechanisms: the
        // reduced-bundle path must produce bit-identical parameters.
        let mk = || Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]));
        let (a, b) = (mk(), mk());
        let mut opt_a = Adam::new(vec![a.clone()], LrSchedule::Constant(0.05));
        let mut opt_b = Adam::new(vec![b.clone()], LrSchedule::Constant(0.05));
        for _ in 0..5 {
            // Slot path.
            let tape = Tape::new();
            let loss = tape.param(&a).mse_loss(&Tensor::full(&[3], 3.0));
            tape.backward(loss);
            opt_a.step();
            // Bundle path.
            let tape = Tape::new();
            let loss = tape.param(&b).mse_loss(&Tensor::full(&[3], 3.0));
            let bundle = tape.backward_params(loss);
            opt_b.step_with(&bundle);
            assert_eq!(a.value(), b.value());
            assert_eq!(b.grad().data(), &[0.0; 3], "bundle path leaves slots clean");
        }
        assert_eq!(opt_a.steps(), opt_b.steps());
    }

    #[test]
    fn clip_param_grads_matches_slot_clipping() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let tape = Tape::new();
        // loss with a known large gradient
        let loss = tape
            .param(&p)
            .add_scalar(10.0)
            .mse_loss(&Tensor::zeros(&[3]));
        let mut bundle = tape.backward_params(loss.scale(100.0));
        let pre = clip_param_grads(&mut bundle, 1.0);
        assert!(pre > 1.0);
        assert!((bundle.global_norm() - 1.0).abs() < 1e-5);
        // Below the threshold: untouched.
        let n_before = bundle.global_norm();
        let pre2 = clip_param_grads(&mut bundle, 5.0);
        assert_eq!(pre2, n_before);
        assert_eq!(bundle.global_norm(), n_before);
    }

    #[test]
    fn adam_state_survives_freeze_unfreeze() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p.clone()], LrSchedule::Constant(0.1));
        quadratic_loss(&p);
        opt.step();
        let after_one = p.value().item();
        p.set_trainable(false);
        quadratic_loss(&p);
        opt.step();
        assert_eq!(p.value().item(), after_one, "frozen step must not move w");
        p.set_trainable(true);
        quadratic_loss(&p);
        opt.step();
        assert!(p.value().item() > after_one, "unfrozen step moves w again");
    }
}
