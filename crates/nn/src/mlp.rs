//! Multilayer perceptron — the paper's replaceable "decoder" / task head.
//!
//! BERT-style pre-train/fine-tune keeps the transformer trunk and swaps a
//! small MLP head per task (§2, Fig. 2b/3). `Mlp` is that head.

use crate::activation::Activation;
use crate::linear::Linear;
use crate::module::Module;
use ntt_tensor::{Param, Tape, Var};

/// A stack of linear layers with a pointwise activation between them
/// (none after the final layer: heads regress unbounded values).
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build from a width list, e.g. `[64, 32, 1]` = two layers.
    pub fn new(name: &str, widths: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                Linear::new(
                    &format!("{name}.fc{i}"),
                    w[0],
                    w[1],
                    seed.wrapping_add(i as u64 * 31),
                )
            })
            .collect();
        Mlp { layers, activation }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.layers.first().unwrap().in_features()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.layers.last().unwrap().out_features()
    }

    /// Apply on the tape.
    pub fn forward<'t>(&self, tape: &'t Tape, mut x: Var<'t>) -> Var<'t> {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, x);
            if i != last {
                x = self.activation.forward(x);
            }
        }
        x
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn widths_define_structure() {
        let m = Mlp::new("head", &[64, 32, 1], Activation::Relu, 0);
        assert_eq!(m.in_features(), 64);
        assert_eq!(m.out_features(), 1);
        assert_eq!(m.num_params(), 64 * 32 + 32 + 32 + 1);
    }

    #[test]
    fn forward_shape() {
        let m = Mlp::new("head", &[8, 4, 2], Activation::Gelu, 1);
        let tape = Tape::new();
        let y = m.forward(&tape, tape.input(Tensor::randn(&[5, 8], 2)));
        assert_eq!(y.shape(), vec![5, 2]);
    }

    #[test]
    fn no_activation_after_last_layer_allows_negative_outputs() {
        let m = Mlp::new("head", &[4, 4, 1], Activation::Relu, 3);
        let tape = Tape::new();
        let y = m.forward(&tape, tape.input(Tensor::randn(&[200, 4], 4)));
        assert!(
            y.value().data().iter().any(|&v| v < 0.0),
            "regression head should produce negative values"
        );
    }

    #[test]
    fn single_layer_is_linear() {
        let m = Mlp::new("head", &[3, 2], Activation::Relu, 5);
        assert_eq!(m.params().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_trivial_widths() {
        Mlp::new("head", &[3], Activation::Relu, 0);
    }
}
