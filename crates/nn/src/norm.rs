//! Layer normalization module (affine, over the last axis).

use crate::module::Module;
use ntt_tensor::{Param, Tape, Tensor, Var};

/// Affine layer norm: `y = (x - mean) / sqrt(var + eps) * gamma + beta`,
/// statistics taken over the last axis.
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `dim` features.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Apply on the tape.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        x.layer_norm(tape.param(&self.gamma), tape.param(&self.beta), self.eps)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_init_normalizes() {
        let ln = LayerNorm::new("ln", 8);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[4, 8], 1).map(|v| v * 3.0 + 5.0));
        let y = ln.forward(&tape, x).value();
        for row in y.data().chunks(8) {
            let mean = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn affine_params_shift_and_scale() {
        let ln = LayerNorm::new("ln", 4);
        ln.gamma.set_value(Tensor::full(&[4], 2.0));
        ln.beta.set_value(Tensor::full(&[4], 10.0));
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 4], 2));
        let y = ln.forward(&tape, x).value();
        for row in y.data().chunks(4) {
            let mean = row.iter().sum::<f32>() / 4.0;
            assert!((mean - 10.0).abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn params_exposed() {
        let ln = LayerNorm::new("ln", 4);
        assert_eq!(ln.num_params(), 8);
    }
}
