//! The [`Head`] trait: a replaceable task head ("decoder" in the
//! paper's BERT-inspired terminology).
//!
//! The transfer story of Fig. 1 hinges on heads being swappable: the
//! pre-trained trunk stays, and each new task attaches a small decoder
//! that reads the encoded window (plus, for some tasks, an auxiliary
//! per-sample input such as a message size). This trait is the uniform
//! surface the trainer, the checkpoint format, and the `Experiment`
//! pipeline program against — adding a task means implementing `Head`
//! (and a `TaskDataset`), never touching the engine.

use crate::module::Module;
use ntt_tensor::{Tape, Var};

/// A replaceable task head over the encoder output.
///
/// `Send + Sync` is required because the data-parallel trainer shares
/// one head across worker threads and the serving engine holds boxed
/// heads inside `Arc`-shared, thread-pooled engines; `Module` supplies
/// parameter plumbing (uniquely named parameters, so checkpoints can
/// address them).
pub trait Head: Module + Send + Sync {
    /// Stable kind descriptor, e.g. `"delay"`. Written into
    /// self-describing checkpoints and used to rebuild the head on
    /// load, so it must never change for a shipped head.
    fn kind(&self) -> &'static str;

    /// Encoder width (`d_model`) this head was built for.
    fn d_model(&self) -> usize;

    /// Whether [`Head::forward_head`] requires the auxiliary input.
    fn needs_aux(&self) -> bool {
        false
    }

    /// Forward over the encoded window `[B, S, D]`, with an optional
    /// auxiliary per-sample input `[B, 1]` (e.g. the MCT task's message
    /// size), producing a `[B, 1]` prediction.
    fn forward_head<'t>(&self, tape: &'t Tape, encoded: Var<'t>, aux: Option<Var<'t>>) -> Var<'t>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Mlp;
    use ntt_tensor::{Param, Tensor};

    /// A minimal custom head, as a downstream crate would write one.
    struct PoolHead(Mlp);
    impl Module for PoolHead {
        fn params(&self) -> Vec<Param> {
            self.0.params()
        }
    }
    impl Head for PoolHead {
        fn kind(&self) -> &'static str {
            "pool"
        }
        fn d_model(&self) -> usize {
            self.0.in_features()
        }
        fn forward_head<'t>(
            &self,
            tape: &'t Tape,
            encoded: Var<'t>,
            _aux: Option<Var<'t>>,
        ) -> Var<'t> {
            self.0.forward(tape, encoded.mean_axis1())
        }
    }

    #[test]
    fn custom_heads_plug_in_through_the_trait() {
        let head = PoolHead(Mlp::new("pool_head", &[8, 4, 1], Activation::Gelu, 0));
        assert_eq!(head.kind(), "pool");
        assert_eq!(head.d_model(), 8);
        assert!(!head.needs_aux());
        let tape = Tape::new();
        let enc = tape.input(Tensor::randn(&[3, 6, 8], 1));
        let out = head.forward_head(&tape, enc, None);
        assert_eq!(out.shape(), vec![3, 1]);
        // Works as a trait object (how the pipeline holds loaded heads).
        let boxed: Box<dyn Head> = Box::new(head);
        assert!(boxed.num_params() > 0);
    }
}
