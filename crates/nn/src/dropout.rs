//! Inverted dropout.
//!
//! The mask is sampled outside the tape and applied with `mul_const`, so
//! no gradient flows into the randomness. Uses inverted scaling
//! (kept activations are multiplied by `1/(1-p)`) so evaluation needs no
//! rescaling.

use ntt_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dropout layer with explicit train/eval state and its own RNG stream.
pub struct Dropout {
    p: f32,
    rng: std::cell::RefCell<StdRng>,
    training: std::cell::Cell<bool>,
}

impl Dropout {
    /// Dropout with probability `p` of zeroing each activation.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: std::cell::RefCell::new(StdRng::seed_from_u64(seed)),
            training: std::cell::Cell::new(true),
        }
    }

    /// Enable or disable dropout (disabled = identity).
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Apply on the tape.
    pub fn forward<'t>(&self, x: Var<'t>) -> Var<'t> {
        if !self.training.get() || self.p == 0.0 {
            return x;
        }
        let shape = x.shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.borrow_mut();
        let mask: Vec<f32> = (0..shape.iter().product::<usize>())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        x.mul_const(&Tensor::from_vec(mask, &shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let tape = Tape::new();
        let t = Tensor::randn(&[100], 2);
        let y = d.forward(tape.input(t.clone())).value();
        assert_eq!(y, t);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 1);
        let tape = Tape::new();
        let t = Tensor::randn(&[50], 3);
        assert_eq!(d.forward(tape.input(t.clone())).value(), t);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let d = Dropout::new(0.3, 4);
        let tape = Tape::new();
        let t = Tensor::ones(&[20_000]);
        let y = d.forward(tape.input(t)).value();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "zero fraction {frac}");
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }
}
