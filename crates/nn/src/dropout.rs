//! Inverted dropout.
//!
//! The mask is sampled outside the tape and applied with `mul_const`, so
//! no gradient flows into the randomness. Uses inverted scaling
//! (kept activations are multiplied by `1/(1-p)`) so evaluation needs no
//! rescaling.
//!
//! Randomness comes from the **tape's** deterministic RNG stream
//! ([`ntt_tensor::Tape::rng_next`]), salted per layer, rather than from
//! mutable layer state. That keeps the layer `Sync` (data-parallel
//! workers share one model across threads) and makes every forward pass
//! a pure function of `(tape seed, call order, layer salt)` — the
//! property the trainer's bit-reproducibility contract rests on.

use ntt_tensor::{splitmix64, Tensor, Var};
use std::sync::atomic::{AtomicBool, Ordering};

/// Dropout layer with explicit train/eval state and a per-layer salt
/// decorrelating its masks from sibling layers on the same tape.
pub struct Dropout {
    p: f32,
    salt: u64,
    training: AtomicBool,
}

impl Dropout {
    /// Dropout with probability `p` of zeroing each activation. `seed`
    /// salts this layer's masks within a tape's stream.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            salt: seed,
            training: AtomicBool::new(true),
        }
    }

    /// Enable or disable dropout (disabled = identity).
    pub fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }

    /// Apply on the tape.
    pub fn forward<'t>(&self, x: Var<'t>) -> Var<'t> {
        if !self.training.load(Ordering::Relaxed) || self.p == 0.0 {
            return x;
        }
        let shape = x.shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut state = x.tape().rng_next() ^ self.salt;
        let mask: Vec<f32> = (0..shape.iter().product::<usize>())
            .map(|_| {
                // Top 24 bits -> uniform [0, 1).
                let u = (splitmix64(&mut state) >> 40) as f32 / (1u32 << 24) as f32;
                if u < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        x.mul_const(&Tensor::from_vec(mask, &shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let tape = Tape::new();
        let t = Tensor::randn(&[100], 2);
        let y = d.forward(tape.input(t.clone())).value();
        assert_eq!(y, t);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 1);
        let tape = Tape::new();
        let t = Tensor::randn(&[50], 3);
        assert_eq!(d.forward(tape.input(t.clone())).value(), t);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let d = Dropout::new(0.3, 4);
        let tape = Tape::new();
        let t = Tensor::ones(&[20_000]);
        let y = d.forward(tape.input(t)).value();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "zero fraction {frac}");
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn masks_are_a_pure_function_of_tape_seed() {
        let d = Dropout::new(0.5, 7);
        let t = Tensor::ones(&[64]);
        let one = |seed: u64| {
            let tape = Tape::with_seed(seed);
            d.forward(tape.input(t.clone())).value()
        };
        assert_eq!(one(9), one(9), "same seed, same mask");
        assert_ne!(one(9), one(10), "different seeds decorrelate");
        // Two draws on one tape advance the stream (fresh masks).
        let tape = Tape::with_seed(9);
        let a = d.forward(tape.input(t.clone())).value();
        let b = d.forward(tape.input(t.clone())).value();
        assert_ne!(a, b, "stream must advance between forwards");
    }

    #[test]
    fn fresh_unseeded_tapes_draw_fresh_masks() {
        // The ad-hoc training pattern — a new `Tape::new()` per step —
        // must keep sampling fresh masks (a fixed mask would silently
        // turn dropout into static sparsification).
        let d = Dropout::new(0.5, 11);
        let t = Tensor::ones(&[64]);
        let a = {
            let tape = Tape::new();
            d.forward(tape.input(t.clone())).value()
        };
        let b = {
            let tape = Tape::new();
            d.forward(tape.input(t)).value()
        };
        assert_ne!(a, b, "per-step tapes must not repeat masks");
    }

    #[test]
    fn sibling_layers_are_decorrelated() {
        let a = Dropout::new(0.5, 1);
        let b = Dropout::new(0.5, 2);
        let t = Tensor::ones(&[64]);
        let tape_a = Tape::with_seed(3);
        let tape_b = Tape::with_seed(3);
        let ya = a.forward(tape_a.input(t.clone())).value();
        let yb = b.forward(tape_b.input(t)).value();
        assert_ne!(ya, yb, "salt must decorrelate layers");
    }
}
