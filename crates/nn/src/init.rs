//! Weight initializers.
//!
//! Transformers are sensitive to initialization scale; these follow the
//! standard Glorot/He recipes. All are deterministic in the given seed.

use ntt_tensor::Tensor;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for linear layers feeding into soft nonlinearities.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(&[fan_in, fan_out], -a, a, seed)
}

/// He/Kaiming normal: `N(0, 2 / fan_in)`, for ReLU-family activations.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(&[fan_in, fan_out], seed).map(|x| x * std)
}

/// Small-scale normal `N(0, std^2)` — used for output projections where
/// a near-zero start stabilizes early training.
pub fn scaled_normal(shape: &[usize], std: f32, seed: u64) -> Tensor {
    Tensor::randn(shape, seed).map(|x| x * std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_and_determinism() {
        let w = xavier_uniform(64, 64, 1);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
        assert_eq!(w, xavier_uniform(64, 64, 1));
        assert_ne!(w, xavier_uniform(64, 64, 2));
        assert_eq!(w.shape(), &[64, 64]);
    }

    #[test]
    fn kaiming_variance_matches_fan_in() {
        let w = kaiming_normal(128, 128, 3);
        let mean = w.mean();
        let var = w.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / w.numel() as f32;
        let expect = 2.0 / 128.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn scaled_normal_scale() {
        let w = scaled_normal(&[1000], 0.02, 4);
        let var = w.data().iter().map(|x| x * x).sum::<f32>() / 1000.0;
        assert!((var.sqrt() - 0.02).abs() < 0.005);
    }
}
