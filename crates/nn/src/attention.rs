//! Multi-head scaled dot-product self-attention.
//!
//! The mechanism behind Transformers (§2 of the paper): every output
//! position encodes its own information *and* its context. Cost is
//! quadratic in sequence length — the very property that motivates the
//! NTT's multi-timescale aggregation layer (and the `attention_scaling`
//! Criterion bench reproduces that scaling curve).

use crate::linear::Linear;
use crate::module::Module;
use ntt_tensor::{kernels, Param, Tape, Tensor, Var};

/// Multi-head self-attention with separate Q/K/V/O projections.
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    d_model: usize,
    n_heads: usize,
}

impl MultiHeadAttention {
    /// `d_model` must be divisible by `n_heads`.
    pub fn new(name: &str, d_model: usize, n_heads: usize, seed: u64) -> Self {
        assert!(n_heads > 0, "attention needs at least one head");
        assert_eq!(
            d_model % n_heads,
            0,
            "d_model {d_model} not divisible by n_heads {n_heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), d_model, d_model, seed ^ 0x51),
            wk: Linear::new(&format!("{name}.wk"), d_model, d_model, seed ^ 0x52),
            wv: Linear::new(&format!("{name}.wv"), d_model, d_model, seed ^ 0x53),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, seed ^ 0x54),
            d_model,
            n_heads,
        }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// The single forward path shared by [`Self::forward`] and
    /// [`Self::forward_with_weights`]: transpose-free scaled dot-product
    /// attention. Q/K/V stay in the head-interleaved `[B, T, H, dh]`
    /// layout their projections naturally reshape into, and the head
    /// merge is a plain reshape — no `Kᵀ` or axis-swap copy is ever
    /// materialized, in forward or backward.
    ///
    /// On **inference tapes** the score→softmax→context pipeline runs as
    /// one fused streaming-softmax op ([`Var::attn_fused`]): the
    /// `[B, H, T, T]` score matrix is never allocated, which is what
    /// makes batched serving win on FLOPs rather than lose to cache
    /// spills. On **recording tapes** the classic `attn_scores →
    /// scaled_softmax_last → attn_context` chain is kept — its backward
    /// reuses the materialized weights instead of recomputing
    /// exponentials, so training throughput is unchanged. The two paths
    /// agree to epsilon, not bitwise (the online softmax reorders the
    /// IEEE sequence); each is individually bit-deterministic across
    /// thread counts and batch compositions.
    fn attend<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        want_weights: bool,
    ) -> (Var<'t>, Option<Tensor>) {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects [B, T, D]");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d_model, "d_model mismatch");
        let h = self.n_heads;
        let dh = d / h;
        let scale = 1.0 / (dh as f32).sqrt();

        // Project; [B, T, D] reshapes to [B, T, H, dh] for free.
        let split = |v: Var<'t>| v.reshape(&[b, t, h, dh]);
        let q = split(self.wq.forward(tape, x));
        let k = split(self.wk.forward(tape, x));
        let v = split(self.wv.forward(tape, x));

        let (ctx, weights) = if tape.records_grad() {
            let attn = q.attn_scores(k).scaled_softmax_last(scale);
            (attn.attn_context(v), want_weights.then(|| attn.value()))
        } else {
            let ctx = q.attn_fused(k, v, scale);
            // Diagnostics only: materialize the weights off-tape, from
            // the detached Q/K values. The serving hot path never asks
            // for them, so the fused forward stays score-matrix-free.
            let w = want_weights.then(|| {
                let (vq, vk) = (q.value(), k.value());
                let mut s = vec![0.0; b * h * t * t];
                kernels::attn_scores(vq.data(), vk.data(), &mut s, b, t, h, dh);
                let mut w = vec![0.0; b * h * t * t];
                kernels::scaled_softmax_fwd(&s, scale, t, &mut w);
                Tensor::from_vec(w, &[b, h, t, t])
            });
            (ctx, w)
        };

        // Merge heads and apply the output projection.
        let merged = ctx.reshape(&[b, t, d]);
        (self.wo.forward(tape, merged), weights)
    }

    /// Self-attention over `x: [B, T, D] -> [B, T, D]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        self.attend(tape, x, false).0
    }

    /// Forward pass that also returns the attention weights `[B, H, T, T]`
    /// (diagnostics / interpretability; weights are a detached clone).
    pub fn forward_with_weights<'t>(&self, tape: &'t Tape, x: Var<'t>) -> (Var<'t>, Tensor) {
        let (out, weights) = self.attend(tape, x, true);
        (out, weights.expect("attend(want_weights) returns weights"))
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Param> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::{Tape, Tensor};

    #[test]
    fn output_shape_matches_input() {
        let mha = MultiHeadAttention::new("a", 16, 4, 0);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 6, 16], 1));
        assert_eq!(mha.forward(&tape, x).shape(), vec![2, 6, 16]);
    }

    #[test]
    fn attention_weights_are_row_stochastic() {
        let mha = MultiHeadAttention::new("a", 8, 2, 0);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[1, 5, 8], 2));
        let (_, w) = mha.forward_with_weights(&tape, x);
        assert_eq!(w.shape(), &[1, 2, 5, 5]);
        for row in w.data().chunks(5) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn output_depends_on_context_not_just_own_token() {
        // Same token value at position 0, different context at position 1:
        // the attention output for position 0 must differ — the paper's
        // "stick" example in §1.
        let mha = MultiHeadAttention::new("a", 8, 2, 3);
        let tape = Tape::new();
        let mut a = Tensor::randn(&[1, 2, 8], 4);
        let b = {
            let mut b = a.clone();
            for j in 0..8 {
                let v = b.at(&[0, 1, j]);
                b.set(&[0, 1, j], v + 1.0);
            }
            b
        };
        // Keep position 0 identical.
        for j in 0..8 {
            let v = b.at(&[0, 0, j]);
            a.set(&[0, 0, j], v);
        }
        let ya = mha.forward(&tape, tape.input(a)).value();
        let yb = mha.forward(&tape, tape.input(b)).value();
        let pos0_a: Vec<f32> = (0..8).map(|j| ya.at(&[0, 0, j])).collect();
        let pos0_b: Vec<f32> = (0..8).map(|j| yb.at(&[0, 0, j])).collect();
        assert_ne!(pos0_a, pos0_b);
    }

    #[test]
    fn single_head_equals_multi_head_param_count() {
        let a = MultiHeadAttention::new("a", 16, 1, 0);
        let b = MultiHeadAttention::new("b", 16, 4, 0);
        assert_eq!(a.num_params(), b.num_params());
        assert_eq!(a.num_params(), 4 * (16 * 16 + 16));
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mha = MultiHeadAttention::new("a", 8, 2, 5);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 4, 8], 6));
        let y = mha.forward(&tape, x);
        let loss = y.mse_loss(&Tensor::zeros(&[2, 4, 8]));
        tape.backward(loss);
        for p in mha.params() {
            assert!(p.grad().norm() > 0.0, "no gradient for {}", p.name());
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_heads() {
        MultiHeadAttention::new("a", 10, 3, 0);
    }

    #[test]
    fn grad_check_end_to_end_transpose_free_path() {
        // Finite-difference validation of the full fused pipeline:
        // projections -> attn_scores -> scaled_softmax -> attn_context
        // -> merge -> output projection, for every projection matrix.
        use ntt_tensor::grad_check::check_param_grad;
        let mha = MultiHeadAttention::new("a", 6, 2, 7);
        let x = Tensor::randn(&[2, 3, 6], 8).map(|v| v * 0.5);
        let target = Tensor::randn(&[2, 3, 6], 9);
        for p in [
            &mha.wq.weight,
            &mha.wk.weight,
            &mha.wv.weight,
            &mha.wo.weight,
            &mha.wq.bias,
        ] {
            p.zero_grad();
            let report = check_param_grad(p, 1e-2, |tape| {
                mha.forward(tape, tape.input(x.clone())).mse_loss(&target)
            });
            assert!(
                report.passes(2e-2),
                "gradient check failed for {}: {report:?}",
                p.name()
            );
        }
    }

    #[test]
    fn forward_with_weights_shares_the_forward_path() {
        // The two entry points are one implementation: outputs must be
        // bit-identical, not merely close — on both tape modes.
        let mha = MultiHeadAttention::new("a", 16, 4, 11);
        let x = Tensor::randn(&[2, 5, 16], 12);
        for tape in [Tape::with_seed(0), Tape::inference_with_seed(0)] {
            let y = mha.forward(&tape, tape.input(x.clone())).value();
            let (y2, w) = mha.forward_with_weights(&tape, tape.input(x.clone()));
            assert_eq!(y, y2.value());
            assert_eq!(w.shape(), &[2, 4, 5, 5]);
        }
    }

    #[test]
    fn inference_forward_matches_recording_within_eps() {
        // Inference tapes run the fused streaming-softmax attention, so
        // cross-mode equality is epsilon-level (the documented
        // contract), while inference-vs-inference stays bit-identical.
        let mha = MultiHeadAttention::new("a", 16, 4, 13);
        let x = Tensor::randn(&[3, 7, 16], 14);
        let run = |tape: &Tape| mha.forward(tape, tape.input(x.clone())).value();
        let recorded = run(&Tape::with_seed(1));
        let inferred = run(&Tape::inference_with_seed(1));
        let inferred2 = run(&Tape::inference_with_seed(99));
        assert!(recorded.allclose(&inferred, 1e-5), "fused path drifted");
        assert_eq!(inferred, inferred2, "inference must be bit-reproducible");
    }

    #[test]
    fn inference_weights_match_recording_weights() {
        // The fused path reconstructs diagnostic weights off-tape; they
        // must be row-stochastic and agree with the classic path.
        let mha = MultiHeadAttention::new("a", 8, 2, 15);
        let x = Tensor::randn(&[1, 5, 8], 16);
        let rec = Tape::with_seed(2);
        let inf = Tape::inference_with_seed(2);
        let (_, wr) = mha.forward_with_weights(&rec, rec.input(x.clone()));
        let (_, wi) = mha.forward_with_weights(&inf, inf.input(x));
        assert!(wr.allclose(&wi, 1e-5), "weights diverged across modes");
        for row in wi.data().chunks(5) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn inference_attend_never_allocates_score_matrix() {
        // The full attention layer — projections included — on an
        // inference tape must leave no [B,H,T,T]- or [B,T,T]-sized
        // buffer behind in the tape arena (t chosen so those lengths
        // collide with no projection/context shape).
        let (b, t, d, h) = (2usize, 19, 8, 2);
        let mha = MultiHeadAttention::new("a", d, h, 17);
        let x = Tensor::randn(&[b, t, d], 18);
        let mut tape = Tape::inference_with_seed(3);
        mha.forward(&tape, tape.input(x.clone())).value();
        tape.reset(3);
        let forbidden = [b * h * t * t, b * t * t, h * t * t, t * t];
        for (len, _) in tape.arena_bucket_lens() {
            assert!(
                !forbidden.contains(&len),
                "inference attention retired a score-matrix-sized buffer ({len})"
            );
        }
        // Sanity: the run did retire context/projection-sized buffers.
        assert!(tape.scratch_buffers() > 0);
    }
}
