//! The [`Module`] trait: a uniform handle over anything with parameters.

use ntt_tensor::Param;

/// Anything holding trainable parameters.
///
/// The contract is intentionally tiny — forward passes have
/// layer-specific signatures, so only parameter plumbing is shared.
pub trait Module {
    /// Every parameter owned (transitively) by this module, in a stable
    /// order. Checkpointing relies on the order being deterministic.
    fn params(&self) -> Vec<Param>;

    /// Total scalar parameter count.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Zero every gradient accumulator.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Freeze / unfreeze all parameters (used for the paper's
    /// "decoder only" fine-tuning mode, Table 2).
    fn set_trainable(&self, trainable: bool) {
        for p in self.params() {
            p.set_trainable(trainable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::Tensor;

    struct Two(Param, Param);
    impl Module for Two {
        fn params(&self) -> Vec<Param> {
            vec![self.0.clone(), self.1.clone()]
        }
    }

    #[test]
    fn default_methods_cover_all_params() {
        let m = Two(
            Param::new("a", Tensor::zeros(&[2, 3])),
            Param::new("b", Tensor::zeros(&[4])),
        );
        assert_eq!(m.num_params(), 10);
        m.params()[0].accumulate_grad(&Tensor::ones(&[2, 3]));
        m.zero_grad();
        assert_eq!(m.params()[0].grad().sum(), 0.0);
        m.set_trainable(false);
        assert!(!m.params()[1].is_trainable());
        m.set_trainable(true);
        assert!(m.params()[1].is_trainable());
    }
}
