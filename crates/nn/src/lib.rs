//! # ntt-nn
//!
//! Neural-network layers and optimizers on top of [`ntt_tensor`] — the
//! `torch.nn`/`torch.optim` substitute for the Network Traffic
//! Transformer reproduction (HotNets '22).
//!
//! Provides exactly the blocks Fig. 2/3 of the paper require:
//! linear layers, layer norm, activations, dropout, sinusoidal
//! positional encoding, multi-head self-attention, a pre-/post-LN
//! transformer encoder, MLP task heads, and Adam/SGD with LR schedules.
//!
//! ```
//! use ntt_nn::{EncoderConfig, Module, TransformerEncoder};
//! use ntt_tensor::{Tape, Tensor};
//!
//! let cfg = EncoderConfig::small(32, 4, 2);
//! let encoder = TransformerEncoder::new("enc", &cfg, 0);
//! let tape = Tape::new();
//! let x = tape.input(Tensor::randn(&[8, 48, 32], 1));
//! let y = encoder.forward(&tape, x);
//! assert_eq!(y.shape(), vec![8, 48, 32]);
//! ```

mod activation;
mod attention;
mod dropout;
mod head;
pub mod init;
mod linear;
mod mlp;
mod module;
mod norm;
mod optim;
mod positional;
mod transformer;

pub use activation::Activation;
pub use attention::MultiHeadAttention;
pub use dropout::Dropout;
pub use head::Head;
pub use linear::Linear;
pub use mlp::Mlp;
pub use module::Module;
pub use norm::LayerNorm;
pub use optim::{clip_grad_norm, clip_param_grads, Adam, LrSchedule, Sgd};
pub use positional::PositionalEncoding;
pub use transformer::{EncoderConfig, NormPlacement, TransformerEncoder, TransformerEncoderLayer};
