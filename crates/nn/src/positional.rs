//! Sinusoidal positional encoding (Vaswani et al. 2017).
//!
//! The NTT aggregated sequence (48 slots) has no recurrence, so position
//! must be injected explicitly. Fixed sinusoids are used rather than
//! learned embeddings: they extrapolate to other sequence lengths, which
//! matters when ablations change the slot count (48 vs 1008/21 etc.).

use ntt_tensor::{Tape, Tensor, Var};

/// Precomputed `[max_len, d_model]` sinusoid table.
pub struct PositionalEncoding {
    table: Tensor,
    d_model: usize,
}

impl PositionalEncoding {
    /// Build the table: `PE[pos, 2i] = sin(pos / 10000^(2i/d))`,
    /// `PE[pos, 2i+1] = cos(...)`.
    pub fn new(max_len: usize, d_model: usize) -> Self {
        let mut data = vec![0.0f32; max_len * d_model];
        for pos in 0..max_len {
            for i in 0..d_model / 2 {
                let freq = 1.0 / 10_000f64.powf(2.0 * i as f64 / d_model as f64);
                let angle = pos as f64 * freq;
                data[pos * d_model + 2 * i] = angle.sin() as f32;
                data[pos * d_model + 2 * i + 1] = angle.cos() as f32;
            }
        }
        PositionalEncoding {
            table: Tensor::from_vec(data, &[max_len, d_model]),
            d_model,
        }
    }

    /// Add positions to a `[B, T, D]` sequence (requires `T <= max_len`).
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "positional encoding expects [B, T, D]");
        let (t, d) = (shape[1], shape[2]);
        assert_eq!(d, self.d_model, "d_model mismatch");
        assert!(
            t <= self.table.shape()[0],
            "sequence length {t} exceeds table {}",
            self.table.shape()[0]
        );
        let pe = self.table.slice_axis1_2d(0, t);
        x.add(tape.input(pe))
    }
}

/// Helper on `Tensor`: rows `[start, start+len)` of a rank-2 tensor.
trait Slice2d {
    fn slice_axis1_2d(&self, start: usize, len: usize) -> Tensor;
}

impl Slice2d for Tensor {
    fn slice_axis1_2d(&self, start: usize, len: usize) -> Tensor {
        assert_eq!(self.rank(), 2);
        let d = self.shape()[1];
        let data = self.data()[start * d..(start + len) * d].to_vec();
        Tensor::from_vec(data, &[len, d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_match_formula() {
        let pe = PositionalEncoding::new(16, 8);
        // pos 0: sin(0)=0, cos(0)=1 alternating.
        for i in 0..4 {
            assert_eq!(pe.table.at(&[0, 2 * i]), 0.0);
            assert_eq!(pe.table.at(&[0, 2 * i + 1]), 1.0);
        }
        // pos 3, i=0: sin(3), cos(3)
        assert!((pe.table.at(&[3, 0]) - 3f32.sin()).abs() < 1e-5);
        assert!((pe.table.at(&[3, 1]) - 3f32.cos()).abs() < 1e-5);
    }

    #[test]
    fn rows_are_distinct_across_positions() {
        let pe = PositionalEncoding::new(48, 64);
        for p in 1..48 {
            let a: Vec<f32> = (0..64).map(|j| pe.table.at(&[0, j])).collect();
            let b: Vec<f32> = (0..64).map(|j| pe.table.at(&[p, j])).collect();
            assert_ne!(a, b, "position {p} identical to position 0");
        }
    }

    #[test]
    fn forward_adds_positions_per_batch() {
        let pe = PositionalEncoding::new(8, 4);
        let tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[2, 3, 4]));
        let y = pe.forward(&tape, x).value();
        for b in 0..2 {
            for t in 0..3 {
                for j in 0..4 {
                    assert_eq!(y.at(&[b, t, j]), pe.table.at(&[t, j]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds table")]
    fn rejects_sequences_longer_than_table() {
        let pe = PositionalEncoding::new(4, 4);
        let tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[1, 5, 4]));
        pe.forward(&tape, x);
    }
}
