//! The one parser for the `NTT_THREADS` environment knob.
//!
//! Every layer that fans work out — the fleet, the trainer, the serving
//! batcher, and each bench binary — honors the same environment
//! variable. Before this module each site re-implemented the parse (and
//! its warning) by hand; they drifted in defaults and wording. Callers
//! now state only their default, which is the one thing that
//! legitimately differs: the trainer treats *unset* as sequential
//! (`1`), the bench/serve binaries treat it as auto (`0` = one worker
//! per core).

/// `NTT_THREADS`, or `default` when unset or unparsable. An unparsable
/// value warns instead of failing silently: thread counts never change
/// results in this workspace (everything is bit-reproducible at any
/// fan-out), so a typo would otherwise be invisible — only hours of
/// wall-clock would differ.
pub fn env_threads(default: usize) -> usize {
    parse(std::env::var("NTT_THREADS").ok().as_deref(), default)
}

/// The pure half of [`env_threads`], separated so tests never have to
/// mutate the process-global environment (which would race with
/// concurrently running tests and clobber the CI matrix's
/// `NTT_THREADS` setting).
fn parse(raw: Option<&str>, default: usize) -> usize {
    match raw {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!(
                "warning: NTT_THREADS={s:?} is not an integer; using {default} ({})",
                if default == 0 {
                    "one worker per core"
                } else {
                    "sequential"
                }
            );
            default
        }),
        None => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_values() {
        assert_eq!(parse(None, 0), 0);
        assert_eq!(parse(None, 1), 1);
        assert_eq!(parse(Some("6"), 0), 6);
        assert_eq!(parse(Some("6"), 1), 6);
        assert_eq!(parse(Some("0"), 1), 0);
        assert_eq!(
            parse(Some("not-a-number"), 3),
            3,
            "unparsable falls back to default"
        );
    }
}
