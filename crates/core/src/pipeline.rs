//! The [`Experiment`] pipeline: the paper's full workflow — fleet sweep
//! → dataset build → pre-train → checkpoint → fine-tune → evaluate
//! against baselines — as chained stages with one shared seed and
//! normalization story.
//!
//! # Why a pipeline object
//!
//! Fig. 1's proposition is *share pre-trained models, not data*. Before
//! this module, every example and bench binary hand-wired the same ~60
//! lines: derive the window length from the model config, run the
//! fleet, build datasets, remember to thread the pre-training
//! normalizer into every fine-tuning dataset, construct model and head
//! with coordinated seeds, train, evaluate. Each copy was one missed
//! `Some(norm)` away from silently leaking statistics. `Experiment`
//! owns those invariants once.
//!
//! # Seed flow
//!
//! One experiment has exactly three seed roots, all recorded in the
//! checkpoint's provenance:
//! * **simulation** — the sweep's `base_seed`; the fleet derives one
//!   unique seed per shard ([`ntt_fleet::SeedSchedule`]), so traces are
//!   a pure function of the spec;
//! * **model** — `NttConfig::seed` initializes the trunk, and the
//!   pre-training head derives its init from the same value;
//! * **training** — `TrainConfig::seed` drives batch shuffling and the
//!   per-(step, shard) dropout streams.
//!
//! Every stage is bit-reproducible at any thread count (the fleet's
//! reorder buffer, the trainer's fixed-order gradient reduction), so a
//! seeded `Experiment` run is one deterministic value.
//!
//! # Normalization flow
//!
//! The feature normalizer is **fitted once**, on the pre-training
//! *training* split, and then flows forward only: into the held-out
//! pre-training evaluation, into the checkpoint (`NTTCKPT2` embeds it),
//! and into every fine-tuning dataset built through [`Pretrained`] —
//! the model's learned representations assume that scaling, so a
//! fine-tuning site must never re-fit it. Target normalizers (MCT,
//! drop counts) are task-local and fitted on the fine-tuning training
//! split, which is statistics the fine-tuning site legitimately owns.
//!
//! # The 10-line workflow
//!
//! ```no_run
//! use ntt_core::{Experiment, FinetuneOpts, NttConfig, Pretrained};
//! use ntt_fleet::SweepSpec;
//! use ntt_sim::scenarios::{Scenario, ScenarioConfig};
//!
//! let exp = Experiment::new(NttConfig::reduced(0)).stride(8);
//! let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, ScenarioConfig::tiny(1), 2));
//! pre.save("pretrained.ckpt").unwrap();                  // ship this file
//! // --- another site, another process: no config, no data travels ---
//! let shared = Pretrained::load("pretrained.ckpt").unwrap();
//! let ft = shared.finetune(
//!     &SweepSpec::single(Scenario::Case1, ScenarioConfig::tiny(2), 2),
//!     &FinetuneOpts::decoder_only().fraction(0.1),
//! );
//! println!("zero-shot {:?} -> fine-tuned {}", ft.zero_shot, ft.eval.mse_norm);
//! ```

use crate::baselines::{
    delay_ewma_mse, delay_last_observed_mse, mct_ewma_mse, mct_last_observed_mse, EWMA_ALPHA,
};
use crate::checkpoint::Checkpoint;
use crate::config::NttConfig;
use crate::model::{build_head, copy_params, DelayHead, MctHead, Ntt};
use crate::task::HeadTask;
use crate::trainer::{
    evaluate, train, EvalReport, ParStrategy, TrainConfig, TrainMode, TrainReport,
};
use ntt_data::{
    DatasetConfig, DelayDataset, DropDataset, MctDataset, Normalizer, TaskDataset, TraceData,
};
use ntt_fleet::{run_fleet_dataset, FleetConfig, FleetReport, SweepSpec};
use ntt_nn::{Head, Module};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Shared stage configuration: model, windowing, training loop, and the
/// thread knob that drives both the fleet and the trainer.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    pub model: NttConfig,
    /// Window extraction; `seq_len` is always kept equal to
    /// `model.seq_len()` — the one coupling everyone used to re-derive
    /// by hand.
    pub data: DatasetConfig,
    /// Training-loop hyper-parameters. Its `par` field is ignored by
    /// the pipeline stages: [`Experiment::threads`] is the single
    /// source of truth for parallelism, applied to the fleet, the
    /// trainer, and evaluation alike.
    pub train: TrainConfig,
    /// Worker threads for simulation and training (0 = one per core).
    /// Purely a throughput knob: all results are bit-identical at any
    /// value.
    pub threads: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
}

impl Experiment {
    /// A pipeline for the given model. Dataset and training parameters
    /// start from their defaults; chain the builder methods (or set the
    /// public fields) to adjust them.
    pub fn new(model: NttConfig) -> Experiment {
        Experiment {
            model,
            data: DatasetConfig {
                seq_len: model.seq_len(),
                ..DatasetConfig::default()
            },
            train: TrainConfig::default(),
            threads: 0,
            eval_batch: 64,
        }
    }

    /// Window stride in packets.
    pub fn stride(mut self, stride: usize) -> Experiment {
        self.data.stride = stride;
        self
    }

    /// Fraction of each run (by time) reserved for testing.
    pub fn test_fraction(mut self, f: f64) -> Experiment {
        self.data.test_fraction = f;
        self
    }

    /// Training-loop hyper-parameters (shared by pre-training and
    /// fine-tuning; override per stage by mutating the field between
    /// calls).
    pub fn with_train(mut self, train: TrainConfig) -> Experiment {
        self.train = train;
        self
    }

    /// Worker threads for the whole pipeline (0 = one per core).
    pub fn threads(mut self, threads: usize) -> Experiment {
        self.threads = threads;
        self
    }

    fn ds_cfg(&self) -> DatasetConfig {
        DatasetConfig {
            seq_len: self.model.seq_len(),
            ..self.data
        }
    }

    fn par(&self) -> ParStrategy {
        ParStrategy::with_threads(self.threads)
    }

    /// The training config the stages actually run: `self.train` with
    /// its parallelism pinned to the shared `threads` knob, so builder
    /// call order (`threads` before or after `with_train`) cannot
    /// silently change the fan-out.
    fn train_cfg(&self) -> TrainConfig {
        TrainConfig {
            par: self.par(),
            ..self.train
        }
    }

    /// Stage 1: run the sweep with streaming ingestion (raw traces are
    /// folded into the compact dataset shard by shard).
    pub fn sweep(&self, spec: &SweepSpec) -> (Arc<TraceData>, FleetReport) {
        run_fleet_dataset(spec, &FleetConfig::with_threads(self.threads))
    }

    /// Stage 2 helper: build delay train/test datasets. `norm = None`
    /// fits the normalizer on the training windows (pre-training);
    /// `Some` reuses existing statistics (fine-tuning). The model
    /// config's feature-ablation mask is applied to both splits, so an
    /// ablated experiment cannot accidentally train on full features.
    pub fn delay_datasets(
        &self,
        data: Arc<TraceData>,
        norm: Option<Normalizer>,
    ) -> (DelayDataset, DelayDataset) {
        let (train_ds, test_ds) = DelayDataset::build(data, self.ds_cfg(), norm);
        (
            train_ds.with_mask(self.model.features),
            test_ds.with_mask(self.model.features),
        )
    }

    /// Stages 1–3 chained: sweep → dataset → pre-train the delay task,
    /// evaluating on the held-out split.
    pub fn pretrain(&self, spec: &SweepSpec) -> Pretrained {
        let (data, fleet) = self.sweep(spec);
        self.pretrain_on(data, spec.describe(), Some(fleet))
    }

    /// Stage 3 alone, for callers that already hold preprocessed data
    /// (`grid` labels the data's origin in the checkpoint provenance).
    pub fn pretrain_on(
        &self,
        data: Arc<TraceData>,
        grid: String,
        fleet: Option<FleetReport>,
    ) -> Pretrained {
        let (train_ds, test_ds) = self.delay_datasets(data, None);
        let model = Ntt::new(self.model);
        let head = DelayHead::new(self.model.d_model, self.model.seed);
        let report = train(
            &model,
            &HeadTask::new(&head, &train_ds),
            &self.train_cfg(),
            TrainMode::Full,
        );
        let eval = evaluate(
            &model,
            &HeadTask::new(&head, &test_ds),
            self.eval_batch,
            &self.par(),
        );
        let test_target_variance = test_ds.target_variance();
        // Besides human-readable provenance, the entries carry the window
        // geometry (stride, test fraction) so a loading site rebuilds
        // datasets exactly as the pre-training site did.
        let provenance = vec![
            ("scenario_grid".to_string(), grid),
            ("model_seed".to_string(), self.model.seed.to_string()),
            ("train_seed".to_string(), self.train.seed.to_string()),
            ("train_steps".to_string(), report.steps.to_string()),
            ("epochs".to_string(), self.train.epochs.to_string()),
            ("train_windows".to_string(), train_ds.len().to_string()),
            ("stride".to_string(), self.data.stride.to_string()),
            (
                "test_fraction".to_string(),
                self.data.test_fraction.to_string(),
            ),
        ];
        Pretrained {
            exp: *self,
            model,
            heads: vec![Box::new(head)],
            norm: train_ds.norm.clone(),
            report: Some(report),
            eval: Some(eval),
            fleet,
            test_target_variance: Some(test_target_variance),
            provenance,
        }
    }

    /// Wrap a freshly initialized, **untrained** model as a
    /// [`Pretrained`] carrying the given normalizer — the from-scratch
    /// comparison arm for tasks other than delay. E.g.
    /// `exp.untrained(norm).finetune_mct_on(data, &FinetuneOpts::full())`
    /// trains trunk and MCT head together with no pre-training.
    pub fn untrained(&self, norm: Normalizer) -> Pretrained {
        Pretrained {
            exp: *self,
            model: Ntt::new(self.model),
            heads: Vec::new(),
            norm,
            report: None,
            eval: None,
            fleet: None,
            test_target_variance: None,
            provenance: vec![("origin".to_string(), "untrained".to_string())],
        }
    }

    /// The comparison arm of Tables 2/3: train the full model **from
    /// scratch** directly on (a fraction of) the fine-tuning
    /// environment's data, with its own freshly fitted normalization
    /// (a scratch model never saw pre-training data).
    pub fn scratch(&self, spec: &SweepSpec, opts: &FinetuneOpts) -> Finetuned {
        let (data, _) = self.sweep(spec);
        self.scratch_on(data, opts)
    }

    /// [`Experiment::scratch`] over already-simulated data.
    pub fn scratch_on(&self, data: Arc<TraceData>, opts: &FinetuneOpts) -> Finetuned {
        let (train_all, test_ds) = self.delay_datasets(data, None);
        let train_ds = match opts.fraction {
            Some(f) => train_all.subsample(f, opts.seed),
            None => train_all,
        };
        let model = Ntt::new(self.model);
        let head = DelayHead::new(self.model.d_model, self.model.seed);
        let report = train(
            &model,
            &HeadTask::new(&head, &train_ds),
            &self.train_cfg(),
            TrainMode::Full,
        );
        let eval = evaluate(
            &model,
            &HeadTask::new(&head, &test_ds),
            self.eval_batch,
            &self.par(),
        );
        let baselines = vec![
            ("last-observed", delay_last_observed_mse(&test_ds)),
            ("ewma", delay_ewma_mse(&test_ds, EWMA_ALPHA)),
        ];
        Finetuned {
            task: "delay",
            model,
            head: Box::new(head),
            report,
            eval,
            zero_shot: None,
            baselines,
            train_windows: train_ds.len(),
            test_target_variance: test_ds.target_variance(),
        }
    }
}

/// A pre-trained model plus everything a fine-tuning site needs: the
/// heads, the feature normalizer, and the provenance trail. Produced by
/// [`Experiment::pretrain`] or reconstructed from a checkpoint by
/// [`Pretrained::load`].
pub struct Pretrained {
    pub exp: Experiment,
    pub model: Ntt,
    pub heads: Vec<Box<dyn Head>>,
    /// Feature normalizer fitted on the pre-training training split —
    /// reused by every downstream dataset (see module docs).
    pub norm: Normalizer,
    /// Pre-training report (absent when loaded from a checkpoint).
    pub report: Option<TrainReport>,
    /// Held-out pre-training evaluation (absent when loaded).
    pub eval: Option<EvalReport>,
    /// Fleet aggregates of the pre-training sweep, when one ran here.
    pub fleet: Option<FleetReport>,
    /// Variance of the held-out test targets (raw units) — divide
    /// `eval.mse_raw` by this for the paper's variance-relative MSE
    /// (1.0 = predicting the mean). Absent when loaded from a file.
    pub test_target_variance: Option<f64>,
    pub provenance: Vec<(String, String)>,
}

/// Fine-tuning options: which parameters move, and how much data the
/// paper's "10% dataset" subsampling keeps.
#[derive(Debug, Clone, Copy)]
pub struct FinetuneOpts {
    pub mode: TrainMode,
    /// Keep a seeded random fraction of the fine-tuning training
    /// windows (`None` = all of them).
    pub fraction: Option<f64>,
    /// Seed for the subsample draw.
    pub seed: u64,
}

impl FinetuneOpts {
    /// The cheap path pre-training enables: freeze the trunk, adapt the
    /// decoder (Table 2 "Decoder only").
    pub fn decoder_only() -> FinetuneOpts {
        FinetuneOpts {
            mode: TrainMode::DecoderOnly,
            fraction: None,
            seed: 0,
        }
    }

    /// Update trunk and head.
    pub fn full() -> FinetuneOpts {
        FinetuneOpts {
            mode: TrainMode::Full,
            fraction: None,
            seed: 0,
        }
    }

    /// Subsample the fine-tuning training set.
    pub fn fraction(mut self, f: f64) -> FinetuneOpts {
        self.fraction = Some(f);
        self
    }

    /// Seed for the subsample draw.
    pub fn seed(mut self, seed: u64) -> FinetuneOpts {
        self.seed = seed;
        self
    }
}

/// The outcome of one fine-tuning stage: the adapted model/head (the
/// shared pre-trained weights are never mutated — fine-tuning always
/// works on a weight-cloned copy), reports, and the comparisons the
/// paper makes (zero-shot, naive baselines).
pub struct Finetuned {
    /// Task label (`"delay"`, `"mct"`, `"drop"`, ...).
    pub task: &'static str,
    pub model: Ntt,
    pub head: Box<dyn Head>,
    pub report: TrainReport,
    /// Fine-tuned model on the fine-tuning test split.
    pub eval: EvalReport,
    /// The untouched pre-trained model on the same test split, when the
    /// pre-trained side already had a head for this task.
    pub zero_shot: Option<EvalReport>,
    /// Naive baselines on the same test split, in raw task units
    /// (comparable to `eval.mse_raw`).
    pub baselines: Vec<(&'static str, f64)>,
    /// Training windows actually used (after subsampling).
    pub train_windows: usize,
    /// Variance of the test targets in raw task units (the
    /// denominator of the paper's variance-relative MSE).
    pub test_target_variance: f64,
}

fn clone_head(head: &dyn Head) -> Box<dyn Head> {
    let fresh = build_head(head.kind(), head.d_model())
        .unwrap_or_else(|| panic!("head kind {:?} not in the registry", head.kind()));
    copy_params(head as &dyn Module, fresh.as_ref() as &dyn Module);
    fresh
}

impl Pretrained {
    /// Write the `NTTCKPT2` checkpoint: weights, config, head
    /// descriptors, normalizer, provenance, checksum.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let heads: Vec<&dyn Head> = self.heads.iter().map(|h| h.as_ref()).collect();
        Checkpoint::capture(
            &self.model,
            &heads,
            Some(self.norm.clone()),
            self.provenance.clone(),
        )?
        .save(path)
    }

    /// Reconstruct a shared model from a checkpoint file alone — the
    /// receiving half of Fig. 1. The embedded config rebuilds the
    /// model, the head descriptors rebuild the decoders, and the
    /// embedded normalizer keeps downstream datasets consistent.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Pretrained> {
        let loaded = Checkpoint::load(path)?;
        let norm = loaded.norm.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint carries no normalizer; it was not written by the Experiment pipeline",
            )
        })?;
        // Restore the window geometry recorded at save time, so the
        // loading site's datasets line up with the pre-training site's.
        let mut exp = Experiment::new(loaded.model.cfg);
        let meta = |key: &str| {
            loaded
                .provenance
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        if let Some(stride) = meta("stride").and_then(|v| v.parse().ok()) {
            exp.data.stride = stride;
        }
        if let Some(tf) = meta("test_fraction").and_then(|v| v.parse().ok()) {
            exp.data.test_fraction = tf;
        }
        Ok(Pretrained {
            exp,
            model: loaded.model,
            heads: loaded.heads,
            norm,
            report: None,
            eval: None,
            fleet: None,
            test_target_variance: None,
            provenance: loaded.provenance,
        })
    }

    /// The first head of the given kind, if present.
    pub fn head(&self, kind: &str) -> Option<&dyn Head> {
        self.heads
            .iter()
            .find(|h| h.kind() == kind)
            .map(|h| h.as_ref())
    }

    fn delay_head(&self) -> &dyn Head {
        self.head("delay")
            .expect("pre-trained model carries no delay head")
    }

    /// Provenance value for `key`, if recorded.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.provenance
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Fine-tune the **delay task in a new environment** (Fig. 1's
    /// "adapt to a new network"): sweep the new environment, build
    /// datasets with the *pre-training* normalizer, measure zero-shot
    /// transfer, then fine-tune a weight-cloned copy.
    pub fn finetune(&self, spec: &SweepSpec, opts: &FinetuneOpts) -> Finetuned {
        let (data, _) = self.exp.sweep(spec);
        self.finetune_on(data, opts)
    }

    /// [`Pretrained::finetune`] over already-simulated data.
    pub fn finetune_on(&self, data: Arc<TraceData>, opts: &FinetuneOpts) -> Finetuned {
        let (train_all, test_ds) = self.exp.delay_datasets(data, Some(self.norm.clone()));
        let train_ds = match opts.fraction {
            Some(f) => train_all.subsample(f, opts.seed),
            None => train_all,
        };
        let pre_head = self.delay_head();
        let zero_shot = evaluate(
            &self.model,
            &HeadTask::new(pre_head, &test_ds),
            self.exp.eval_batch,
            &self.exp.par(),
        );
        let model = self.model.clone_weights();
        let head = clone_head(pre_head);
        let report = train(
            &model,
            &HeadTask::new(head.as_ref(), &train_ds),
            &self.exp.train_cfg(),
            opts.mode,
        );
        let eval = evaluate(
            &model,
            &HeadTask::new(head.as_ref(), &test_ds),
            self.exp.eval_batch,
            &self.exp.par(),
        );
        let baselines = vec![
            ("last-observed", delay_last_observed_mse(&test_ds)),
            ("ewma", delay_ewma_mse(&test_ds, EWMA_ALPHA)),
        ];
        Finetuned {
            task: "delay",
            model,
            head,
            report,
            eval,
            zero_shot: Some(zero_shot),
            baselines,
            train_windows: train_ds.len(),
            test_target_variance: test_ds.target_variance(),
        }
    }

    /// Fine-tune the **MCT task** (Fig. 1's "adapt to a new task"): a
    /// fresh MCT head on a weight-cloned trunk, datasets sharing the
    /// pre-training feature normalizer.
    pub fn finetune_mct(&self, spec: &SweepSpec, opts: &FinetuneOpts) -> Finetuned {
        let (data, _) = self.exp.sweep(spec);
        self.finetune_mct_on(data, opts)
    }

    /// [`Pretrained::finetune_mct`] over already-simulated data.
    pub fn finetune_mct_on(&self, data: Arc<TraceData>, opts: &FinetuneOpts) -> Finetuned {
        let (train_all, test_ds) = MctDataset::build(data, self.exp.ds_cfg(), self.norm.clone());
        let (train_all, test_ds) = (
            train_all.with_mask(self.exp.model.features),
            test_ds.with_mask(self.exp.model.features),
        );
        let train_ds = match opts.fraction {
            Some(f) => train_all.subsample(f, opts.seed),
            None => train_all,
        };
        let zero_shot = self.head("mct").map(|h| {
            evaluate(
                &self.model,
                &HeadTask::new(h, &test_ds),
                self.exp.eval_batch,
                &self.exp.par(),
            )
        });
        let model = self.model.clone_weights();
        let head: Box<dyn Head> = match self.head("mct") {
            Some(h) => clone_head(h),
            None => Box::new(MctHead::new(self.exp.model.d_model, self.exp.model.seed)),
        };
        let report = train(
            &model,
            &HeadTask::new(head.as_ref(), &train_ds),
            &self.exp.train_cfg(),
            opts.mode,
        );
        let eval = evaluate(
            &model,
            &HeadTask::new(head.as_ref(), &test_ds),
            self.exp.eval_batch,
            &self.exp.par(),
        );
        let baselines = vec![
            ("last-observed", mct_last_observed_mse(&test_ds)),
            ("ewma", mct_ewma_mse(&test_ds, EWMA_ALPHA)),
        ];
        Finetuned {
            task: "mct",
            model,
            head,
            report,
            eval,
            zero_shot,
            baselines,
            train_windows: train_ds.len(),
            test_target_variance: test_ds.target_log_variance(),
        }
    }

    /// Fine-tune the **drop-count task** (§5 telemetry): a fresh drop
    /// head over the pre-training-style windows.
    pub fn finetune_drop(&self, spec: &SweepSpec, opts: &FinetuneOpts) -> Finetuned {
        let (data, _) = self.exp.sweep(spec);
        let (train_all, test_delay) = self.exp.delay_datasets(data, Some(self.norm.clone()));
        let train_delay = match opts.fraction {
            Some(f) => train_all.subsample(f, opts.seed),
            None => train_all,
        };
        let (train_ds, test_ds) = DropDataset::build(&train_delay, &test_delay);
        let zero_shot = self.head("drop").map(|h| {
            evaluate(
                &self.model,
                &HeadTask::new(h, &test_ds),
                self.exp.eval_batch,
                &self.exp.par(),
            )
        });
        let head: Box<dyn Head> = match self.head("drop") {
            Some(h) => clone_head(h),
            None => Box::new(crate::model::DropHead::new(
                self.exp.model.d_model,
                self.exp.model.seed,
            )),
        };
        let (model, report, eval) =
            self.finetune_custom(head.as_ref(), &train_ds, &test_ds, opts.mode);
        let n = test_ds.len().max(1) as f64;
        // The naive baseline: predict the *training-set* mean count
        // (that is all a no-model predictor legitimately knows).
        let train_mean = train_ds.target_mean() as f64;
        let mean_mse = (0..test_ds.len())
            .map(|i| {
                let d = test_ds.count_raw(i) as f64 - train_mean;
                d * d
            })
            .sum::<f64>()
            / n;
        // Variance of the test targets around their own mean (the
        // variance-relative-MSE denominator, distinct from the baseline).
        let test_mean = (0..test_ds.len())
            .map(|i| test_ds.count_raw(i) as f64)
            .sum::<f64>()
            / n;
        let test_variance = (0..test_ds.len())
            .map(|i| {
                let d = test_ds.count_raw(i) as f64 - test_mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Finetuned {
            task: "drop",
            model,
            head,
            report,
            eval,
            zero_shot,
            baselines: vec![("train-mean", mean_mse)],
            train_windows: train_ds.len(),
            test_target_variance: test_variance,
        }
    }

    /// The pluggability escape hatch: fine-tune **any** (head, dataset)
    /// pair — including ones defined outside this crate — on a
    /// weight-cloned copy of the pre-trained trunk. The head is trained
    /// in place (the caller owns it); the returned model is the adapted
    /// trunk copy.
    pub fn finetune_custom<D: TaskDataset + ?Sized>(
        &self,
        head: &dyn Head,
        train_ds: &D,
        test_ds: &D,
        mode: TrainMode,
    ) -> (Ntt, TrainReport, EvalReport) {
        let model = self.model.clone_weights();
        let report = train(
            &model,
            &HeadTask::new(head, train_ds),
            &self.exp.train_cfg(),
            mode,
        );
        let eval = evaluate(
            &model,
            &HeadTask::new(head, test_ds),
            self.exp.eval_batch,
            &self.exp.par(),
        );
        (model, report, eval)
    }

    /// Evaluate a stored head on a delay dataset built from new data
    /// with the shared normalizer (zero-shot transfer measurement).
    pub fn eval_delay_on(&self, data: Arc<TraceData>) -> EvalReport {
        let (_, test_ds) = self.exp.delay_datasets(data, Some(self.norm.clone()));
        evaluate(
            &self.model,
            &HeadTask::new(self.delay_head(), &test_ds),
            self.exp.eval_batch,
            &self.exp.par(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Aggregation;
    use ntt_sim::scenarios::{Scenario, ScenarioConfig};
    use ntt_sim::SimTime;

    fn tiny_exp() -> Experiment {
        Experiment::new(NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 9,
            ..NttConfig::default()
        })
        .stride(8)
        .with_train(TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 2e-3,
            max_steps_per_epoch: Some(6),
            ..TrainConfig::default()
        })
    }

    fn fast_scenario(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::tiny(seed);
        cfg.duration = SimTime::from_millis(1500);
        cfg.drain = SimTime::from_millis(300);
        cfg
    }

    #[test]
    fn pretrain_share_finetune_end_to_end() {
        let exp = tiny_exp();
        let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, fast_scenario(3), 1));
        assert!(pre.report.as_ref().unwrap().final_loss().is_finite());
        assert!(pre.eval.unwrap().mse_norm > 0.0);
        assert_eq!(pre.heads.len(), 1);
        assert!(pre.meta("scenario_grid").is_some());

        let path =
            std::env::temp_dir().join(format!("ntt_pipeline_e2e_{}.ckpt", std::process::id()));
        pre.save(&path).unwrap();

        // The receiving site: file alone, no config.
        let shared = Pretrained::load(&path).unwrap();
        assert_eq!(shared.model.cfg.d_model, 16);
        assert_eq!(shared.norm, pre.norm);
        let ft = shared.finetune(
            &SweepSpec::single(Scenario::Case1, fast_scenario(4), 1),
            &FinetuneOpts::decoder_only(),
        );
        assert_eq!(ft.task, "delay");
        assert!(ft.eval.mse_norm.is_finite());
        assert!(ft.zero_shot.unwrap().mse_norm.is_finite());
        assert_eq!(ft.baselines.len(), 2);
        // Decoder-only must not have moved the shared trunk.
        for (a, b) in pre.model.params().iter().zip(shared.model.params().iter()) {
            assert_eq!(a.value(), b.value(), "shared trunk moved: {}", a.name());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn finetune_leaves_the_pretrained_weights_intact() {
        let exp = tiny_exp();
        let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, fast_scenario(5), 1));
        let before: Vec<_> = pre.model.params().iter().map(|p| p.value()).collect();
        let head_before: Vec<_> = pre
            .delay_head()
            .params()
            .iter()
            .map(|p| p.value())
            .collect();
        let ft = pre.finetune(
            &SweepSpec::single(Scenario::Case1, fast_scenario(6), 1),
            &FinetuneOpts::full(),
        );
        // Full fine-tuning moved the *copy*...
        assert!(ft
            .model
            .params()
            .iter()
            .zip(before.iter())
            .any(|(p, b)| p.value() != *b));
        // ...but the shared originals are untouched.
        for (p, b) in pre.model.params().iter().zip(before) {
            assert_eq!(p.value(), b, "pre-trained trunk moved: {}", p.name());
        }
        for (p, b) in pre.delay_head().params().iter().zip(head_before) {
            assert_eq!(p.value(), b, "pre-trained head moved: {}", p.name());
        }
    }

    #[test]
    fn mct_and_drop_tasks_run_through_the_same_pipeline() {
        let exp = tiny_exp();
        let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, fast_scenario(7), 1));
        let spec = SweepSpec::single(Scenario::Case1, fast_scenario(8), 1);
        let mct = pre.finetune_mct(&spec, &FinetuneOpts::decoder_only());
        assert_eq!(mct.task, "mct");
        assert_eq!(mct.head.kind(), "mct");
        assert!(mct.eval.mse_norm.is_finite());
        assert!(mct.zero_shot.is_none(), "no pre-trained MCT head existed");
        let drop = pre.finetune_drop(&spec, &FinetuneOpts::decoder_only());
        assert_eq!(drop.task, "drop");
        assert!(drop.eval.mse_norm.is_finite());
        assert_eq!(drop.baselines.len(), 1);
    }

    #[test]
    fn subsampling_shrinks_the_training_set() {
        let exp = tiny_exp();
        let pre = exp.pretrain(&SweepSpec::single(Scenario::Pretrain, fast_scenario(9), 1));
        let spec = SweepSpec::single(Scenario::Case1, fast_scenario(10), 1);
        let full = pre.finetune(&spec, &FinetuneOpts::decoder_only());
        let small = pre.finetune(&spec, &FinetuneOpts::decoder_only().fraction(0.1).seed(1));
        assert!(small.train_windows < full.train_windows);
        assert_eq!(
            small.train_windows,
            ((full.train_windows as f64) * 0.1).round() as usize
        );
    }
}
