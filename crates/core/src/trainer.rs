//! The task-generic, data-parallel training and evaluation engine.
//!
//! Implements the paper's two training regimes:
//! * **pre-train / fine-tune** — train trunk+head on the pre-training
//!   dataset, then adapt to a new dataset/task updating either only the
//!   head ([`TrainMode::DecoderOnly`], Table 2 "Decoder only") or
//!   everything ([`TrainMode::Full`]);
//! * **from scratch** — train the full model directly on the
//!   fine-tuning dataset (Table 2 "Full NTT").
//!
//! Both regimes run through one generic loop over the [`Task`] trait
//! (delay and MCT are thin impls in [`crate::task`]).
//!
//! # Data parallelism and determinism
//!
//! Each optimizer step's batch is split into fixed-size microbatches
//! ([`ParStrategy::microbatch`]); workers on a scoped thread pool claim
//! shards from an atomic cursor, run forward/backward on their own
//! [`ntt_tensor::Tape`], and return a detached
//! [`ParamGrads`](ntt_tensor::ParamGrads) bundle. The coordinator
//! reduces bundles **in shard-index order** and applies one
//! [`Adam::step_with`] update — the same reorder-buffer discipline as
//! `ntt-fleet`, so losses and parameters are **bit-identical for any
//! thread count**. The microbatch decomposition (and therefore the
//! numerics) depends only on `microbatch`, never on `threads`.
//!
//! Wall-clock time is captured in every report because training *time*
//! is itself a result in Tables 2 and 3.

use crate::model::Ntt;
use crate::task::{DelayTask, MctTask, Task};
use ntt_data::BatchIter;
use ntt_nn::{clip_param_grads, Adam, LrSchedule, Module};
use ntt_tensor::{kernels, splitmix64, Param, ParamGrads, TapePool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Which parameters fine-tuning updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Update trunk and head.
    Full,
    /// Freeze the trunk, update only the task head (paper: "Decoder
    /// only", the cheap fine-tuning path enabled by pre-training).
    DecoderOnly,
}

/// How one optimizer step fans out over worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParStrategy {
    /// Worker threads (`0` = one per available core). Results are
    /// bit-identical for every setting — this is purely a throughput
    /// knob.
    pub threads: usize,
    /// Samples per microbatch shard. This *does* define the numerics
    /// (it fixes how the batch loss and gradients are associated in
    /// f32), so it is independent of `threads` and defaults to
    /// [`ParStrategy::DEFAULT_MICROBATCH`] everywhere.
    pub microbatch: usize,
}

impl ParStrategy {
    /// Default shard size: small enough that a batch of 32 fans out
    /// over 4 workers, large enough to amortize per-tape overhead.
    pub const DEFAULT_MICROBATCH: usize = 8;

    /// Sequential execution (still microbatched, so numerics match the
    /// parallel strategies exactly).
    pub fn single() -> Self {
        ParStrategy {
            threads: 1,
            microbatch: Self::DEFAULT_MICROBATCH,
        }
    }

    /// Run on `threads` workers (`0` = one per core).
    pub fn with_threads(threads: usize) -> Self {
        ParStrategy {
            threads,
            microbatch: Self::DEFAULT_MICROBATCH,
        }
    }

    /// Honor `NTT_THREADS` (`0` = auto, unset = sequential; one parser
    /// for the whole workspace, see [`crate::env_threads`]). Training
    /// results do not depend on the value — only wall-clock does.
    pub fn from_env() -> Self {
        Self::with_threads(crate::env_threads(1))
    }

    /// Worker count for `n_shards` work items.
    fn resolve(&self, n_shards: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.min(n_shards).max(1)
    }
}

impl Default for ParStrategy {
    fn default() -> Self {
        Self::single()
    }
}

/// Loop hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    /// Peak learning rate (warmup-cosine schedule).
    pub lr: f32,
    /// Gradient clipping threshold (global L2 norm).
    pub clip: f32,
    pub seed: u64,
    /// Optional cap on optimizer steps per epoch (quick experiment
    /// modes subsample each epoch instead of shrinking the dataset).
    pub max_steps_per_epoch: Option<usize>,
    /// Data-parallel fan-out. The default honors `NTT_THREADS`; safe
    /// because results are bit-identical at every thread count.
    pub par: ParStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            lr: 1e-3,
            clip: 1.0,
            seed: 0,
            max_steps_per_epoch: None,
            par: ParStrategy::from_env(),
        }
    }
}

/// What a training run did.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean normalized training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Mean pre-clip global gradient L2 norm per epoch — the divergence
    /// diagnostic (a blow-up shows here before the loss goes NaN).
    pub grad_norms: Vec<f64>,
    pub steps: usize,
    pub wall: Duration,
    /// Number of parameters that actually received updates.
    pub trainable_params: usize,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("no epochs ran")
    }

    /// Final epoch's mean pre-clip gradient norm.
    pub fn final_grad_norm(&self) -> f64 {
        *self.grad_norms.last().expect("no epochs ran")
    }
}

/// Evaluation result. `mse_norm` is in normalized target units;
/// `mse_raw` converts back to task units (seconds² for delay,
/// ln(seconds)² for MCT) via the dataset's target std.
#[derive(Debug, Clone, Copy)]
pub struct EvalReport {
    pub mse_norm: f64,
    pub mse_raw: f64,
    pub n: usize,
}

fn steps_of(n_samples: usize, cfg: &TrainConfig) -> usize {
    let per_epoch = n_samples.div_ceil(cfg.batch_size);
    cfg.max_steps_per_epoch
        .map_or(per_epoch, |cap| per_epoch.min(cap))
}

fn optimizer_for(
    ntt: &Ntt,
    head_params: Vec<Param>,
    cfg: &TrainConfig,
    total_steps: usize,
    mode: TrainMode,
) -> (Adam, usize) {
    ntt.set_trainable(mode == TrainMode::Full);
    let mut params = ntt.params();
    params.extend(head_params);
    let trainable = params
        .iter()
        .filter(|p| p.is_trainable())
        .map(|p| p.numel())
        .sum();
    let schedule = LrSchedule::WarmupCosine {
        peak: cfg.lr,
        warmup: (total_steps / 10).max(1),
        total: total_steps.max(2),
        floor_frac: 0.1,
    };
    (Adam::new(params, schedule), trainable)
}

/// Seed combiner for the per-step and per-shard streams (one
/// [`splitmix64`] step over a golden-ratio blend of the inputs).
fn mix(a: u64, b: u64) -> u64 {
    let mut state = a.wrapping_add(b.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    splitmix64(&mut state)
}

/// Run `f(0..n)` across `threads` scoped workers (atomic-cursor work
/// stealing, as in `ntt-fleet`) and return the results **in index
/// order**, so any subsequent reduction is deterministic regardless of
/// completion order. `threads <= 1` degenerates to a plain loop that
/// keeps the matmul kernels' internal row-block parallelism; with
/// multiple workers that nesting is suppressed
/// ([`kernels::with_sequential`]) so the machine is divided between
/// shards instead of oversubscribed.
fn fanout<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                kernels::with_sequential(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break; // collector gone
                    }
                })
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("trainer worker panicked"))
        .collect()
}

/// One optimizer step: fan the batch out as microbatches, reduce the
/// per-shard gradient bundles in shard-index order, and return the
/// recombined batch loss plus the reduced bundle.
fn fanout_step(
    ntt: &Ntt,
    task: &dyn Task,
    batch: &[usize],
    step_seed: u64,
    par: &ParStrategy,
    tapes: &TapePool,
) -> (f64, ParamGrads) {
    let shards: Vec<&[usize]> = batch.chunks(par.microbatch).collect();
    let n_total = batch.len();
    let run_shard = |si: usize| -> (f64, ParamGrads) {
        let idx = shards[si];
        tapes.with(mix(step_seed, 1 + si as u64), |tape| {
            let mse = task.batch_loss(tape, ntt, idx);
            debug_assert_eq!(mse.shape(), vec![1], "batch_loss must be scalar");
            // Weight so that Σ shard losses == the whole-batch mean loss.
            let loss = mse.scale(idx.len() as f32 / n_total as f32);
            let value = loss.value().item() as f64;
            (value, tape.backward_params(loss))
        })
    };
    // Microbatch fan-out occupancy: how many shards this step produced
    // and how many workers actually ran them.
    let workers = par.resolve(shards.len());
    ntt_obs::histogram!("train.fanout_shards").record(shards.len() as u64);
    ntt_obs::gauge!("train.fanout_workers").set(workers as f64);
    let results = fanout(shards.len(), workers, run_shard);

    // Fixed-order reduction: shard 0 + shard 1 + ... — the gradient
    // analogue of the fleet's reorder buffer.
    let mut it = results.into_iter();
    let (mut loss, mut acc) = it.next().expect("batch produced no shards");
    for (lv, pg) in it {
        loss += lv;
        acc.add_assign(&pg);
    }
    (loss, acc)
}

/// Train `task` on `ntt` with the given mode and fan-out strategy.
///
/// Bit-reproducibility: for a fixed `(cfg, mode)` — including
/// `cfg.par.microbatch` — the returned losses and the final parameters
/// are identical for every `cfg.par.threads` setting.
pub fn train(ntt: &Ntt, task: &dyn Task, cfg: &TrainConfig, mode: TrainMode) -> TrainReport {
    assert!(!task.is_empty(), "training on an empty dataset");
    assert!(cfg.par.microbatch > 0, "microbatch must be positive");
    let steps_per_epoch = steps_of(task.len(), cfg);
    let (mut opt, trainable) = optimizer_for(
        ntt,
        task.head_params(),
        cfg,
        steps_per_epoch * cfg.epochs,
        mode,
    );
    ntt.set_training(true);
    // Wall clock through the audited obs seam (lint R3): the timing is
    // a write-only report field, it never feeds back into training.
    let start = ntt_obs::Stopwatch::start();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut grad_norms = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    // One pool of tapes for the whole run: scratch arenas survive from
    // step to step, so steady-state steps allocate (almost) nothing.
    let tapes = TapePool::training();
    for epoch in 0..cfg.epochs {
        let _epoch_span = ntt_obs::span!("train.epoch_ns");
        let mut sum = 0.0f64;
        let mut norm_sum = 0.0f64;
        let mut count = 0usize;
        for batch in BatchIter::new(
            task.len(),
            cfg.batch_size,
            cfg.seed ^ (epoch as u64) << 17,
            true,
        )
        .take(steps_per_epoch)
        {
            let _step_span = ntt_obs::span!("train.step_ns");
            let step_seed = mix(cfg.seed, steps as u64);
            let (loss, mut grads) = fanout_step(ntt, task, &batch, step_seed, &cfg.par, &tapes);
            let pre_norm = clip_param_grads(&mut grads, cfg.clip);
            opt.step_with(&grads);
            sum += loss;
            norm_sum += pre_norm as f64;
            count += 1;
            steps += 1;
            ntt_obs::counter!("train.steps").inc();
            ntt_obs::gauge!("train.grad_norm").set(pre_norm as f64);
        }
        epoch_losses.push(sum / count.max(1) as f64);
        grad_norms.push(norm_sum / count.max(1) as f64);
    }
    ntt.set_training(false);
    ntt.set_trainable(true); // leave the model unfrozen for the caller
    TrainReport {
        epoch_losses,
        grad_norms,
        steps,
        wall: start.elapsed(),
        trainable_params: trainable,
    }
}

/// Evaluate `task` on `ntt` (grad-free, dropout off). Each batch runs
/// on a pooled **inference** tape — no backward graph recorded, no
/// gradient slots allocated, and attention routed through the fused
/// streaming-softmax tile, so evaluation pays neither the autodiff
/// overhead nor the `[B, H, T, T]` score allocation. Results are
/// deterministic (bit-identical across runs, thread counts, and batch
/// compositions) and agree with a recording tape's classic attention
/// chain to within epsilon — the online softmax reorders the IEEE
/// reduction, so cross-mode bit-equality is not claimed. Batches fan
/// out over `par` workers; squared errors are accumulated in batch
/// order, so the result is thread-count invariant like training.
pub fn evaluate(ntt: &Ntt, task: &dyn Task, batch_size: usize, par: &ParStrategy) -> EvalReport {
    assert!(!task.is_empty(), "evaluating on an empty dataset");
    ntt.set_training(false);
    let batches: Vec<Vec<usize>> = BatchIter::new(task.len(), batch_size, 0, false).collect();
    let tapes = TapePool::inference();
    let run_batch = |bi: usize| -> (f64, usize) {
        let idx = &batches[bi];
        // Dropout is off, so no stochastic layer draws from the stream
        // and the reset seed is immaterial; the batch index keeps it
        // deterministic anyway.
        tapes.with(bi as u64, |tape| {
            let mse = task.batch_loss(tape, ntt, idx);
            (mse.value().item() as f64 * idx.len() as f64, idx.len())
        })
    };
    let _eval_span = ntt_obs::span!("train.eval_ns");
    ntt_obs::counter!("train.eval_batches").add(batches.len() as u64);
    let results = fanout(batches.len(), par.resolve(batches.len()), run_batch);
    let (mut se, mut n) = (0.0f64, 0usize);
    for (s, c) in results {
        se += s;
        n += c;
    }
    let mse_norm = se / n as f64;
    let std = task.target_std() as f64;
    EvalReport {
        mse_norm,
        mse_raw: mse_norm * std * std,
        n,
    }
}

/// Train the delay task (pre-training, and fine-tuning case 1).
pub fn train_delay(
    ntt: &Ntt,
    head: &crate::model::DelayHead,
    ds: &ntt_data::DelayDataset,
    cfg: &TrainConfig,
    mode: TrainMode,
) -> TrainReport {
    train(ntt, &DelayTask::new(head, ds), cfg, mode)
}

/// Evaluate the delay task.
pub fn eval_delay(
    ntt: &Ntt,
    head: &crate::model::DelayHead,
    ds: &ntt_data::DelayDataset,
    batch_size: usize,
) -> EvalReport {
    evaluate(
        ntt,
        &DelayTask::new(head, ds),
        batch_size,
        &ParStrategy::from_env(),
    )
}

/// Train the MCT task (fine-tuning task 2).
pub fn train_mct(
    ntt: &Ntt,
    head: &crate::model::MctHead,
    ds: &ntt_data::MctDataset,
    cfg: &TrainConfig,
    mode: TrainMode,
) -> TrainReport {
    train(ntt, &MctTask::new(head, ds), cfg, mode)
}

/// Evaluate the MCT task (raw units: ln(seconds)²).
pub fn eval_mct(
    ntt: &Ntt,
    head: &crate::model::MctHead,
    ds: &ntt_data::MctDataset,
    batch_size: usize,
) -> EvalReport {
    evaluate(
        ntt,
        &MctTask::new(head, ds),
        batch_size,
        &ParStrategy::from_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, NttConfig};
    use crate::model::{DelayHead, MctHead};
    use ntt_data::{DatasetConfig, DelayDataset, MctDataset, TraceData};
    use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
    use ntt_tensor::Tape;
    use std::sync::Arc;

    fn tiny_model() -> (Ntt, DelayHead, MctHead) {
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 9,
            ..NttConfig::default()
        };
        (Ntt::new(cfg), DelayHead::new(16, 9), MctHead::new(16, 9))
    }

    fn tiny_datasets() -> (DelayDataset, DelayDataset, MctDataset) {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(31))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 64,
            stride: 8,
            test_fraction: 0.2,
        };
        let (train, test) = ntt_data::DelayDataset::build(Arc::clone(&data), cfg, None);
        let (mct_train, _) = ntt_data::MctDataset::build(data, cfg, train.norm.clone());
        (train, test, mct_train)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 3e-3,
            max_steps_per_epoch: Some(8),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn delay_training_reduces_loss() {
        let (ntt, head, _) = tiny_model();
        let (train, _, _) = tiny_datasets();
        let report = train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::Full);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should fall: {:?}",
            report.epoch_losses
        );
        assert!(report.steps <= 16);
        assert!(report.wall.as_nanos() > 0);
        assert_eq!(report.grad_norms.len(), 2);
        assert!(
            report.grad_norms.iter().all(|&n| n.is_finite() && n > 0.0),
            "grad-norm trace must be usable as a divergence diagnostic: {:?}",
            report.grad_norms
        );
    }

    #[test]
    fn training_is_thread_count_invariant() {
        // The core determinism contract, on the tiny model: any thread
        // count produces bit-identical losses and parameters. (The full
        // 1-vs-4-thread mirror of `fleet_determinism` lives in
        // tests/determinism.rs; this keeps a fast in-crate guard.)
        let run_with = |threads: usize| {
            let (ntt, head, _) = tiny_model();
            let (train, _, _) = tiny_datasets();
            let cfg = TrainConfig {
                par: ParStrategy::with_threads(threads),
                ..quick_cfg()
            };
            let report = train_delay(&ntt, &head, &train, &cfg, TrainMode::Full);
            let params: Vec<Vec<u32>> = ntt
                .params()
                .iter()
                .chain(head.params().iter())
                .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
                .collect();
            (report.epoch_losses, report.grad_norms, params)
        };
        let a = run_with(1);
        let b = run_with(3);
        assert_eq!(a.0, b.0, "epoch losses must be bit-identical");
        assert_eq!(a.1, b.1, "grad norms must be bit-identical");
        assert_eq!(a.2, b.2, "final parameters must be bit-identical");
    }

    #[test]
    fn decoder_only_updates_fewer_params_and_leaves_trunk_unchanged() {
        let (ntt, head, _) = tiny_model();
        let (train, _, _) = tiny_datasets();
        let trunk_before: Vec<_> = ntt.params().iter().map(|p| p.value()).collect();
        let full_report = {
            let (ntt2, head2, _) = tiny_model();
            train_delay(&ntt2, &head2, &train, &quick_cfg(), TrainMode::Full)
        };
        let dec_report = train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::DecoderOnly);
        assert!(dec_report.trainable_params < full_report.trainable_params);
        for (p, before) in ntt.params().iter().zip(trunk_before) {
            assert_eq!(p.value(), before, "trunk param {} moved", p.name());
        }
        assert!(
            ntt.params().iter().all(|p| p.is_trainable()),
            "unfrozen after"
        );
    }

    #[test]
    fn eval_reports_consistent_units() {
        let (ntt, head, _) = tiny_model();
        let (train, test, _) = tiny_datasets();
        train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::Full);
        let ev = eval_delay(&ntt, &head, &test, 16);
        assert!(ev.mse_norm.is_finite() && ev.mse_norm > 0.0);
        let std = train.delay_std() as f64;
        assert!((ev.mse_raw - ev.mse_norm * std * std).abs() < 1e-12);
        assert_eq!(ev.n, test.len());
    }

    #[test]
    fn mct_training_works_end_to_end() {
        let (ntt, _, head) = tiny_model();
        let (_, _, mct) = tiny_datasets();
        let report = train_mct(&ntt, &head, &mct, &quick_cfg(), TrainMode::Full);
        assert!(report.final_loss().is_finite());
        assert!(report.final_grad_norm().is_finite());
        let ev = eval_mct(&ntt, &head, &mct, 16);
        assert!(ev.mse_raw.is_finite() && ev.mse_raw > 0.0);
    }

    /// Shared Task-trait conformance check: every impl must satisfy the
    /// engine's contract (scalar mean loss, gradient flow into both the
    /// head and — when unfrozen — the trunk).
    fn assert_task_conforms(task: &dyn Task, ntt: &Ntt) {
        assert!(!task.name().is_empty());
        assert!(task.len() >= 4 && !task.is_empty());
        assert!(task.target_std() > 0.0, "{}: target std", task.name());
        let head_params = task.head_params();
        assert!(!head_params.is_empty(), "{}: no head params", task.name());

        let idx: Vec<usize> = (0..task.len().min(4)).collect();
        let tape = Tape::with_seed(5);
        let loss = task.batch_loss(&tape, ntt, &idx);
        assert_eq!(loss.shape(), vec![1], "{}: loss not scalar", task.name());
        assert!(loss.value().item().is_finite(), "{}: loss", task.name());
        let bundle = tape.backward_params(loss);
        for p in &head_params {
            assert!(
                bundle.get(p).is_some(),
                "{}: no gradient reached head param {}",
                task.name(),
                p.name()
            );
        }
        let trunk_covered = ntt.params().iter().all(|p| bundle.get(p).is_some());
        assert!(trunk_covered, "{}: trunk params missed", task.name());

        // The same microbatch must reproduce bit-identically (purity in
        // indices + tape seed — what the parallel engine relies on).
        let tape2 = Tape::with_seed(5);
        let loss2 = task.batch_loss(&tape2, ntt, &idx);
        assert_eq!(
            loss.value().item(),
            loss2.value().item(),
            "{}: batch_loss is not a pure function of (params, idx, seed)",
            task.name()
        );
    }

    #[test]
    fn delay_mct_and_drop_tasks_conform() {
        let (ntt, head, mct_head) = tiny_model();
        let (train, test, mct) = tiny_datasets();
        assert_task_conforms(&crate::task::DelayTask::new(&head, &train), &ntt);
        assert_task_conforms(&crate::task::MctTask::new(&mct_head, &mct), &ntt);
        let (drop_train, _) = ntt_data::DropDataset::build(&train, &test);
        let drop_head = crate::model::DropHead::new(16, 9);
        assert_task_conforms(&crate::task::DropTask::new(&drop_head, &drop_train), &ntt);
    }

    #[test]
    fn head_task_drives_trait_objects() {
        // The pipeline holds checkpoint-reconstructed heads as
        // `Box<dyn Head>`; the generic task must accept them unsized.
        use ntt_nn::Head;
        let (ntt, head, _) = tiny_model();
        let (train_ds, _, _) = tiny_datasets();
        let boxed: Box<dyn Head> = Box::new(head);
        let task = crate::task::HeadTask::new(boxed.as_ref(), &train_ds);
        let report = train(&ntt, &task, &quick_cfg(), TrainMode::DecoderOnly);
        assert!(report.final_loss().is_finite());
        assert!(report.trainable_params > 0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_dataset_is_an_error() {
        let (ntt, head, _) = tiny_model();
        // A genuinely empty dataset: no run is long enough to yield a
        // single window.
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(32))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 10_000_000, // longer than any run
            stride: 1,
            test_fraction: 0.2,
        };
        let (empty_train, _) = ntt_data::DelayDataset::build(data, cfg, None);
        train_delay(&ntt, &head, &empty_train, &quick_cfg(), TrainMode::Full);
    }
}
