//! Training and evaluation loops for both tasks.
//!
//! Implements the paper's two training regimes:
//! * **pre-train / fine-tune** — train trunk+head on the pre-training
//!   dataset, then adapt to a new dataset/task updating either only the
//!   head ([`TrainMode::DecoderOnly`], Table 2 "Decoder only") or
//!   everything ([`TrainMode::Full`]);
//! * **from scratch** — train the full model directly on the
//!   fine-tuning dataset (Table 2 "Full NTT").
//!
//! Wall-clock time is captured in every report because training *time*
//! is itself a result in Tables 2 and 3.

use crate::model::{DelayHead, MctHead, Ntt};
use ntt_data::{BatchIter, DelayDataset, MctDataset};
use ntt_nn::{clip_grad_norm, Adam, LrSchedule, Module};
use ntt_tensor::Tape;
use std::time::{Duration, Instant};

/// Which parameters fine-tuning updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Update trunk and head.
    Full,
    /// Freeze the trunk, update only the task head (paper: "Decoder
    /// only", the cheap fine-tuning path enabled by pre-training).
    DecoderOnly,
}

/// Loop hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    /// Peak learning rate (warmup-cosine schedule).
    pub lr: f32,
    /// Gradient clipping threshold (global L2 norm).
    pub clip: f32,
    pub seed: u64,
    /// Optional cap on optimizer steps per epoch (quick experiment
    /// modes subsample each epoch instead of shrinking the dataset).
    pub max_steps_per_epoch: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            lr: 1e-3,
            clip: 1.0,
            seed: 0,
            max_steps_per_epoch: None,
        }
    }
}

/// What a training run did.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean normalized training loss per epoch.
    pub epoch_losses: Vec<f64>,
    pub steps: usize,
    pub wall: Duration,
    /// Number of parameters that actually received updates.
    pub trainable_params: usize,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("no epochs ran")
    }
}

/// Evaluation result. `mse_norm` is in normalized target units;
/// `mse_raw` converts back to task units (seconds² for delay,
/// ln(seconds)² for MCT) via the dataset's target std.
#[derive(Debug, Clone, Copy)]
pub struct EvalReport {
    pub mse_norm: f64,
    pub mse_raw: f64,
    pub n: usize,
}

fn steps_of(n_samples: usize, cfg: &TrainConfig) -> usize {
    let per_epoch = n_samples.div_ceil(cfg.batch_size);
    cfg.max_steps_per_epoch
        .map_or(per_epoch, |cap| per_epoch.min(cap))
}

fn optimizer_for(
    ntt: &Ntt,
    head_params: Vec<ntt_tensor::Param>,
    cfg: &TrainConfig,
    total_steps: usize,
    mode: TrainMode,
) -> (Adam, usize) {
    ntt.set_trainable(mode == TrainMode::Full);
    let mut params = ntt.params();
    params.extend(head_params);
    let trainable = params
        .iter()
        .filter(|p| p.is_trainable())
        .map(|p| p.numel())
        .sum();
    let schedule = LrSchedule::WarmupCosine {
        peak: cfg.lr,
        warmup: (total_steps / 10).max(1),
        total: total_steps.max(2),
        floor_frac: 0.1,
    };
    (Adam::new(params, schedule), trainable)
}

/// Train the delay task (pre-training, and fine-tuning case 1).
pub fn train_delay(
    ntt: &Ntt,
    head: &DelayHead,
    ds: &DelayDataset,
    cfg: &TrainConfig,
    mode: TrainMode,
) -> TrainReport {
    assert!(!ds.is_empty(), "training on an empty dataset");
    let steps_per_epoch = steps_of(ds.len(), cfg);
    let (mut opt, trainable) =
        optimizer_for(ntt, head.params(), cfg, steps_per_epoch * cfg.epochs, mode);
    ntt.set_training(true);
    let start = Instant::now();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0;
    for epoch in 0..cfg.epochs {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for batch in BatchIter::new(
            ds.len(),
            cfg.batch_size,
            cfg.seed ^ (epoch as u64) << 17,
            true,
        )
        .take(steps_per_epoch)
        {
            let (x, y) = ds.batch(&batch);
            let tape = Tape::new();
            let pred = head.forward(&tape, ntt.forward(&tape, tape.input(x)));
            let loss = pred.mse_loss(&y);
            sum += loss.value().item() as f64;
            count += 1;
            tape.backward(loss);
            clip_grad_norm(opt.params(), cfg.clip);
            opt.step();
            steps += 1;
        }
        epoch_losses.push(sum / count.max(1) as f64);
    }
    ntt.set_training(false);
    ntt.set_trainable(true); // leave the model unfrozen for the caller
    TrainReport {
        epoch_losses,
        steps,
        wall: start.elapsed(),
        trainable_params: trainable,
    }
}

/// Evaluate the delay task.
pub fn eval_delay(ntt: &Ntt, head: &DelayHead, ds: &DelayDataset, batch_size: usize) -> EvalReport {
    assert!(!ds.is_empty(), "evaluating on an empty dataset");
    ntt.set_training(false);
    let mut se = 0.0f64;
    let mut n = 0usize;
    for batch in BatchIter::new(ds.len(), batch_size, 0, false) {
        let (x, y) = ds.batch(&batch);
        let tape = Tape::new();
        let pred = head.forward(&tape, ntt.forward(&tape, tape.input(x)));
        let pv = pred.value();
        for (p, t) in pv.data().iter().zip(y.data().iter()) {
            let d = (*p - *t) as f64;
            se += d * d;
            n += 1;
        }
    }
    let mse_norm = se / n as f64;
    let std = ds.delay_std() as f64;
    EvalReport {
        mse_norm,
        mse_raw: mse_norm * std * std,
        n,
    }
}

/// Train the MCT task (fine-tuning task 2).
pub fn train_mct(
    ntt: &Ntt,
    head: &MctHead,
    ds: &MctDataset,
    cfg: &TrainConfig,
    mode: TrainMode,
) -> TrainReport {
    assert!(!ds.is_empty(), "training on an empty dataset");
    let steps_per_epoch = steps_of(ds.len(), cfg);
    let (mut opt, trainable) =
        optimizer_for(ntt, head.params(), cfg, steps_per_epoch * cfg.epochs, mode);
    ntt.set_training(true);
    let start = Instant::now();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0;
    for epoch in 0..cfg.epochs {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for batch in BatchIter::new(
            ds.len(),
            cfg.batch_size,
            cfg.seed ^ (epoch as u64) << 17,
            true,
        )
        .take(steps_per_epoch)
        {
            let (x, sizes, y) = ds.batch(&batch);
            let tape = Tape::new();
            let enc = ntt.forward(&tape, tape.input(x));
            let pred = head.forward(&tape, enc, tape.input(sizes));
            let loss = pred.mse_loss(&y);
            sum += loss.value().item() as f64;
            count += 1;
            tape.backward(loss);
            clip_grad_norm(opt.params(), cfg.clip);
            opt.step();
            steps += 1;
        }
        epoch_losses.push(sum / count.max(1) as f64);
    }
    ntt.set_training(false);
    ntt.set_trainable(true);
    TrainReport {
        epoch_losses,
        steps,
        wall: start.elapsed(),
        trainable_params: trainable,
    }
}

/// Evaluate the MCT task (raw units: ln(seconds)²).
pub fn eval_mct(ntt: &Ntt, head: &MctHead, ds: &MctDataset, batch_size: usize) -> EvalReport {
    assert!(!ds.is_empty(), "evaluating on an empty dataset");
    ntt.set_training(false);
    let mut se = 0.0f64;
    let mut n = 0usize;
    for batch in BatchIter::new(ds.len(), batch_size, 0, false) {
        let (x, sizes, y) = ds.batch(&batch);
        let tape = Tape::new();
        let enc = ntt.forward(&tape, tape.input(x));
        let pred = head.forward(&tape, enc, tape.input(sizes));
        let pv = pred.value();
        for (p, t) in pv.data().iter().zip(y.data().iter()) {
            let d = (*p - *t) as f64;
            se += d * d;
            n += 1;
        }
    }
    let mse_norm = se / n as f64;
    let std = ds.mct_std() as f64;
    EvalReport {
        mse_norm,
        mse_raw: mse_norm * std * std,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, NttConfig};
    use ntt_data::{DatasetConfig, TraceData};
    use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};
    use std::sync::Arc;

    fn tiny_model() -> (Ntt, DelayHead, MctHead) {
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 }, // seq 64
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 9,
            ..NttConfig::default()
        };
        (Ntt::new(cfg), DelayHead::new(16, 9), MctHead::new(16, 9))
    }

    fn tiny_datasets() -> (DelayDataset, DelayDataset, MctDataset) {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(31))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 64,
            stride: 8,
            test_fraction: 0.2,
        };
        let (train, test) = ntt_data::DelayDataset::build(Arc::clone(&data), cfg, None);
        let (mct_train, _) = ntt_data::MctDataset::build(data, cfg, train.norm.clone());
        (train, test, mct_train)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 3e-3,
            max_steps_per_epoch: Some(8),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn delay_training_reduces_loss() {
        let (ntt, head, _) = tiny_model();
        let (train, _, _) = tiny_datasets();
        let report = train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::Full);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should fall: {:?}",
            report.epoch_losses
        );
        assert!(report.steps <= 16);
        assert!(report.wall.as_nanos() > 0);
    }

    #[test]
    fn decoder_only_updates_fewer_params_and_leaves_trunk_unchanged() {
        let (ntt, head, _) = tiny_model();
        let (train, _, _) = tiny_datasets();
        let trunk_before: Vec<_> = ntt.params().iter().map(|p| p.value()).collect();
        let full_report = {
            let (ntt2, head2, _) = tiny_model();
            train_delay(&ntt2, &head2, &train, &quick_cfg(), TrainMode::Full)
        };
        let dec_report = train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::DecoderOnly);
        assert!(dec_report.trainable_params < full_report.trainable_params);
        for (p, before) in ntt.params().iter().zip(trunk_before) {
            assert_eq!(p.value(), before, "trunk param {} moved", p.name());
        }
        assert!(
            ntt.params().iter().all(|p| p.is_trainable()),
            "unfrozen after"
        );
    }

    #[test]
    fn eval_reports_consistent_units() {
        let (ntt, head, _) = tiny_model();
        let (train, test, _) = tiny_datasets();
        train_delay(&ntt, &head, &train, &quick_cfg(), TrainMode::Full);
        let ev = eval_delay(&ntt, &head, &test, 16);
        assert!(ev.mse_norm.is_finite() && ev.mse_norm > 0.0);
        let std = train.delay_std() as f64;
        assert!((ev.mse_raw - ev.mse_norm * std * std).abs() < 1e-12);
        assert_eq!(ev.n, test.len());
    }

    #[test]
    fn mct_training_works_end_to_end() {
        let (ntt, _, head) = tiny_model();
        let (_, _, mct) = tiny_datasets();
        let report = train_mct(&ntt, &head, &mct, &quick_cfg(), TrainMode::Full);
        assert!(report.final_loss().is_finite());
        let ev = eval_mct(&ntt, &head, &mct, 16);
        assert!(ev.mse_raw.is_finite() && ev.mse_raw > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_dataset_is_an_error() {
        let (ntt, head, _) = tiny_model();
        let (train, _, _) = tiny_datasets();
        let empty = train.subsample(0.0, 0); // rounds up to 1... so force:
                                             // subsample(0.0) keeps at least one sample by design; build a
                                             // genuinely empty dataset via an impossible window length.
        drop(empty);
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(32))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 10_000_000, // longer than any run
            stride: 1,
            test_fraction: 0.2,
        };
        let (empty_train, _) = ntt_data::DelayDataset::build(data, cfg, None);
        train_delay(&ntt, &head, &empty_train, &quick_cfg(), TrainMode::Full);
    }
}
