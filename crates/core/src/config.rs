//! NTT model configuration, including the aggregation variants of §3
//! and the ablations of Table 1.

use ntt_data::FeatureMask;
use ntt_nn::{Activation, EncoderConfig, NormPlacement};

/// Slots produced per zone by the multi-timescale aggregator. Three
/// zones of 16 give the paper's 48-element encoder input.
pub const ZONE_SLOTS: usize = 16;
/// Encoder sequence length after aggregation (the paper's 48).
pub const OUT_SLOTS: usize = 3 * ZONE_SLOTS;

/// How the input packet sequence is compressed before the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// §3 multi-timescale aggregation. With `block` = 21:
    /// oldest 672 packets -> 16 slots (aggregated twice: 21 then 2),
    /// middle 336 packets -> 16 slots (aggregated once),
    /// recent 16 packets  -> 16 slots (raw); total 1024 -> 48.
    /// Smaller `block` values scale the window down proportionally
    /// (e.g. block 5 -> 256 packets), keeping 48 output slots.
    MultiScale { block: usize },
    /// Table 1 ablation "Fixed aggregation": 48 uniform blocks of
    /// `block` packets (paper: 21, i.e. 1008-packet windows).
    Fixed { block: usize },
    /// Table 1 ablation "No aggregation": the 48 most recent packets,
    /// unaggregated.
    None,
}

impl Aggregation {
    /// The paper's configuration: 1024 packets -> 48 slots.
    pub fn paper_multiscale() -> Self {
        Aggregation::MultiScale { block: 21 }
    }

    /// The paper's fixed-aggregation ablation: 1008 packets -> 48 slots.
    pub fn paper_fixed() -> Self {
        Aggregation::Fixed { block: 21 }
    }

    /// Input window length in packets.
    pub fn seq_len(&self) -> usize {
        match *self {
            // raw 16 + once 16*b + twice 16*b*2
            Aggregation::MultiScale { block } => ZONE_SLOTS + 3 * ZONE_SLOTS * block,
            Aggregation::Fixed { block } => OUT_SLOTS * block,
            Aggregation::None => OUT_SLOTS,
        }
    }

    /// Encoder input length (always 48 — that is the point).
    pub fn out_slots(&self) -> usize {
        OUT_SLOTS
    }
}

/// Full model configuration.
#[derive(Debug, Clone, Copy)]
pub struct NttConfig {
    pub aggregation: Aggregation,
    pub d_model: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub d_ff: usize,
    pub dropout: f32,
    /// Feature ablations (Table 1 "without packet size"/"without delay").
    pub features: FeatureMask,
    pub seed: u64,
}

impl Default for NttConfig {
    fn default() -> Self {
        NttConfig {
            aggregation: Aggregation::paper_multiscale(),
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            dropout: 0.0,
            features: FeatureMask::all(),
            seed: 0,
        }
    }
}

impl NttConfig {
    /// Input window length implied by the aggregation mode.
    pub fn seq_len(&self) -> usize {
        self.aggregation.seq_len()
    }

    /// A reduced-scale config (block 5 -> 256-packet windows) for tests
    /// and quick experiment modes; same architecture shape as the paper.
    pub fn reduced(seed: u64) -> Self {
        NttConfig {
            aggregation: Aggregation::MultiScale { block: 5 },
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            seed,
            ..NttConfig::default()
        }
    }

    /// Encoder stack configuration.
    pub fn encoder(&self) -> EncoderConfig {
        EncoderConfig {
            d_model: self.d_model,
            n_heads: self.n_heads,
            d_ff: self.d_ff,
            n_layers: self.n_layers,
            dropout: self.dropout,
            activation: Activation::Gelu,
            norm: NormPlacement::PreNorm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_multiscale_matches_section3() {
        let a = Aggregation::paper_multiscale();
        assert_eq!(a.seq_len(), 1024, "16 + 336 + 672");
        assert_eq!(a.out_slots(), 48);
    }

    #[test]
    fn paper_fixed_matches_table1_footnote() {
        let a = Aggregation::paper_fixed();
        assert_eq!(a.seq_len(), 1008, "48 aggregates of 21 packets");
        assert_eq!(a.out_slots(), 48);
    }

    #[test]
    fn no_aggregation_is_48_raw_packets() {
        assert_eq!(Aggregation::None.seq_len(), 48);
        assert_eq!(Aggregation::None.out_slots(), 48);
    }

    #[test]
    fn zone_accounting_always_adds_up() {
        for block in 1..32 {
            let a = Aggregation::MultiScale { block };
            let raw = ZONE_SLOTS;
            let mid = ZONE_SLOTS * block;
            let old = ZONE_SLOTS * block * 2;
            assert_eq!(a.seq_len(), raw + mid + old);
        }
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = NttConfig::default();
        assert_eq!(c.seq_len(), 1024);
        assert_eq!(c.d_model % c.n_heads, 0);
    }
}
