//! The Network Traffic Transformer (Fig. 3).
//!
//! Three trunk stages — per-packet embedding, multi-timescale
//! aggregation, transformer encoder — producing a context-rich encoded
//! sequence, plus small replaceable task heads ("decoders" in the
//! paper's BERT-inspired terminology):
//! * [`DelayHead`] reads the final slot and predicts the masked delay of
//!   the most recent packet (pre-training task),
//! * [`MctHead`] pools the sequence, appends the message size, and
//!   predicts the log message completion time (fine-tuning task).

use crate::config::{Aggregation, NttConfig, OUT_SLOTS, ZONE_SLOTS};
use ntt_data::NUM_FEATURES;
use ntt_nn::{Activation, Head, Linear, Mlp, Module, PositionalEncoding, TransformerEncoder};
use ntt_tensor::{Param, Tape, Var};

/// The NTT trunk: embedding + aggregation + encoder.
pub struct Ntt {
    pub cfg: NttConfig,
    embedding: Linear,
    /// First-level aggregation (blocks of `block` packets). Shared by
    /// the middle zone (applied once) and the oldest zone (first of its
    /// two applications) — hierarchical reuse per §3.
    agg1: Option<Linear>,
    /// Second-level aggregation (pairs of level-1 aggregates).
    agg2: Option<Linear>,
    pos: PositionalEncoding,
    encoder: TransformerEncoder,
}

impl Ntt {
    pub fn new(cfg: NttConfig) -> Self {
        let d = cfg.d_model;
        let (agg1, agg2) = match cfg.aggregation {
            Aggregation::MultiScale { block } => (
                Some(Linear::new("ntt.agg1", block * d, d, cfg.seed ^ 0xa1)),
                Some(Linear::new("ntt.agg2", 2 * d, d, cfg.seed ^ 0xa2)),
            ),
            Aggregation::Fixed { block } => (
                Some(Linear::new("ntt.agg1", block * d, d, cfg.seed ^ 0xa1)),
                None,
            ),
            Aggregation::None => (None, None),
        };
        Ntt {
            embedding: Linear::new("ntt.embedding", NUM_FEATURES, d, cfg.seed ^ 0xe0),
            agg1,
            agg2,
            pos: PositionalEncoding::new(OUT_SLOTS, d),
            encoder: TransformerEncoder::new("ntt.encoder", &cfg.encoder(), cfg.seed),
            cfg,
        }
    }

    /// Encode a batch of packet windows:
    /// `[B, seq_len, NUM_FEATURES] -> [B, 48, d_model]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "NTT expects [B, T, F]");
        let (b, t, f) = (shape[0], shape[1], shape[2]);
        assert_eq!(f, NUM_FEATURES, "feature count mismatch");
        assert_eq!(
            t,
            self.cfg.seq_len(),
            "window length {t} does not match aggregation {:?}",
            self.cfg.aggregation
        );
        let d = self.cfg.d_model;
        let e = self.embedding.forward(tape, x); // [B, T, D]

        let slots = match self.cfg.aggregation {
            Aggregation::None => e,
            Aggregation::Fixed { block } => {
                let agg1 = self.agg1.as_ref().expect("fixed agg layer");
                let blocks = e.reshape(&[b, OUT_SLOTS, block * d]);
                agg1.forward(tape, blocks) // [B, 48, D]
            }
            Aggregation::MultiScale { block } => {
                let agg1 = self.agg1.as_ref().expect("level-1 agg layer");
                let agg2 = self.agg2.as_ref().expect("level-2 agg layer");
                let old_len = 2 * ZONE_SLOTS * block; // oldest zone, aggregated twice
                let mid_len = ZONE_SLOTS * block; // middle zone, aggregated once
                                                  // Oldest packets first in the window (time-ordered).
                let old = e.slice_axis1(0, old_len);
                let mid = e.slice_axis1(old_len, mid_len);
                let raw = e.slice_axis1(old_len + mid_len, ZONE_SLOTS);
                // Level 1 on the old zone: [B, 32, block*D] -> [B, 32, D].
                let old1 = agg1.forward(tape, old.reshape(&[b, 2 * ZONE_SLOTS, block * d]));
                // Level 2: adjacent pairs -> [B, 16, D].
                let old2 = agg2.forward(tape, old1.reshape(&[b, ZONE_SLOTS, 2 * d]));
                // Level 1 on the middle zone: [B, 16, D].
                let mid1 = agg1.forward(tape, mid.reshape(&[b, ZONE_SLOTS, block * d]));
                Var::concat_axis1(&[old2, mid1, raw])
            }
        };
        debug_assert_eq!(slots.shape()[1], OUT_SLOTS);
        let with_pos = self.pos.forward(tape, slots);
        self.encoder.forward(tape, with_pos)
    }

    /// Propagate train/eval mode (dropout).
    pub fn set_training(&self, training: bool) {
        self.encoder.set_training(training);
    }

    /// A structurally identical model with the same parameter *values*
    /// (fresh storage). The pipeline fine-tunes clones so the shared
    /// pre-trained weights stay intact for the next fine-tuning.
    pub fn clone_weights(&self) -> Ntt {
        let fresh = Ntt::new(self.cfg);
        copy_params(self, &fresh);
        fresh
    }
}

/// Copy parameter values from `src` to `dst` positionally. Both modules
/// must have identical structure (params in the same stable order with
/// the same shapes) — guaranteed when both were built from the same
/// config/kind.
pub(crate) fn copy_params(src: &dyn Module, dst: &dyn Module) {
    let (s, d) = (src.params(), dst.params());
    assert_eq!(s.len(), d.len(), "param count mismatch in weight copy");
    for (a, b) in s.iter().zip(d.iter()) {
        assert_eq!(a.shape(), b.shape(), "shape mismatch for {}", a.name());
        b.set_value(a.value());
    }
}

impl Module for Ntt {
    fn params(&self) -> Vec<Param> {
        let mut p = self.embedding.params();
        if let Some(a) = &self.agg1 {
            p.extend(a.params());
        }
        if let Some(a) = &self.agg2 {
            p.extend(a.params());
        }
        p.extend(self.encoder.params());
        p
    }
}

/// Delay-prediction head: MLP on the final encoded slot (the masked
/// most-recent packet).
pub struct DelayHead {
    mlp: Mlp,
}

impl DelayHead {
    pub fn new(d_model: usize, seed: u64) -> Self {
        DelayHead {
            mlp: Mlp::new(
                "delay_head",
                &[d_model, d_model, 1],
                Activation::Gelu,
                seed ^ 0xd3,
            ),
        }
    }

    /// `[B, 48, D] -> [B, 1]` (normalized delay).
    pub fn forward<'t>(&self, tape: &'t Tape, encoded: Var<'t>) -> Var<'t> {
        let last = encoded.shape()[1] - 1;
        self.mlp.forward(tape, encoded.select_axis1(last))
    }
}

impl Module for DelayHead {
    fn params(&self) -> Vec<Param> {
        self.mlp.params()
    }
}

impl Head for DelayHead {
    fn kind(&self) -> &'static str {
        "delay"
    }

    fn d_model(&self) -> usize {
        self.mlp.in_features()
    }

    fn forward_head<'t>(&self, tape: &'t Tape, encoded: Var<'t>, _aux: Option<Var<'t>>) -> Var<'t> {
        self.forward(tape, encoded)
    }
}

/// Message-completion-time head: MLP on (mean-pooled sequence ⊕ log
/// message size) — "a decoder with two inputs: the NTT outputs for the
/// past packets and the message size" (§4).
pub struct MctHead {
    mlp: Mlp,
}

impl MctHead {
    pub fn new(d_model: usize, seed: u64) -> Self {
        MctHead {
            mlp: Mlp::new(
                "mct_head",
                &[d_model + 1, d_model, 1],
                Activation::Gelu,
                seed ^ 0xd4,
            ),
        }
    }

    /// `([B, 48, D], [B, 1]) -> [B, 1]` (normalized log MCT).
    pub fn forward<'t>(&self, tape: &'t Tape, encoded: Var<'t>, msg_size: Var<'t>) -> Var<'t> {
        let pooled = encoded.mean_axis1();
        self.mlp.forward(tape, pooled.concat_last(msg_size))
    }
}

impl Module for MctHead {
    fn params(&self) -> Vec<Param> {
        self.mlp.params()
    }
}

impl Head for MctHead {
    fn kind(&self) -> &'static str {
        "mct"
    }

    fn d_model(&self) -> usize {
        self.mlp.in_features() - 1 // the aux channel is appended
    }

    fn needs_aux(&self) -> bool {
        true
    }

    fn forward_head<'t>(&self, tape: &'t Tape, encoded: Var<'t>, aux: Option<Var<'t>>) -> Var<'t> {
        self.forward(
            tape,
            encoded,
            aux.expect("MCT head needs the message size input"),
        )
    }
}

/// Drop-count head: MLP on the mean-pooled sequence predicting the
/// number of retransmitted (≈ dropped upstream) packets in the window —
/// the §5 telemetry task, and the proof that a new head is a few dozen
/// lines against the [`Head`]/[`ntt_data::TaskDataset`] traits with no
/// engine changes.
pub struct DropHead {
    mlp: Mlp,
}

impl DropHead {
    pub fn new(d_model: usize, seed: u64) -> Self {
        DropHead {
            mlp: Mlp::new(
                "drop_head",
                &[d_model, d_model, 1],
                Activation::Gelu,
                seed ^ 0xd5,
            ),
        }
    }

    /// `[B, 48, D] -> [B, 1]` (normalized drop count).
    pub fn forward<'t>(&self, tape: &'t Tape, encoded: Var<'t>) -> Var<'t> {
        self.mlp.forward(tape, encoded.mean_axis1())
    }
}

impl Module for DropHead {
    fn params(&self) -> Vec<Param> {
        self.mlp.params()
    }
}

impl Head for DropHead {
    fn kind(&self) -> &'static str {
        "drop"
    }

    fn d_model(&self) -> usize {
        self.mlp.in_features()
    }

    fn forward_head<'t>(&self, tape: &'t Tape, encoded: Var<'t>, _aux: Option<Var<'t>>) -> Var<'t> {
        self.forward(tape, encoded)
    }
}

/// Build a fresh head of the given `kind` — the registry the
/// self-describing checkpoint loader uses to reconstruct heads from
/// their descriptors. Weights are overwritten right after construction,
/// so the init seed is immaterial; it is fixed for reproducibility.
pub fn build_head(kind: &str, d_model: usize) -> Option<Box<dyn Head>> {
    match kind {
        "delay" => Some(Box::new(DelayHead::new(d_model, 0))),
        "mct" => Some(Box::new(MctHead::new(d_model, 0))),
        "drop" => Some(Box::new(DropHead::new(d_model, 0))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::Tensor;

    fn tiny_cfg(aggregation: Aggregation) -> NttConfig {
        NttConfig {
            aggregation,
            d_model: 16,
            n_heads: 4,
            n_layers: 1,
            d_ff: 32,
            seed: 3,
            ..NttConfig::default()
        }
    }

    #[test]
    fn forward_shapes_all_aggregations() {
        for agg in [
            Aggregation::MultiScale { block: 3 },
            Aggregation::Fixed { block: 3 },
            Aggregation::None,
        ] {
            let cfg = tiny_cfg(agg);
            let ntt = Ntt::new(cfg);
            let tape = Tape::new();
            let x = tape.input(Tensor::randn(&[2, cfg.seq_len(), NUM_FEATURES], 1));
            let out = ntt.forward(&tape, x);
            assert_eq!(out.shape(), vec![2, OUT_SLOTS, 16], "agg {agg:?}");
        }
    }

    #[test]
    fn heads_produce_scalars() {
        let cfg = tiny_cfg(Aggregation::None);
        let ntt = Ntt::new(cfg);
        let delay = DelayHead::new(16, 0);
        let mct = MctHead::new(16, 0);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[3, 48, NUM_FEATURES], 2));
        let enc = ntt.forward(&tape, x);
        assert_eq!(delay.forward(&tape, enc).shape(), vec![3, 1]);
        let sizes = tape.input(Tensor::randn(&[3, 1], 3));
        assert_eq!(mct.forward(&tape, enc, sizes).shape(), vec![3, 1]);
    }

    #[test]
    fn head_trait_descriptors_and_registry_agree() {
        let delay = DelayHead::new(16, 0);
        let mct = MctHead::new(16, 0);
        let drop = DropHead::new(16, 0);
        for (h, kind, needs_aux) in [
            (&delay as &dyn Head, "delay", false),
            (&mct, "mct", true),
            (&drop, "drop", false),
        ] {
            assert_eq!(h.kind(), kind);
            assert_eq!(h.d_model(), 16, "{kind}: d_model");
            assert_eq!(h.needs_aux(), needs_aux, "{kind}: needs_aux");
            let rebuilt = build_head(kind, 16).expect("registry knows its own kinds");
            assert_eq!(rebuilt.kind(), kind);
            assert_eq!(
                rebuilt.params().len(),
                h.params().len(),
                "{kind}: registry rebuild must be structurally identical"
            );
        }
        assert!(build_head("nope", 16).is_none());
    }

    #[test]
    fn head_trait_forward_matches_inherent_forward() {
        let cfg = tiny_cfg(Aggregation::None);
        let ntt = Ntt::new(cfg);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 48, NUM_FEATURES], 5));
        let enc = ntt.forward(&tape, x);
        let delay = DelayHead::new(16, 1);
        assert_eq!(
            delay.forward(&tape, enc).value(),
            delay.forward_head(&tape, enc, None).value()
        );
        let drop = DropHead::new(16, 1);
        assert_eq!(
            drop.forward(&tape, enc).value(),
            drop.forward_head(&tape, enc, None).value()
        );
        let mct = MctHead::new(16, 1);
        let sizes = tape.input(Tensor::randn(&[2, 1], 6));
        assert_eq!(
            mct.forward(&tape, enc, sizes).value(),
            mct.forward_head(&tape, enc, Some(sizes)).value()
        );
    }

    #[test]
    fn clone_weights_copies_values_into_fresh_storage() {
        let cfg = tiny_cfg(Aggregation::MultiScale { block: 2 });
        let a = Ntt::new(cfg);
        let b = a.clone_weights();
        for (x, y) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(x.value(), y.value(), "param {}", x.name());
        }
        // Fresh storage: mutating the clone leaves the original alone.
        let p = &b.params()[0];
        p.set_value(Tensor::zeros(&p.shape()));
        assert_ne!(a.params()[0].value(), b.params()[0].value());
    }

    #[test]
    #[should_panic(expected = "needs the message size")]
    fn mct_head_rejects_missing_aux() {
        let cfg = tiny_cfg(Aggregation::None);
        let ntt = Ntt::new(cfg);
        let tape = Tape::new();
        let enc = ntt.forward(&tape, tape.input(Tensor::randn(&[1, 48, NUM_FEATURES], 7)));
        MctHead::new(16, 0).forward_head(&tape, enc, None);
    }

    #[test]
    fn multiscale_has_two_agg_layers_fixed_one_none_zero() {
        let count = |agg| {
            let ntt = Ntt::new(tiny_cfg(agg));
            ntt.params().len()
        };
        let base = count(Aggregation::None);
        let fixed = count(Aggregation::Fixed { block: 3 });
        let multi = count(Aggregation::MultiScale { block: 3 });
        assert_eq!(fixed, base + 2, "agg1 weight+bias");
        assert_eq!(multi, base + 4, "agg1 + agg2");
    }

    #[test]
    fn gradients_reach_trunk_and_heads() {
        let cfg = tiny_cfg(Aggregation::MultiScale { block: 2 });
        let ntt = Ntt::new(cfg);
        let head = DelayHead::new(16, 1);
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, cfg.seq_len(), NUM_FEATURES], 4));
        let pred = head.forward(&tape, ntt.forward(&tape, x));
        let loss = pred.mse_loss(&Tensor::zeros(&[2, 1]));
        tape.backward(loss);
        for p in ntt.params().iter().chain(head.params().iter()) {
            assert!(p.grad().norm() > 0.0, "no gradient for {}", p.name());
        }
    }

    #[test]
    fn recent_packets_influence_output_more_directly() {
        // Changing the most recent packet must change the delay head
        // input slot; the architecture keeps recent packets raw.
        let cfg = tiny_cfg(Aggregation::MultiScale { block: 2 });
        let ntt = Ntt::new(cfg);
        let t = cfg.seq_len();
        let base = Tensor::randn(&[1, t, NUM_FEATURES], 5);
        let mut bumped = base.clone();
        for f in 0..NUM_FEATURES {
            let v = bumped.at(&[0, t - 1, f]);
            bumped.set(&[0, t - 1, f], v + 1.0);
        }
        let tape = Tape::new();
        let a = ntt.forward(&tape, tape.input(base)).value();
        let b = ntt.forward(&tape, tape.input(bumped)).value();
        assert!(!a.allclose(&b, 1e-6), "recent packet change must matter");
    }

    #[test]
    #[should_panic(expected = "does not match aggregation")]
    fn rejects_wrong_window_length() {
        let cfg = tiny_cfg(Aggregation::MultiScale { block: 3 });
        let ntt = Ntt::new(cfg);
        let tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[1, 47, NUM_FEATURES]));
        ntt.forward(&tape, x);
    }
}
