//! The paper's naive baselines (Table 1): last-observed and EWMA.
//!
//! * Delay task: predict the masked last-packet delay from the delays of
//!   the preceding packets in the window.
//! * MCT task: predict a message's log completion time from the log
//!   completion times of previously completed messages on the same run.

use ntt_data::{DelayDataset, MctDataset};

/// EWMA smoothing factor — the paper uses α = 0.01.
pub const EWMA_ALPHA: f32 = 0.01;

/// Mean squared error between two slices.
pub fn mse(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty evaluation");
    pred.iter()
        .zip(truth.iter())
        .map(|(p, t)| {
            let d = (*p - *t) as f64;
            d * d
        })
        .sum::<f64>()
        / pred.len() as f64
}

/// "Last observed": the previous packet's delay, in raw seconds².
pub fn delay_last_observed_mse(ds: &DelayDataset) -> f64 {
    let (mut pred, mut truth) = (Vec::new(), Vec::new());
    for i in 0..ds.len() {
        let w = ds.window_packets(i);
        pred.push(w[w.len() - 2].delay);
        truth.push(ds.target_raw(i));
    }
    mse(&pred, &truth)
}

/// EWMA over the window's preceding delays, in raw seconds².
pub fn delay_ewma_mse(ds: &DelayDataset, alpha: f32) -> f64 {
    let (mut pred, mut truth) = (Vec::new(), Vec::new());
    for i in 0..ds.len() {
        let w = ds.window_packets(i);
        let mut e = w[0].delay;
        for p in &w[1..w.len() - 1] {
            e = alpha * p.delay + (1.0 - alpha) * e;
        }
        pred.push(e);
        truth.push(ds.target_raw(i));
    }
    mse(&pred, &truth)
}

/// "Last observed" for MCT: the log-MCT of the most recently completed
/// message (falling back to the sample's own history mean, then 0).
pub fn mct_last_observed_mse(ds: &MctDataset) -> f64 {
    let (mut pred, mut truth) = (Vec::new(), Vec::new());
    for i in 0..ds.len() {
        let hist = ds.history_log_mcts(i);
        pred.push(hist.last().copied().unwrap_or(0.0));
        truth.push(ds.target_log_raw(i));
    }
    mse(&pred, &truth)
}

/// EWMA over previously completed messages' log-MCTs.
pub fn mct_ewma_mse(ds: &MctDataset, alpha: f32) -> f64 {
    let (mut pred, mut truth) = (Vec::new(), Vec::new());
    for i in 0..ds.len() {
        let hist = ds.history_log_mcts(i);
        let p = match hist.split_first() {
            None => 0.0,
            Some((first, rest)) => {
                let mut e = *first;
                for v in rest {
                    e = alpha * v + (1.0 - alpha) * e;
                }
                e
            }
        };
        pred.push(p);
        truth.push(ds.target_log_raw(i));
    }
    mse(&pred, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_data::{DatasetConfig, DelayDataset, MctDataset, TraceData};
    use ntt_sim::scenarios::{run, Scenario, ScenarioConfig};

    fn datasets() -> (DelayDataset, MctDataset) {
        let traces = vec![run(Scenario::Pretrain, &ScenarioConfig::tiny(21))];
        let data = TraceData::from_traces(&traces);
        let cfg = DatasetConfig {
            seq_len: 48,
            stride: 4,
            test_fraction: 0.2,
        };
        let (dtrain, _) = DelayDataset::build(std::sync::Arc::clone(&data), cfg, None);
        let (mtrain, _) = MctDataset::build(data, cfg, dtrain.norm.clone());
        (dtrain, mtrain)
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mse(&[1.0, 3.0], &[0.0, 0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty evaluation")]
    fn mse_rejects_empty() {
        mse(&[], &[]);
    }

    #[test]
    fn baselines_produce_finite_positive_errors() {
        let (d, m) = datasets();
        for v in [
            delay_last_observed_mse(&d),
            delay_ewma_mse(&d, EWMA_ALPHA),
            mct_last_observed_mse(&m),
            mct_ewma_mse(&m, EWMA_ALPHA),
        ] {
            assert!(v.is_finite() && v > 0.0, "baseline mse {v}");
        }
    }

    #[test]
    fn last_observed_beats_nothing_on_smooth_delays() {
        // Delays are strongly autocorrelated under queueing, so the
        // last-observed baseline must beat predicting the dataset mean.
        let (d, _) = datasets();
        let truths: Vec<f32> = (0..d.len()).map(|i| d.target_raw(i)).collect();
        let mean = truths.iter().sum::<f32>() / truths.len() as f32;
        let mean_mse = mse(&vec![mean; truths.len()], &truths);
        let lo = delay_last_observed_mse(&d);
        assert!(lo < mean_mse, "last-observed {lo} vs mean {mean_mse}");
    }

    #[test]
    fn ewma_is_smoother_than_last_observed_for_mct() {
        // Not asserting which wins (the paper finds EWMA better for MCT,
        // last-observed better for delay) — just that they differ, i.e.
        // the two baselines are genuinely distinct estimators.
        let (_, m) = datasets();
        let lo = mct_last_observed_mse(&m);
        let ew = mct_ewma_mse(&m, EWMA_ALPHA);
        assert_ne!(lo, ew);
    }
}
