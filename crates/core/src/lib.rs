//! # ntt-core
//!
//! The **Network Traffic Transformer** — the primary contribution of
//! "A New Hope for Network Model Generalization" (HotNets '22) — plus
//! its baselines, trainer, and checkpointing.
//!
//! The model (Fig. 3) embeds raw per-packet features, compresses 1024
//! packets into 48 sequence elements with learned multi-timescale
//! aggregation, runs a transformer encoder, and attaches replaceable
//! task heads ([`ntt_nn::Head`] impls — delay, MCT, drop-count, or your
//! own). Pre-training masks the most recent packet's delay; fine-tuning
//! adapts the head (and optionally the trunk) to new environments and
//! tasks. The [`pipeline::Experiment`] builder chains the whole
//! workflow — fleet sweep → dataset → pretrain → self-describing
//! checkpoint → fine-tune → evaluate — with one shared seed and
//! normalization story.
//!
//! ```
//! use ntt_core::{Aggregation, DelayHead, Ntt, NttConfig};
//! use ntt_nn::Module;
//! use ntt_tensor::{Tape, Tensor};
//!
//! let cfg = NttConfig {
//!     aggregation: Aggregation::MultiScale { block: 2 }, // 112-packet windows
//!     d_model: 32, n_heads: 4, n_layers: 2, d_ff: 64,
//!     ..NttConfig::default()
//! };
//! let model = Ntt::new(cfg);
//! let head = DelayHead::new(32, 0);
//! let tape = Tape::new();
//! let x = tape.input(Tensor::randn(&[4, cfg.seq_len(), ntt_data::NUM_FEATURES], 1));
//! let pred = head.forward(&tape, model.forward(&tape, x));
//! assert_eq!(pred.shape(), vec![4, 1]);
//! assert!(model.num_params() > 0);
//! ```

pub mod baselines;
pub mod checkpoint;
mod config;
pub mod federated;
mod model;
pub mod pipeline;
mod task;
mod threads;
mod trainer;

pub use checkpoint::{Checkpoint, HeadSpec, LoadedModel};
pub use config::{Aggregation, NttConfig, OUT_SLOTS, ZONE_SLOTS};
pub use model::{build_head, DelayHead, DropHead, MctHead, Ntt};
pub use ntt_nn::Head;
pub use pipeline::{Experiment, FinetuneOpts, Finetuned, Pretrained};
pub use task::{DelayTask, DropTask, HeadTask, MctTask, Task};
pub use threads::env_threads;
pub use trainer::{
    eval_delay, eval_mct, evaluate, train, train_delay, train_mct, EvalReport, ParStrategy,
    TrainConfig, TrainMode, TrainReport,
};
