//! Binary checkpointing: self-describing model sharing.
//!
//! The vision of Fig. 1 is *sharing pre-trained models* instead of
//! data, so the serialization format is part of the system. Version 2
//! (`NTTCKPT2`) makes checkpoints **self-describing**: the file embeds
//! the [`NttConfig`], descriptors of every attached head, the feature
//! normalizer the model was trained with, and free-form provenance
//! metadata (scenario grid, seeds, train steps) — so
//! [`Checkpoint::load`] reconstructs a runnable `(Ntt, heads)` from the
//! file alone, with no caller-side pre-building. A trailing FNV-1a
//! checksum detects corruption. (No serde: the approved crate set has
//! no serde *format* crate, see DESIGN.md.)
//!
//! ```text
//! magic  b"NTTCKPT2"
//! config: u8 aggregation tag, u32 block, u32 d_model, u32 n_heads,
//!         u32 n_layers, u32 d_ff, f32 dropout, u8 feature-mask bits,
//!         u64 seed
//! heads:  u8 count, then per head: (u16 len + kind, u32 d_model)
//! norm:   u8 present, then u32 channels, f32 means..., f32 stds...
//! meta:   u16 count, then per entry: (u16 len + key, u16 len + value)
//! params: u32 count, then per param:
//!   u16      name length, then name (UTF-8)
//!   u8       rank, then u32 dims...
//!   f32...   row-major data
//! u64    FNV-1a-64 checksum of everything after the magic
//! ```
//!
//! The version-1 format (`NTTCKPT1`: magic + the params section only)
//! is still **read** by [`read_all`]/[`load`], so previously shared
//! checkpoints keep loading — but since v1 files carry no config, the
//! caller must supply pre-built modules, which is exactly the
//! limitation v2 removes.
//!
//! All readers parse from memory with bounds checks: truncated files,
//! wrong magics, corrupted sizes, duplicate names, and checksum
//! mismatches return typed [`io::Error`]s — never panic, never
//! over-allocate beyond the file size.

use crate::config::{Aggregation, NttConfig};
use crate::model::{build_head, Ntt};
use ntt_data::{FeatureMask, Normalizer};
use ntt_nn::{Head, Module};
use ntt_tensor::Tensor;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"NTTCKPT1";
const MAGIC_V2: &[u8; 8] = b"NTTCKPT2";

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn bad_input(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// FNV-1a 64-bit content checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Bounds-checked in-memory reader / writer primitives.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(bad_data(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// u16-length-prefixed UTF-8 string.
    fn string(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| bad_data(e.to_string()))
    }

    /// `n` little-endian f32s, length-checked up front.
    fn f32s(&mut self, n: usize) -> io::Result<Vec<f32>> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| bad_data("f32 run length overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        let head: String = s.chars().take(32).collect();
        return Err(bad_input(format!("string too long: {head:?}...")));
    }
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
    Ok(())
}

// ---------------------------------------------------------------------
// The params section (shared by v1 and v2).

fn write_params(out: &mut Vec<u8>, params: &[(String, Tensor)]) -> io::Result<()> {
    {
        let mut seen = BTreeMap::new();
        for (name, _) in params {
            if seen.insert(name.clone(), ()).is_some() {
                return Err(bad_input(format!("duplicate parameter name {name:?}")));
            }
        }
    }
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for (name, value) in params {
        push_string(out, name)?;
        let shape = value.shape();
        if shape.len() > u8::MAX as usize {
            return Err(bad_input(format!("rank too large for {name:?}")));
        }
        out.push(shape.len() as u8);
        for &d in shape {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for v in value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(())
}

fn read_params(r: &mut Reader) -> io::Result<Vec<(String, Tensor)>> {
    let count = r.u32()? as usize;
    let mut out: Vec<(String, Tensor)> = Vec::new();
    let mut seen = BTreeMap::new();
    for _ in 0..count {
        let name = r.string()?;
        if seen.insert(name.clone(), ()).is_some() {
            return Err(bad_data(format!("duplicate parameter name {name:?}")));
        }
        let rank = r.u8()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        let n = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| bad_data(format!("shape of {name:?} overflows: {shape:?}")))?;
        // f32s() bounds the element count by the bytes actually present,
        // so a corrupt huge dim fails cleanly instead of allocating.
        let data = r.f32s(n)?;
        out.push((name, Tensor::from_vec(data, &shape)));
    }
    Ok(out)
}

fn collect_params(modules: &[&dyn Module]) -> Vec<(String, Tensor)> {
    modules
        .iter()
        .flat_map(|m| m.params())
        .map(|p| (p.name(), p.value()))
        .collect()
}

// ---------------------------------------------------------------------
// Config / normalizer codecs.

fn write_config(out: &mut Vec<u8>, cfg: &NttConfig) {
    let (tag, block) = match cfg.aggregation {
        Aggregation::MultiScale { block } => (0u8, block as u32),
        Aggregation::Fixed { block } => (1, block as u32),
        Aggregation::None => (2, 0),
    };
    out.push(tag);
    out.extend_from_slice(&block.to_le_bytes());
    for v in [cfg.d_model, cfg.n_heads, cfg.n_layers, cfg.d_ff] {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    out.extend_from_slice(&cfg.dropout.to_le_bytes());
    let m = &cfg.features;
    let bits =
        (m.time as u8) | (m.size as u8) << 1 | (m.receiver as u8) << 2 | (m.delay as u8) << 3;
    out.push(bits);
    out.extend_from_slice(&cfg.seed.to_le_bytes());
}

fn read_config(r: &mut Reader) -> io::Result<NttConfig> {
    let tag = r.u8()?;
    let block = r.u32()? as usize;
    let aggregation = match tag {
        0 => Aggregation::MultiScale { block },
        1 => Aggregation::Fixed { block },
        2 => Aggregation::None,
        other => return Err(bad_data(format!("unknown aggregation tag {other}"))),
    };
    if matches!(tag, 0 | 1) && block == 0 {
        return Err(bad_data("aggregation block of 0"));
    }
    let d_model = r.u32()? as usize;
    let n_heads = r.u32()? as usize;
    let n_layers = r.u32()? as usize;
    let d_ff = r.u32()? as usize;
    let dropout = r.f32()?;
    let bits = r.u8()?;
    let features = FeatureMask {
        time: bits & 1 != 0,
        size: bits & 2 != 0,
        receiver: bits & 4 != 0,
        delay: bits & 8 != 0,
    };
    let seed = r.u64()?;
    if d_model == 0
        || n_heads == 0
        || n_layers == 0
        || d_ff == 0
        || !d_model.is_multiple_of(n_heads)
    {
        return Err(bad_data(format!(
            "implausible model dimensions: d_model {d_model}, n_heads {n_heads}, n_layers {n_layers}, d_ff {d_ff}"
        )));
    }
    Ok(NttConfig {
        aggregation,
        d_model,
        n_heads,
        n_layers,
        d_ff,
        dropout,
        features,
        seed,
    })
}

// ---------------------------------------------------------------------
// The v2 checkpoint object.

/// Descriptor of one head stored in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadSpec {
    /// Stable kind ([`Head::kind`]), resolved through
    /// [`crate::model::build_head`] on load.
    pub kind: String,
    /// Encoder width the head was built for.
    pub d_model: usize,
}

/// A parsed (or to-be-written) self-describing checkpoint: format
/// version 2. This is the raw file content; [`Checkpoint::restore`] /
/// [`Checkpoint::load`] turn it into a runnable model.
pub struct Checkpoint {
    pub config: NttConfig,
    pub heads: Vec<HeadSpec>,
    /// Feature normalizer the model was trained with — sharing a model
    /// is only useful if the receiver scales inputs the same way.
    pub norm: Option<Normalizer>,
    /// Free-form provenance metadata (scenario grid, seeds, train
    /// steps, ...), preserved in insertion order.
    pub provenance: Vec<(String, String)>,
    /// Parameter tensors in capture order.
    pub params: Vec<(String, Tensor)>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("config", &self.config)
            .field("heads", &self.heads)
            .field("norm_channels", &self.norm.as_ref().map(|n| n.channels()))
            .field("provenance", &self.provenance)
            .field("params", &self.params.len())
            .finish()
    }
}

/// A model reconstructed from a checkpoint file alone.
pub struct LoadedModel {
    pub model: Ntt,
    pub heads: Vec<Box<dyn Head>>,
    pub norm: Option<Normalizer>,
    pub provenance: Vec<(String, String)>,
}

impl std::fmt::Debug for LoadedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.heads.iter().map(|h| h.kind()).collect();
        f.debug_struct("LoadedModel")
            .field("config", &self.model.cfg)
            .field("heads", &kinds)
            .field("norm_channels", &self.norm.as_ref().map(|n| n.channels()))
            .field("provenance", &self.provenance)
            .finish()
    }
}

impl LoadedModel {
    /// The first head of the given kind, if present.
    pub fn head(&self, kind: &str) -> Option<&dyn Head> {
        self.heads
            .iter()
            .find(|h| h.kind() == kind)
            .map(|h| h.as_ref())
    }
}

impl Checkpoint {
    /// Snapshot a model + heads (+ normalizer, + provenance) into a
    /// checkpoint object ready to [`save`](Checkpoint::save).
    pub fn capture(
        model: &Ntt,
        heads: &[&dyn Head],
        norm: Option<Normalizer>,
        provenance: Vec<(String, String)>,
    ) -> io::Result<Checkpoint> {
        let mut modules: Vec<&dyn Module> = vec![model];
        let mut specs = Vec::with_capacity(heads.len());
        for h in heads {
            specs.push(HeadSpec {
                kind: h.kind().to_string(),
                d_model: h.d_model(),
            });
            modules.push(*h as &dyn Module);
        }
        let params = collect_params(&modules);
        {
            let mut seen = BTreeMap::new();
            for (name, _) in &params {
                if seen.insert(name.clone(), ()).is_some() {
                    return Err(bad_input(format!(
                        "duplicate parameter name {name:?} (two heads of the same kind?)"
                    )));
                }
            }
        }
        Ok(Checkpoint {
            config: model.cfg,
            heads: specs,
            norm,
            provenance,
            params,
        })
    }

    /// Serialize to `path` in the `NTTCKPT2` format.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut body = Vec::new();
        write_config(&mut body, &self.config);
        if self.heads.len() > u8::MAX as usize {
            return Err(bad_input("too many heads"));
        }
        body.push(self.heads.len() as u8);
        for spec in &self.heads {
            push_string(&mut body, &spec.kind)?;
            body.extend_from_slice(&(spec.d_model as u32).to_le_bytes());
        }
        match &self.norm {
            None => body.push(0),
            Some(n) => {
                body.push(1);
                body.extend_from_slice(&(n.channels() as u32).to_le_bytes());
                for v in n.means().iter().chain(n.stds()) {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        if self.provenance.len() > u16::MAX as usize {
            return Err(bad_input("too many provenance entries"));
        }
        body.extend_from_slice(&(self.provenance.len() as u16).to_le_bytes());
        for (k, v) in &self.provenance {
            push_string(&mut body, k)?;
            push_string(&mut body, v)?;
        }
        write_params(&mut body, &self.params)?;
        body.extend_from_slice(&fnv1a(&body).to_le_bytes());

        let mut file = Vec::with_capacity(8 + body.len());
        file.extend_from_slice(MAGIC_V2);
        file.extend_from_slice(&body);
        std::fs::write(path, file)
    }

    /// Parse a `NTTCKPT2` file without instantiating the model.
    ///
    /// This is the chokepoint every v2 load funnels through
    /// ([`Checkpoint::load`], `Pretrained::load`, the serving
    /// registry), so it carries the `core.checkpoint.read` chaos site:
    /// a seeded plan can corrupt or truncate the bytes between disk and
    /// parser, proving the checksum/underrun validation catches damage
    /// and that callers holding a live model keep it on failure. One
    /// relaxed load when chaos is off.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
        let mut bytes = std::fs::read(path)?;
        ntt_chaos::mangle("core.checkpoint.read", &mut bytes);
        Self::parse(&bytes)
    }

    /// Parse `NTTCKPT2` bytes already in memory.
    fn parse(bytes: &[u8]) -> io::Result<Checkpoint> {
        if bytes.len() < 8 || &bytes[..8] != MAGIC_V2 {
            if bytes.len() >= 8 && &bytes[..8] == MAGIC_V1 {
                return Err(bad_data(
                    "NTTCKPT1 file: v1 checkpoints carry no model config; \
                     load them with checkpoint::load(path, modules)",
                ));
            }
            return Err(bad_data("bad magic: not an NTT checkpoint"));
        }
        let body = &bytes[8..];
        if body.len() < 8 {
            return Err(bad_data("truncated checkpoint: missing checksum"));
        }
        let (payload, tail) = body.split_at(body.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(bad_data(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x} — corrupt file"
            )));
        }
        let mut r = Reader::new(payload);
        let config = read_config(&mut r)?;
        let n_heads = r.u8()? as usize;
        let mut heads = Vec::with_capacity(n_heads);
        for _ in 0..n_heads {
            let kind = r.string()?;
            let d_model = r.u32()? as usize;
            heads.push(HeadSpec { kind, d_model });
        }
        let norm = match r.u8()? {
            0 => None,
            1 => {
                let channels = r.u32()? as usize;
                if channels == 0 {
                    return Err(bad_data("normalizer with zero channels"));
                }
                let means = r.f32s(channels)?;
                let stds = r.f32s(channels)?;
                Some(Normalizer::from_stats(means, stds))
            }
            other => return Err(bad_data(format!("bad normalizer flag {other}"))),
        };
        let n_meta = r.u16()? as usize;
        let mut provenance = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = r.string()?;
            let v = r.string()?;
            provenance.push((k, v));
        }
        let params = read_params(&mut r)?;
        if r.remaining() != 0 {
            return Err(bad_data(format!(
                "{} trailing bytes after the params section",
                r.remaining()
            )));
        }
        Ok(Checkpoint {
            config,
            heads,
            norm,
            provenance,
            params,
        })
    }

    /// Instantiate the model and heads this checkpoint describes and
    /// fill in the stored weights. Every stored parameter must be
    /// consumed and every model/head parameter must be present.
    pub fn restore(&self) -> io::Result<LoadedModel> {
        let model = Ntt::new(self.config);
        let mut heads: Vec<Box<dyn Head>> = Vec::with_capacity(self.heads.len());
        for spec in &self.heads {
            let head = build_head(&spec.kind, spec.d_model).ok_or_else(|| {
                bad_data(format!(
                    "unknown head kind {:?}: not in the registry (see ntt_core::build_head)",
                    spec.kind
                ))
            })?;
            heads.push(head);
        }
        let mut stored: BTreeMap<&str, &Tensor> =
            self.params.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let mut fill = |m: &dyn Module| -> io::Result<()> {
            for p in m.params() {
                let name = p.name();
                let t = stored
                    .remove(name.as_str())
                    .ok_or_else(|| bad_data(format!("checkpoint missing parameter {name:?}")))?;
                if t.shape() != p.shape() {
                    return Err(bad_data(format!(
                        "shape mismatch for {name:?}: checkpoint {:?} vs model {:?}",
                        t.shape(),
                        p.shape()
                    )));
                }
                p.set_value(t.clone());
            }
            Ok(())
        };
        fill(&model)?;
        for h in &heads {
            fill(h.as_ref() as &dyn Module)?;
        }
        if !stored.is_empty() {
            let mut extra: Vec<&str> = stored.into_keys().collect();
            extra.sort_unstable();
            return Err(bad_data(format!(
                "checkpoint holds parameters the described model does not: {extra:?}"
            )));
        }
        Ok(LoadedModel {
            model,
            heads,
            norm: self.norm.clone(),
            provenance: self.provenance.clone(),
        })
    }

    /// One-call sharing: parse `path` and reconstruct the runnable
    /// `(Ntt, heads)` it describes — no caller-supplied config.
    pub fn load(path: impl AsRef<Path>) -> io::Result<LoadedModel> {
        Self::read(path)?.restore()
    }

    /// Provenance value for `key`, if recorded.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.provenance
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

// ---------------------------------------------------------------------
// Legacy name-addressed API (v1 writer; reader accepts v1 and v2).

/// Save all parameters of `modules` in the **legacy v1 format** (names
/// and tensors only — no config, no checksum). Kept so v1 tooling and
/// fixtures remain writable; new code should go through [`Checkpoint`].
pub fn save(path: impl AsRef<Path>, modules: &[&dyn Module]) -> io::Result<()> {
    let params = collect_params(modules);
    let mut file = Vec::new();
    file.extend_from_slice(MAGIC_V1);
    write_params(&mut file, &params)?;
    std::fs::write(path, file)
}

/// Read a checkpoint (either version) into `name -> Tensor`.
pub fn read_all(path: impl AsRef<Path>) -> io::Result<BTreeMap<String, Tensor>> {
    let bytes = std::fs::read(&path)?;
    let params = if bytes.len() >= 8 && &bytes[..8] == MAGIC_V1 {
        let mut r = Reader::new(&bytes[8..]);
        let params = read_params(&mut r)?;
        if r.remaining() != 0 {
            return Err(bad_data(format!(
                "{} trailing bytes after the params section",
                r.remaining()
            )));
        }
        params
    } else {
        Checkpoint::parse(&bytes)?.params
    };
    Ok(params.into_iter().collect())
}

/// Load a checkpoint (either version) into `modules`, matching
/// parameters by name. Every parameter of every module must be present
/// with the right shape. This is the v1-compatible path: it needs the
/// caller to build the modules, which v2's [`Checkpoint::load`] avoids.
pub fn load(path: impl AsRef<Path>, modules: &[&dyn Module]) -> io::Result<()> {
    let mut stored = read_all(path)?;
    for m in modules {
        for p in m.params() {
            let name = p.name();
            let t = stored
                .remove(&name)
                .ok_or_else(|| bad_data(format!("checkpoint missing parameter {name:?}")))?;
            if t.shape() != p.shape() {
                return Err(bad_data(format!(
                    "shape mismatch for {name:?}: checkpoint {:?} vs model {:?}",
                    t.shape(),
                    p.shape()
                )));
            }
            p.set_value(t);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, NttConfig};
    use crate::model::{DelayHead, DropHead, MctHead, Ntt};
    use ntt_tensor::Param;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ntt_ckpt_test_{name}_{}", std::process::id()))
    }

    fn tiny_cfg(seed: u64) -> NttConfig {
        NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed,
            ..NttConfig::default()
        }
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let cfg = tiny_cfg(1);
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 1);
        let path = tmp("roundtrip");
        save(&path, &[&model, &head]).unwrap();

        // A differently-seeded model has different weights...
        let other = Ntt::new(NttConfig { seed: 2, ..cfg });
        let other_head = DelayHead::new(16, 2);
        let before: Vec<_> = other.params().iter().map(|p| p.value()).collect();
        load(&path, &[&other, &other_head]).unwrap();
        // ... until loading: now they match the saved model exactly.
        for (a, b) in model.params().iter().zip(other.params().iter()) {
            assert_eq!(a.value(), b.value(), "param {}", a.name());
        }
        assert!(other
            .params()
            .iter()
            .zip(before)
            .any(|(p, b)| p.value() != b));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_reconstructs_model_and_heads_from_the_file_alone() {
        let cfg = tiny_cfg(3);
        let model = Ntt::new(cfg);
        let delay = DelayHead::new(16, 3);
        let mct = MctHead::new(16, 3);
        let drop = DropHead::new(16, 3);
        let ckpt = Checkpoint::capture(
            &model,
            &[&delay, &mct, &drop],
            None,
            vec![("scenario_grid".into(), "pretrain x1".into())],
        )
        .unwrap();
        let path = tmp("v2_roundtrip");
        ckpt.save(&path).unwrap();

        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.model.cfg.d_model, 16);
        assert_eq!(loaded.model.cfg.aggregation, cfg.aggregation);
        assert_eq!(loaded.heads.len(), 3);
        let kinds: Vec<&str> = loaded.heads.iter().map(|h| h.kind()).collect();
        assert_eq!(kinds, vec!["delay", "mct", "drop"]);
        for (a, b) in model.params().iter().zip(loaded.model.params().iter()) {
            assert_eq!(a.value(), b.value(), "trunk param {}", a.name());
        }
        for (orig, rebuilt) in [&delay as &dyn Head, &mct, &drop]
            .iter()
            .zip(loaded.heads.iter())
        {
            for (a, b) in orig.params().iter().zip(rebuilt.params().iter()) {
                assert_eq!(a.value(), b.value(), "head param {}", a.name());
            }
        }
        assert_eq!(
            loaded.provenance,
            vec![("scenario_grid".to_string(), "pretrain x1".to_string())]
        );
        assert!(loaded.head("mct").is_some());
        assert!(loaded.head("nope").is_none());
        // The compat reader sees v2 params too.
        let all = read_all(&path).unwrap();
        assert!(all.contains_key("ntt.embedding.weight"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_embeds_and_restores_the_normalizer() {
        let model = Ntt::new(tiny_cfg(4));
        let norm = Normalizer::from_stats(vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 1.5, 2.5, 3.5]);
        let ckpt = Checkpoint::capture(&model, &[], Some(norm.clone()), vec![]).unwrap();
        let path = tmp("v2_norm");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.norm, Some(norm));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checksum_mismatch_is_a_typed_error() {
        let model = Ntt::new(tiny_cfg(5));
        let ckpt = Checkpoint::capture(&model, &[], None, vec![]).unwrap();
        let path = tmp("checksum");
        ckpt.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_files_error_at_every_cut() {
        let model = Ntt::new(tiny_cfg(6));
        let head = DelayHead::new(16, 6);
        let ckpt = Checkpoint::capture(&model, &[&head], None, vec![]).unwrap();
        let path = tmp("truncate");
        ckpt.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut at a spread of offsets, including mid-header and mid-data.
        for cut in [
            0,
            4,
            9,
            20,
            40,
            full.len() / 2,
            full.len() - 9,
            full.len() - 1,
        ] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let a = Param::new("w", ntt_tensor::Tensor::randn(&[4, 4], 0));
        struct M(Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone()]
            }
        }
        let path = tmp("shape");
        save(&path, &[&M(a)]).unwrap();
        let b = M(Param::new("w", ntt_tensor::Tensor::randn(&[2, 2], 0)));
        let err = load(&path, &[&b]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_missing_param() {
        struct M(Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone()]
            }
        }
        let path = tmp("missing");
        save(
            &path,
            &[&M(Param::new("a", ntt_tensor::Tensor::zeros(&[1])))],
        )
        .unwrap();
        let other = M(Param::new("b", ntt_tensor::Tensor::zeros(&[1])));
        let err = load(&path, &[&other]).unwrap_err();
        assert!(err.to_string().contains("missing parameter"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_rejects_duplicate_names() {
        struct M(Param, Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone(), self.1.clone()]
            }
        }
        let m = M(
            Param::new("same", ntt_tensor::Tensor::zeros(&[1])),
            Param::new("same", ntt_tensor::Tensor::zeros(&[1])),
        );
        let err = save(tmp("dup"), &[&m]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn capture_rejects_two_heads_of_the_same_kind() {
        let model = Ntt::new(tiny_cfg(7));
        let a = DelayHead::new(16, 1);
        let b = DelayHead::new(16, 2);
        let err = Checkpoint::capture(&model, &[&a, &b], None, vec![]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn duplicate_names_in_a_file_are_rejected_on_read() {
        // Hand-craft a v1 file with two params of the same name.
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC_V1);
        let one = |f: &mut Vec<u8>| {
            f.extend_from_slice(&1u16.to_le_bytes());
            f.push(b'x');
            f.push(1); // rank
            f.extend_from_slice(&1u32.to_le_bytes());
            f.extend_from_slice(&1.0f32.to_le_bytes());
        };
        file.extend_from_slice(&2u32.to_le_bytes());
        one(&mut file);
        one(&mut file);
        let path = tmp("dupfile");
        std::fs::write(&path, &file).unwrap();
        let err = read_all(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTACKPT....").unwrap();
        assert!(read_all(&path).is_err());
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn huge_corrupt_dims_fail_without_allocating() {
        // A v1 file claiming a [u32::MAX, u32::MAX] tensor with 4 bytes
        // of data: must error on bounds, not abort on allocation.
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC_V1);
        file.extend_from_slice(&1u32.to_le_bytes());
        file.extend_from_slice(&1u16.to_le_bytes());
        file.push(b'w');
        file.push(2); // rank
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&0.0f32.to_le_bytes());
        let path = tmp("huge");
        std::fs::write(&path, &file).unwrap();
        let err = read_all(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_are_refused_by_the_v2_loader_with_guidance() {
        let model = Ntt::new(tiny_cfg(8));
        let path = tmp("v1_guidance");
        save(&path, &[&model]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("NTTCKPT1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_head_kind_is_a_typed_error() {
        let model = Ntt::new(tiny_cfg(9));
        let mut ckpt = Checkpoint::capture(&model, &[], None, vec![]).unwrap();
        ckpt.heads.push(HeadSpec {
            kind: "quantile".into(),
            d_model: 16,
        });
        let path = tmp("unknown_head");
        ckpt.save(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("unknown head kind"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_rejects_unclaimed_parameters() {
        let model = Ntt::new(tiny_cfg(10));
        let mut ckpt = Checkpoint::capture(&model, &[], None, vec![]).unwrap();
        ckpt.params
            .push(("stray".into(), ntt_tensor::Tensor::zeros(&[2])));
        let path = tmp("stray");
        ckpt.save(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("stray"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
