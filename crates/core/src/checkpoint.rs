//! Binary checkpointing of model parameters.
//!
//! The vision of Fig. 1 is *sharing pre-trained models* instead of data,
//! so a serialization format is part of the system. This is a small
//! self-describing little-endian format (no serde: the approved crate
//! set has no serde *format* crate, see DESIGN.md):
//!
//! ```text
//! magic  b"NTTCKPT1"
//! u32    parameter count
//! repeat:
//!   u16      name length, then name (UTF-8)
//!   u8       rank, then u32 dims...
//!   f32...   row-major data
//! ```

use ntt_nn::Module;
use ntt_tensor::Tensor;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NTTCKPT1";

/// Save all parameters of `modules` (names must be globally unique).
pub fn save(path: impl AsRef<Path>, modules: &[&dyn Module]) -> io::Result<()> {
    let params: Vec<_> = modules.iter().flat_map(|m| m.params()).collect();
    {
        let mut seen = HashMap::new();
        for p in &params {
            if let Some(_prev) = seen.insert(p.name(), ()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate parameter name {:?}", p.name()),
                ));
            }
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in &params {
        let name = p.name();
        let bytes = name.as_bytes();
        if bytes.len() > u16::MAX as usize {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "name too long"));
        }
        w.write_all(&(bytes.len() as u16).to_le_bytes())?;
        w.write_all(bytes)?;
        let value = p.value();
        let shape = value.shape();
        w.write_all(&[shape.len() as u8])?;
        for &d in shape {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_exact<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Read a checkpoint into `name -> Tensor`.
pub fn read_all(path: impl AsRef<Path>) -> io::Result<HashMap<String, Tensor>> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_exact::<8>(&mut r)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = u32::from_le_bytes(read_exact::<4>(&mut r)?) as usize;
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(read_exact::<2>(&mut r)?) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_exact::<1>(&mut r)?[0] as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(u32::from_le_bytes(read_exact::<4>(&mut r)?) as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = vec![0f32; n];
        for v in data.iter_mut() {
            *v = f32::from_le_bytes(read_exact::<4>(&mut r)?);
        }
        out.insert(name, Tensor::from_vec(data, &shape));
    }
    Ok(out)
}

/// Load a checkpoint into `modules`, matching parameters by name.
/// Every parameter of every module must be present with the right shape.
pub fn load(path: impl AsRef<Path>, modules: &[&dyn Module]) -> io::Result<()> {
    let mut stored = read_all(path)?;
    for m in modules {
        for p in m.params() {
            let name = p.name();
            let t = stored.remove(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint missing parameter {name:?}"),
                )
            })?;
            if t.shape() != p.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shape mismatch for {name:?}: checkpoint {:?} vs model {:?}",
                        t.shape(),
                        p.shape()
                    ),
                ));
            }
            p.set_value(t);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, NttConfig};
    use crate::model::{DelayHead, Ntt};
    use ntt_tensor::Param;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ntt_ckpt_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let cfg = NttConfig {
            aggregation: Aggregation::MultiScale { block: 1 },
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 1,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let head = DelayHead::new(16, 1);
        let path = tmp("roundtrip");
        save(&path, &[&model, &head]).unwrap();

        // A differently-seeded model has different weights...
        let other = Ntt::new(NttConfig { seed: 2, ..cfg });
        let other_head = DelayHead::new(16, 2);
        let before: Vec<_> = other.params().iter().map(|p| p.value()).collect();
        load(&path, &[&other, &other_head]).unwrap();
        // ... until loading: now they match the saved model exactly.
        for (a, b) in model.params().iter().zip(other.params().iter()) {
            assert_eq!(a.value(), b.value(), "param {}", a.name());
        }
        assert!(other
            .params()
            .iter()
            .zip(before)
            .any(|(p, b)| p.value() != b));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let a = Param::new("w", ntt_tensor::Tensor::randn(&[4, 4], 0));
        struct M(Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone()]
            }
        }
        let path = tmp("shape");
        save(&path, &[&M(a)]).unwrap();
        let b = M(Param::new("w", ntt_tensor::Tensor::randn(&[2, 2], 0)));
        let err = load(&path, &[&b]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_missing_param() {
        struct M(Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone()]
            }
        }
        let path = tmp("missing");
        save(
            &path,
            &[&M(Param::new("a", ntt_tensor::Tensor::zeros(&[1])))],
        )
        .unwrap();
        let other = M(Param::new("b", ntt_tensor::Tensor::zeros(&[1])));
        let err = load(&path, &[&other]).unwrap_err();
        assert!(err.to_string().contains("missing parameter"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_rejects_duplicate_names() {
        struct M(Param, Param);
        impl Module for M {
            fn params(&self) -> Vec<Param> {
                vec![self.0.clone(), self.1.clone()]
            }
        }
        let m = M(
            Param::new("same", ntt_tensor::Tensor::zeros(&[1])),
            Param::new("same", ntt_tensor::Tensor::zeros(&[1])),
        );
        let err = save(tmp("dup"), &[&m]).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTACKPT....").unwrap();
        assert!(read_all(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
