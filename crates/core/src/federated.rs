//! Collaborative pre-training via parameter averaging (§5).
//!
//! The paper's vision: "Organizations could keep their data private and
//! only share pre-trained models, which can be combined into a final
//! collectively pre-trained model." This module implements the
//! combination step — federated averaging (FedAvg, McMahan et al.) —
//! over name-matched parameters, plus a round-based helper that
//! alternates local training with averaging.
//!
//! Data never moves: each site trains on its own traces and only
//! parameter vectors are exchanged, exactly the privacy story of §5.

use ntt_nn::Module;
use ntt_tensor::Tensor;
use std::collections::BTreeMap;

/// Average the parameters of `models` (uniform weights) and write the
/// result into every one of them, name-matched.
///
/// Panics if the models do not expose identical parameter sets — mixing
/// architectures is a caller bug, not a runtime condition.
pub fn average_params(models: &[&dyn Module]) {
    weighted_average_params(models, &vec![1.0; models.len()])
}

/// FedAvg with explicit per-site weights (e.g. proportional to local
/// dataset sizes). Weights are normalized internally.
pub fn weighted_average_params(models: &[&dyn Module], weights: &[f64]) {
    assert!(!models.is_empty(), "no models to average");
    assert_eq!(models.len(), weights.len(), "one weight per model");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");

    // Accumulate name -> weighted sum.
    let mut acc: BTreeMap<String, Tensor> = BTreeMap::new();
    let reference: Vec<String> = models[0].params().iter().map(|p| p.name()).collect();
    for (m, &w) in models.iter().zip(weights) {
        let params = m.params();
        assert_eq!(
            params.len(),
            reference.len(),
            "parameter count mismatch across sites"
        );
        for p in params {
            let name = p.name();
            let contribution = p.value().map(|v| v * (w / total) as f32);
            match acc.get_mut(&name) {
                Some(sum) => sum.add_assign(&contribution),
                None => {
                    acc.insert(name, contribution);
                }
            }
        }
    }
    // Write back into every model.
    for m in models {
        for p in m.params() {
            let avg = acc
                .get(&p.name())
                .unwrap_or_else(|| panic!("parameter {:?} missing from average", p.name()));
            p.set_value(avg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_tensor::Param;

    struct One(Param);
    impl Module for One {
        fn params(&self) -> Vec<Param> {
            vec![self.0.clone()]
        }
    }

    fn site(v: f32) -> One {
        One(Param::new("w", Tensor::full(&[3], v)))
    }

    #[test]
    fn uniform_average_is_midpoint() {
        let a = site(1.0);
        let b = site(3.0);
        average_params(&[&a, &b]);
        assert_eq!(a.0.value().data(), &[2.0, 2.0, 2.0]);
        assert_eq!(b.0.value().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn weighted_average_respects_dataset_sizes() {
        let a = site(0.0);
        let b = site(4.0);
        // Site b has 3x the data.
        weighted_average_params(&[&a, &b], &[1.0, 3.0]);
        assert!(a.0.value().allclose(&Tensor::full(&[3], 3.0), 1e-6));
    }

    #[test]
    fn averaging_full_ntt_models_preserves_forward() {
        use crate::config::{Aggregation, NttConfig};
        use crate::model::Ntt;
        use ntt_tensor::Tape;
        let cfg = NttConfig {
            aggregation: Aggregation::None,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            seed: 1,
            ..NttConfig::default()
        };
        let a = Ntt::new(cfg);
        let b = Ntt::new(NttConfig { seed: 2, ..cfg });
        average_params(&[&a, &b]);
        // Both models now agree exactly.
        let x = Tensor::randn(&[1, 48, ntt_data::NUM_FEATURES], 3);
        let tape = Tape::new();
        let ya = a.forward(&tape, tape.input(x.clone())).value();
        let yb = b.forward(&tape, tape.input(x)).value();
        assert_eq!(ya, yb);
        assert!(!ya.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "no models")]
    fn empty_average_is_a_bug() {
        average_params(&[]);
    }

    #[test]
    #[should_panic(expected = "one weight per model")]
    fn weight_count_must_match() {
        let a = site(1.0);
        weighted_average_params(&[&a], &[1.0, 2.0]);
    }
}
