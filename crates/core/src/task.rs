//! The [`Task`] trait: what the generic train/eval engine needs to know
//! about a prediction task — and [`HeadTask`], the one impl that covers
//! every (head, dataset) pair.
//!
//! The paper's tasks — masked-delay prediction (pre-training),
//! message-completion-time regression, drop-count regression — differ
//! only in their dataset and head. Everything else (batching,
//! shuffling, the optimizer loop, microbatch fan-out, deterministic
//! gradient reduction, evaluation accounting) is task-independent and
//! lives once in [`crate::trainer`]. Since PR 3, the dataset side is
//! abstracted too ([`ntt_data::TaskDataset`]), so a new task is a
//! [`Head`] impl plus a `TaskDataset` impl — `HeadTask` wires any such
//! pair into the engine with zero new trainer code.

use crate::model::Ntt;
use ntt_data::TaskDataset;
use ntt_nn::Head;
use ntt_tensor::{Param, Tape, Var};

/// A supervised task the engine can train and evaluate.
///
/// `Sync` is a supertrait because the data-parallel trainer shares one
/// task across worker threads, each building its own microbatch graph.
///
/// # Contract
///
/// [`Task::batch_loss`] must build the forward graph for the given
/// sample indices on `tape` and return a **scalar** (shape `[1]`) loss
/// that is a *mean with uniform per-sample weighting* — the engine
/// relies on this to recombine microbatch losses as
/// `Σ (|shard| / |batch|) · loss_shard`, which reproduces the
/// whole-batch mean exactly. Any stochasticity (dropout) must be drawn
/// from the tape's RNG stream so the result is a pure function of
/// `(parameters, indices, tape seed)` regardless of the calling thread.
pub trait Task: Sync {
    /// Short label for logs and reports.
    fn name(&self) -> &'static str;

    /// Number of samples in the dataset.
    fn len(&self) -> usize;

    /// True when there is nothing to train on.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parameters of the task head (the trunk's come from the shared
    /// [`Ntt`]).
    fn head_params(&self) -> Vec<Param>;

    /// Std of the raw-unit target, for converting normalized MSE back
    /// to task units in evaluation reports.
    fn target_std(&self) -> f32;

    /// Forward pass + mean loss over the samples at `idx`.
    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t>;
}

/// The generic task: any [`Head`] over any [`TaskDataset`].
///
/// `?Sized` bounds let the pipeline drive trait objects — e.g. a
/// `&dyn Head` reconstructed from a checkpoint — through the same impl
/// that serves concrete head types.
pub struct HeadTask<'a, H: Head + ?Sized, D: TaskDataset + ?Sized> {
    head: &'a H,
    ds: &'a D,
}

impl<'a, H: Head + ?Sized, D: TaskDataset + ?Sized> HeadTask<'a, H, D> {
    pub fn new(head: &'a H, ds: &'a D) -> Self {
        HeadTask { head, ds }
    }
}

impl<H: Head + ?Sized, D: TaskDataset + ?Sized> Task for HeadTask<'_, H, D> {
    fn name(&self) -> &'static str {
        self.ds.label()
    }

    fn len(&self) -> usize {
        self.ds.len()
    }

    fn head_params(&self) -> Vec<Param> {
        self.head.params()
    }

    fn target_std(&self) -> f32 {
        self.ds.target_std()
    }

    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t> {
        let (x, aux, y) = self.ds.batch_xy(idx);
        let enc = ntt.forward(tape, tape.input(x));
        let pred = self
            .head
            .forward_head(tape, enc, aux.map(|a| tape.input(a)));
        pred.mse_loss(&y)
    }
}

/// Masked-delay prediction (pre-training, and fine-tuning case 1).
pub type DelayTask<'a> = HeadTask<'a, crate::model::DelayHead, ntt_data::DelayDataset>;

/// Message-completion-time regression (fine-tuning task 2).
pub type MctTask<'a> = HeadTask<'a, crate::model::MctHead, ntt_data::MctDataset>;

/// Per-window drop-count regression (the §5 telemetry task).
pub type DropTask<'a> = HeadTask<'a, crate::model::DropHead, ntt_data::DropDataset>;
