//! The [`Task`] trait: what the generic train/eval engine needs to know
//! about a prediction task.
//!
//! The paper's two tasks — masked-delay prediction (pre-training) and
//! message-completion-time regression (fine-tuning) — differ only in
//! their dataset, head, and forward wiring. Everything else (batching,
//! shuffling, the optimizer loop, microbatch fan-out, deterministic
//! gradient reduction, evaluation accounting) is task-independent and
//! lives once in [`crate::trainer`]. A new task is a ~30-line impl of
//! this trait, not a fourth copy of the training loop.

use crate::model::{DelayHead, MctHead, Ntt};
use ntt_data::{DelayDataset, MctDataset};
use ntt_nn::Module;
use ntt_tensor::{Param, Tape, Var};

/// A supervised task the engine can train and evaluate.
///
/// `Sync` is a supertrait because the data-parallel trainer shares one
/// task across worker threads, each building its own microbatch graph.
///
/// # Contract
///
/// [`Task::batch_loss`] must build the forward graph for the given
/// sample indices on `tape` and return a **scalar** (shape `[1]`) loss
/// that is a *mean with uniform per-sample weighting* — the engine
/// relies on this to recombine microbatch losses as
/// `Σ (|shard| / |batch|) · loss_shard`, which reproduces the
/// whole-batch mean exactly. Any stochasticity (dropout) must be drawn
/// from the tape's RNG stream so the result is a pure function of
/// `(parameters, indices, tape seed)` regardless of the calling thread.
pub trait Task: Sync {
    /// Short label for logs and reports.
    fn name(&self) -> &'static str;

    /// Number of samples in the dataset.
    fn len(&self) -> usize;

    /// True when there is nothing to train on.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parameters of the task head (the trunk's come from the shared
    /// [`Ntt`]).
    fn head_params(&self) -> Vec<Param>;

    /// Std of the raw-unit target, for converting normalized MSE back
    /// to task units in evaluation reports.
    fn target_std(&self) -> f32;

    /// Forward pass + mean loss over the samples at `idx`.
    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t>;
}

/// Masked-delay prediction (pre-training, and fine-tuning case 1).
pub struct DelayTask<'a> {
    head: &'a DelayHead,
    ds: &'a DelayDataset,
}

impl<'a> DelayTask<'a> {
    pub fn new(head: &'a DelayHead, ds: &'a DelayDataset) -> Self {
        DelayTask { head, ds }
    }
}

impl Task for DelayTask<'_> {
    fn name(&self) -> &'static str {
        "delay"
    }

    fn len(&self) -> usize {
        self.ds.len()
    }

    fn head_params(&self) -> Vec<Param> {
        self.head.params()
    }

    fn target_std(&self) -> f32 {
        self.ds.delay_std()
    }

    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t> {
        let (x, y) = self.ds.batch(idx);
        let pred = self.head.forward(tape, ntt.forward(tape, tape.input(x)));
        pred.mse_loss(&y)
    }
}

/// Message-completion-time regression (fine-tuning task 2); the head
/// takes the encoded window plus the message size as a second input.
pub struct MctTask<'a> {
    head: &'a MctHead,
    ds: &'a MctDataset,
}

impl<'a> MctTask<'a> {
    pub fn new(head: &'a MctHead, ds: &'a MctDataset) -> Self {
        MctTask { head, ds }
    }
}

impl Task for MctTask<'_> {
    fn name(&self) -> &'static str {
        "mct"
    }

    fn len(&self) -> usize {
        self.ds.len()
    }

    fn head_params(&self) -> Vec<Param> {
        self.head.params()
    }

    fn target_std(&self) -> f32 {
        self.ds.mct_std()
    }

    fn batch_loss<'t>(&self, tape: &'t Tape, ntt: &Ntt, idx: &[usize]) -> Var<'t> {
        let (x, sizes, y) = self.ds.batch(idx);
        let enc = ntt.forward(tape, tape.input(x));
        let pred = self.head.forward(tape, enc, tape.input(sizes));
        pred.mse_loss(&y)
    }
}
