//! Checkpoint format compatibility and robustness:
//! * a committed `NTTCKPT1` fixture must keep loading through the
//!   compat reader, byte-for-byte (the "models shared last year still
//!   open" guarantee);
//! * random (shape, name) sets must survive save→load round-trips in
//!   both formats (proptest).

use ntt_core::checkpoint::{self, Checkpoint};
use ntt_core::{Aggregation, Ntt, NttConfig};
use ntt_nn::Module;
use ntt_tensor::{Param, Tensor};
use proptest::prelude::*;

/// The committed v1 fixture (written by a pre-redesign `save`).
const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_v1.ckpt");

struct Bag(Vec<Param>);
impl Module for Bag {
    fn params(&self) -> Vec<Param> {
        self.0.clone()
    }
}

#[test]
fn committed_v1_fixture_loads_with_expected_parameter_bytes() {
    let stored = checkpoint::read_all(FIXTURE).expect("fixture must parse");
    assert_eq!(stored.len(), 2);
    let expect_a = Tensor::from_vec(vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5], &[2, 3]);
    let expect_b = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5], &[4]);
    assert_eq!(stored["fixture.a"], expect_a);
    assert_eq!(stored["fixture.b"], expect_b);
    // Byte-level check: every stored f32 bit pattern matches.
    for (t, e) in [
        (&stored["fixture.a"], &expect_a),
        (&stored["fixture.b"], &expect_b),
    ] {
        for (x, y) in t.data().iter().zip(e.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn committed_v1_fixture_fills_caller_built_modules() {
    let bag = Bag(vec![
        Param::new("fixture.a", Tensor::zeros(&[2, 3])),
        Param::new("fixture.b", Tensor::zeros(&[4])),
    ]);
    checkpoint::load(FIXTURE, &[&bag]).expect("migration load");
    assert_eq!(bag.0[0].value().at(&[1, 2]), 2.5);
    assert_eq!(bag.0[1].value().at(&[0]), -1.0);
}

#[test]
fn v1_fixture_is_refused_by_the_self_describing_loader() {
    // v1 carries no config, so Checkpoint::load must refuse it with a
    // pointer at the compat path, not misparse it.
    let err = Checkpoint::load(FIXTURE).unwrap_err();
    assert!(err.to_string().contains("NTTCKPT1"), "{err}");
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ntt_ckpt_prop_{tag}_{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random parameter bags survive a v1 save→load round-trip exactly.
    #[test]
    fn v1_roundtrips_random_shapes_and_names(
        shapes in proptest::collection::vec(
            proptest::collection::vec(1usize..5, 1..4), 1..6),
        salt in 0u64..1_000_000,
    ) {
        let params: Vec<Param> = shapes
            .iter()
            .enumerate()
            .map(|(i, shape)| {
                Param::new(
                    format!("p{salt}.{i}"),
                    Tensor::randn(shape, salt.wrapping_add(i as u64)),
                )
            })
            .collect();
        let bag = Bag(params);
        let path = tmp(&format!("v1_{salt}"));
        checkpoint::save(&path, &[&bag]).unwrap();

        let fresh = Bag(
            bag.0
                .iter()
                .map(|p| Param::new(p.name(), Tensor::zeros(&p.shape())))
                .collect(),
        );
        checkpoint::load(&path, &[&fresh]).unwrap();
        for (a, b) in bag.0.iter().zip(fresh.0.iter()) {
            let (av, bv) = (a.value(), b.value());
            prop_assert_eq!(av.shape(), bv.shape());
            for (x, y) in av.data().iter().zip(bv.data().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(path).ok();
    }

    /// Random model configurations survive a v2 save→load round-trip:
    /// config, head set, and every parameter bit.
    #[test]
    fn v2_roundtrips_random_models(
        d_model_half in 1usize..5,
        n_layers in 1usize..3,
        seed in 0u64..1_000_000,
        with_mct in any::<bool>(),
    ) {
        let cfg = NttConfig {
            aggregation: Aggregation::None,
            d_model: d_model_half * 2,
            n_heads: 2,
            n_layers,
            d_ff: d_model_half * 4,
            seed,
            ..NttConfig::default()
        };
        let model = Ntt::new(cfg);
        let delay = ntt_core::DelayHead::new(cfg.d_model, seed);
        let mct = ntt_core::MctHead::new(cfg.d_model, seed);
        let heads: Vec<&dyn ntt_core::Head> =
            if with_mct { vec![&delay, &mct] } else { vec![&delay] };
        let ckpt = Checkpoint::capture(&model, &heads, None, vec![
            ("seed".into(), seed.to_string()),
        ]).unwrap();
        let path = tmp(&format!("v2_{seed}_{d_model_half}_{n_layers}_{with_mct}"));
        ckpt.save(&path).unwrap();

        let loaded = Checkpoint::load(&path).unwrap();
        prop_assert_eq!(loaded.model.cfg.d_model, cfg.d_model);
        prop_assert_eq!(loaded.heads.len(), heads.len());
        let orig: Vec<Param> = model
            .params()
            .into_iter()
            .chain(heads.iter().flat_map(|h| h.params()))
            .collect();
        let rebuilt: Vec<Param> = loaded
            .model
            .params()
            .into_iter()
            .chain(loaded.heads.iter().flat_map(|h| h.params()))
            .collect();
        prop_assert_eq!(orig.len(), rebuilt.len());
        for (a, b) in orig.iter().zip(rebuilt.iter()) {
            prop_assert_eq!(a.name(), b.name());
            for (x, y) in a.value().data().iter().zip(b.value().data().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(path).ok();
    }
}
