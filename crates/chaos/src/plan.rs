//! Fault schedules: which site fails, how, and on which hits.
//!
//! A [`ChaosPlan`] is a seed plus a list of [`Rule`]s. Every injection
//! decision is a **pure function** of `(seed, site, key)` — no clock,
//! no entropy, no global ordering — so a fault schedule replays
//! identically from its seed at any thread count. Sites that have a
//! natural deterministic key (a fleet shard index, a checkpoint load
//! ordinal) pass it explicitly; sites without one draw a per-rule hit
//! counter, which keeps the *set* of faulted hits (and therefore the
//! sorted fault trace) seed-deterministic even when the hit-to-thread
//! assignment races.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 (same constants as `ntt_tensor::splitmix64`, duplicated
/// so this crate stays dependency-free): the workspace's one blessed
/// seeded generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site name: folds the site into the decision stream so
/// two rules at different sites never share a fault schedule.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What a matched rule injects at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site panics (worker crash).
    Panic,
    /// The site sleeps for `millis` (injected latency / queue stall).
    Delay { millis: u64 },
    /// The site reports a retryable failure.
    Fail,
    /// A read buffer gets one byte XOR-flipped at a seed-chosen offset.
    Corrupt,
    /// A read buffer loses a seed-chosen fraction of its tail.
    Truncate,
}

impl FaultKind {
    /// Stable label used in traces, reports, and the env spec.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Fail => "fail",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Delay { millis } => write!(f, "delay({millis})"),
            other => f.write_str(other.label()),
        }
    }
}

/// One fault schedule: at `site`, inject `kind` on `num`-in-`den` hits
/// (decided per hit by the seeded stream), at most `limit` times
/// (`0` = unlimited).
#[derive(Debug)]
pub struct Rule {
    pub site: String,
    pub kind: FaultKind,
    pub num: u32,
    pub den: u32,
    pub limit: u64,
    /// Hits at this rule's site (keyless sites use this as the key).
    pub(crate) hits: AtomicU64,
    /// Faults actually injected (enforces `limit`).
    pub(crate) injected: AtomicU64,
}

impl Rule {
    pub fn new(site: impl Into<String>, kind: FaultKind) -> Self {
        Rule {
            site: site.into(),
            kind,
            num: 1,
            den: 1,
            limit: 0,
            hits: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Fire on `num`-in-`den` hits (seed-chosen which ones).
    pub fn rate(mut self, num: u32, den: u32) -> Self {
        assert!(den > 0, "rate denominator must be positive");
        self.num = num;
        self.den = den;
        self
    }

    /// Inject at most `limit` faults from this rule (0 = unlimited).
    pub fn limit(mut self, limit: u64) -> Self {
        self.limit = limit;
        self
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// A seed plus its fault rules. Install one with [`crate::install`] /
/// [`crate::scoped`] or via the `NTT_CHAOS` environment spec.
#[derive(Debug)]
pub struct ChaosPlan {
    pub seed: u64,
    pub rules: Vec<Rule>,
}

impl ChaosPlan {
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a fault rule (builder style).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The pure injection decision for `(site, key)` under `kind`'s
    /// rule: hash the seed, site, and key through one SplitMix64 step
    /// and compare against the rule's rate.
    pub fn would_fault(&self, rule: &Rule, key: u64) -> bool {
        if rule.num == 0 {
            return false;
        }
        let mut s = self
            .seed
            ^ fnv1a(rule.site.as_bytes())
            // Golden-ratio spread so adjacent keys land in distant
            // stream positions.
            ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h = splitmix64(&mut s);
        (h % rule.den as u64) < rule.num as u64
    }

    /// Decide whether `site` faults on this hit. `key` of `None` draws
    /// the rule's hit counter. Returns the fault to inject, charging
    /// the rule's budget.
    pub(crate) fn decide(&self, site: &str, key: Option<u64>, want: Class) -> Option<FaultKind> {
        for rule in &self.rules {
            if rule.site != site || !want.matches(rule.kind) {
                continue;
            }
            let k = match key {
                Some(k) => {
                    rule.hits.fetch_add(1, Ordering::Relaxed);
                    k
                }
                None => rule.hits.fetch_add(1, Ordering::Relaxed),
            };
            if !self.would_fault(rule, k) {
                continue;
            }
            if rule.limit > 0 {
                // Charge the budget atomically; losers of the race
                // give the slot back untouched (fetch_update retries).
                let charged = rule
                    .injected
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                        (n < rule.limit).then_some(n + 1)
                    })
                    .is_ok();
                if !charged {
                    continue;
                }
            } else {
                rule.injected.fetch_add(1, Ordering::Relaxed);
            }
            crate::trace::record(site, k, rule.kind);
            return Some(rule.kind);
        }
        None
    }
}

/// Which fault kinds a call site can act on (a panic site must never be
/// handed a `Corrupt`, and vice versa).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Class {
    Panic,
    Delay,
    Fail,
    Mangle,
}

impl Class {
    fn matches(&self, kind: FaultKind) -> bool {
        matches!(
            (self, kind),
            (Class::Panic, FaultKind::Panic)
                | (Class::Delay, FaultKind::Delay { .. })
                | (Class::Fail, FaultKind::Fail)
                | (Class::Mangle, FaultKind::Corrupt | FaultKind::Truncate)
        )
    }
}

/// Parse the `NTT_CHAOS` spec. `None`/`off`/`0`/`false`/empty disable
/// chaos; anything else must parse as a comma-separated list of
/// `seed=N` and `<site>=<kind>[:N/D][xLIMIT]` entries, where `<kind>`
/// is `panic`, `fail`, `corrupt`, `truncate`, or `delay(MS)`:
///
/// ```text
/// NTT_CHAOS="seed=42,serve.worker.panic=panic:1/8,core.checkpoint.read=corrupt:1/2x3"
/// ```
pub fn parse_spec(raw: Option<&str>) -> Result<Option<ChaosPlan>, String> {
    let raw = match raw.map(str::trim) {
        None | Some("") => return Ok(None),
        Some(s) if matches!(s.to_ascii_lowercase().as_str(), "off" | "0" | "false") => {
            return Ok(None)
        }
        Some(s) => s,
    };
    let mut plan = ChaosPlan::new(0);
    for entry in raw.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (lhs, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("chaos spec entry {entry:?}: expected key=value"))?;
        if lhs == "seed" {
            plan.seed = rhs
                .parse()
                .map_err(|_| format!("chaos spec: bad seed {rhs:?}"))?;
            continue;
        }
        plan.rules.push(parse_rule(lhs, rhs)?);
    }
    if plan.rules.is_empty() {
        return Err(format!("chaos spec {raw:?} names no fault rules"));
    }
    Ok(Some(plan))
}

fn parse_rule(site: &str, rhs: &str) -> Result<Rule, String> {
    // Peel `xLIMIT` then `:N/D` off the right-hand side.
    let (rhs, limit) = match rhs.rsplit_once('x') {
        Some((head, tail)) if tail.chars().all(|c| c.is_ascii_digit()) && !tail.is_empty() => {
            let limit = tail
                .parse()
                .map_err(|_| format!("chaos spec: bad limit in {rhs:?}"))?;
            (head, limit)
        }
        _ => (rhs, 0u64),
    };
    let (kind_str, num, den) = match rhs.split_once(':') {
        Some((k, rate)) => {
            let (n, d) = rate
                .split_once('/')
                .ok_or_else(|| format!("chaos spec: bad rate {rate:?} (want N/D)"))?;
            let n = n
                .parse()
                .map_err(|_| format!("chaos spec: bad rate numerator {n:?}"))?;
            let d: u32 = d
                .parse()
                .map_err(|_| format!("chaos spec: bad rate denominator {d:?}"))?;
            if d == 0 {
                return Err("chaos spec: rate denominator must be positive".into());
            }
            (k, n, d)
        }
        None => (rhs, 1u32, 1u32),
    };
    let kind = match kind_str {
        "panic" => FaultKind::Panic,
        "fail" => FaultKind::Fail,
        "corrupt" => FaultKind::Corrupt,
        "truncate" => FaultKind::Truncate,
        other => {
            let inner = other
                .strip_prefix("delay(")
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| format!("chaos spec: unknown fault kind {other:?}"))?;
            let millis = inner
                .parse()
                .map_err(|_| format!("chaos spec: bad delay millis {inner:?}"))?;
            FaultKind::Delay { millis }
        }
    };
    Ok(Rule::new(site, kind).rate(num, den).limit(limit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_site_key() {
        let plan = ChaosPlan::new(7).rule(Rule::new("a.b", FaultKind::Fail).rate(1, 3));
        let rule = &plan.rules[0];
        let first: Vec<bool> = (0..64).map(|k| plan.would_fault(rule, k)).collect();
        let second: Vec<bool> = (0..64).map(|k| plan.would_fault(rule, k)).collect();
        assert_eq!(first, second, "same (seed, site, key) must re-decide alike");
        assert!(first.iter().any(|&b| b), "1-in-3 over 64 keys fires");
        assert!(!first.iter().all(|&b| b), "1-in-3 over 64 keys also skips");

        let other = ChaosPlan::new(8).rule(Rule::new("a.b", FaultKind::Fail).rate(1, 3));
        let shifted: Vec<bool> = (0..64)
            .map(|k| other.would_fault(&other.rules[0], k))
            .collect();
        assert_ne!(first, shifted, "a different seed reschedules the faults");
    }

    #[test]
    fn rate_edges_always_and_never() {
        let plan = ChaosPlan::new(1)
            .rule(Rule::new("always", FaultKind::Panic).rate(1, 1))
            .rule(Rule::new("never", FaultKind::Panic).rate(0, 5));
        assert!((0..32).all(|k| plan.would_fault(&plan.rules[0], k)));
        assert!((0..32).all(|k| !plan.would_fault(&plan.rules[1], k)));
    }

    #[test]
    fn spec_disabled_forms() {
        for raw in [
            None,
            Some(""),
            Some("off"),
            Some("0"),
            Some("false"),
            Some(" OFF "),
        ] {
            assert!(parse_spec(raw).unwrap().is_none(), "{raw:?}");
        }
    }

    #[test]
    fn spec_round_trip() {
        let plan = parse_spec(Some(
            "seed=42,serve.worker.panic=panic:1/8,core.checkpoint.read=corrupt:1/2x3,\
             serve.predict.delay=delay(5):1/4,fleet.shard=fail",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert_eq!((plan.rules[0].num, plan.rules[0].den), (1, 8));
        assert_eq!(plan.rules[1].kind, FaultKind::Corrupt);
        assert_eq!(plan.rules[1].limit, 3);
        assert_eq!(plan.rules[2].kind, FaultKind::Delay { millis: 5 });
        assert_eq!(plan.rules[3].kind, FaultKind::Fail);
        assert_eq!((plan.rules[3].num, plan.rules[3].den), (1, 1));
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(parse_spec(Some("nonsense")).is_err());
        assert!(parse_spec(Some("seed=notanumber,a=panic")).is_err());
        assert!(parse_spec(Some("a=explode")).is_err());
        assert!(parse_spec(Some("a=panic:1/0")).is_err());
        assert!(parse_spec(Some("a=delay(x)")).is_err());
        assert!(
            parse_spec(Some("seed=3")).is_err(),
            "a seed alone injects nothing"
        );
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Panic.to_string(), "panic");
        assert_eq!(FaultKind::Delay { millis: 7 }.to_string(), "delay(7)");
        assert_eq!(FaultKind::Truncate.label(), "truncate");
    }
}
